"""The stdlib-only HTTP layer of the evaluation service.

``eval-serve`` (this module's :func:`main`) wraps a
:class:`~repro.service.jobs.JobQueue` in a
:class:`http.server.ThreadingHTTPServer` — no web framework, nothing
outside the standard library, same dependency posture as the rest of
the repo.  Endpoints:

========================================  ==================================
``POST /v1/jobs``                         submit a job spec → 202
                                          ``{"job_id": ...}``; 503 with the
                                          admission refusal when the queue
                                          is saturated; 400 on a bad spec
``GET  /v1/jobs/<id>``                    job status snapshot (404 unknown)
``GET  /v1/jobs/<id>/results?offset=N``   incremental result lines —
                                          canonical checkpoint payloads —
                                          plus the next cursor and a
                                          ``complete`` flag
``POST /v1/jobs/<id>/cancel``             request cancellation (unit
                                          granularity; see docs/SERVICE.md)
``GET  /metrics``                         Prometheus text exposition of
                                          queue counters + this process's
                                          perception caches
``GET  /healthz``                         liveness probe → ``ok``
========================================  ==================================

The server is threaded so a long-polling results client never blocks a
submit; evaluation itself runs on the queue's worker threads, not on
request threads.
"""

from __future__ import annotations

import argparse
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core import perfstats
from repro.service.jobs import JobQueue, JobRejected
from repro.service.metrics import render_prometheus


class EvalHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the job queue for its handlers."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], queue: JobQueue) -> None:
        super().__init__(address, _Handler)
        self.queue = queue

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: EvalHTTPServer

    # Silence per-request stderr logging; /metrics is the telemetry
    # surface.
    def log_message(self, format: str, *args: object) -> None:
        pass

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return parsed if isinstance(parsed, dict) else None

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["healthz"]:
            self._send_text(200, "ok\n")
        elif parts == ["metrics"]:
            self._send_text(200, render_prometheus(
                perf_caches=perfstats.snapshot(),
                extra=self.server.queue.metrics()))
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._job_status(parts[2])
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                and parts[3] == "results"):
            self._job_results(parts[2], parse_qs(parsed.query))
        else:
            self._send_json(404, {"error": f"no route for {parsed.path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if parts == ["v1", "jobs"]:
            self._submit()
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                and parts[3] == "cancel"):
            self._cancel(parts[2])
        else:
            self._send_json(404, {"error": f"no route for {self.path}"})

    # -- handlers ------------------------------------------------------------

    def _submit(self) -> None:
        spec = self._read_body()
        if spec is None:
            self._send_json(400, {"error": "body must be a JSON object"})
            return
        try:
            job = self.server.queue.submit(spec)
        except JobRejected as exc:
            self._send_json(503, {"error": str(exc)})
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            self._send_json(202, {"job_id": job.job_id,
                                  "status": job.status})

    def _get_job(self, job_id: str):
        try:
            return self.server.queue.get(job_id)
        except KeyError:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return None

    def _job_status(self, job_id: str) -> None:
        job = self._get_job(job_id)
        if job is not None:
            self._send_json(200, job.snapshot())

    def _job_results(self, job_id: str,
                     query: Dict[str, list]) -> None:
        job = self._get_job(job_id)
        if job is None:
            return
        try:
            offset = int(query.get("offset", ["0"])[0])
        except ValueError:
            self._send_json(400, {"error": "offset must be an integer"})
            return
        lines, next_offset, complete = job.results_since(offset)
        self._send_json(200, {
            "lines": lines,
            "next_offset": next_offset,
            "complete": complete,
            "status": job.status,
        })

    def _cancel(self, job_id: str) -> None:
        job = self._get_job(job_id)
        if job is not None:
            self.server.queue.cancel(job_id)
            self._send_json(200, job.snapshot())


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    queue: Optional[JobQueue] = None,
    **queue_kwargs: object,
) -> EvalHTTPServer:
    """Start a service on ``host:port`` (0 = ephemeral) in a daemon
    thread and return the server (``server.url`` for clients,
    ``server.shutdown()`` + ``server.queue.shutdown()`` to stop).
    Extra keyword arguments construct the :class:`JobQueue`.
    """
    import threading

    if queue is None:
        queue = JobQueue(**queue_kwargs)  # type: ignore[arg-type]
    server = EvalHTTPServer((host, port), queue)
    thread = threading.Thread(target=server.serve_forever,
                              name="eval-serve", daemon=True)
    thread.start()
    return server


def main(argv: Optional[list] = None) -> int:
    """``eval-serve`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="eval-serve",
        description="Serve ChipVQA evaluations over an HTTP job queue.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377)
    parser.add_argument("--queue-workers", type=int, default=2,
                        help="concurrently running jobs (default: 2)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="queued+running jobs before 503 "
                             "(default: 64)")
    parser.add_argument("--run-root", default=None,
                        help="checkpoint root; one directory per job "
                             "(default: a temp directory)")
    args = parser.parse_args(argv)
    from repro.core.resilience import AdmissionPolicy

    queue = JobQueue(
        queue_workers=args.queue_workers,
        run_root=args.run_root,
        admission=AdmissionPolicy(max_pending=args.max_pending))
    server = EvalHTTPServer((args.host, args.port), queue)
    print(f"eval-serve listening on {server.url} "
          f"(queue workers: {args.queue_workers}, "
          f"max pending: {args.max_pending})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        queue.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
