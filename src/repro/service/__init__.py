"""Evaluation-as-a-service: HTTP job queue over the EvalEngine core.

The batch harness and this service share one execution substrate —
:class:`~repro.core.engine.EvalEngine` under a
:class:`~repro.core.runner.ParallelRunner` — so a served sweep produces
artifacts byte-identical to a batch run.  The pieces:

* :mod:`repro.service.jobs` — the in-process async job queue
  (:class:`~repro.service.jobs.JobQueue`): submit / status / streamed
  results / cancellation, admission-gated by an
  :class:`~repro.core.resilience.AdmissionPolicy` (backlog past
  ``max_pending`` is *rejected*, never queued into a hang);
* :mod:`repro.service.router` —
  :class:`~repro.service.router.ProviderRouter`, least-loaded
  load-balancing of whole question batches across provider replicas
  with per-replica circuit breakers and transparent failover;
* :mod:`repro.service.server` — the stdlib-only HTTP layer
  (``eval-serve`` CLI) exposing the queue at ``/v1/jobs`` plus a
  Prometheus-style ``/metrics`` endpoint;
* :mod:`repro.service.client` —
  :class:`~repro.service.client.EvalServiceClient`, the thin
  retry-aware client the ``table2 --service URL`` path uses;
* :mod:`repro.service.metrics` — the text exposition shared by
  ``/metrics`` and ``table2 --metrics-out``.

See ``docs/SERVICE.md`` for endpoints, the job lifecycle and the
load-bench methodology (``benchmarks/bench_service_load.py``).
"""

from repro.service.client import EvalServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue, JobRejected
from repro.service.metrics import render_prometheus
from repro.service.router import ProviderRouter

__all__ = [
    "EvalServiceClient",
    "Job",
    "JobQueue",
    "JobRejected",
    "ProviderRouter",
    "ServiceError",
    "render_prometheus",
]
