"""Prometheus-style text exposition of run and service telemetry.

One renderer serves both surfaces named by ROADMAP item 5's
observability headroom: ``table2 --metrics-out metrics.prom`` writes a
batch run's counters, and the evaluation service's ``/metrics``
endpoint exposes the queue's live counters plus this process's
perception-substrate caches.  The format is the Prometheus text
exposition format, version 0.0.4 — ``# HELP`` / ``# TYPE`` headers,
one ``name{labels} value`` sample per line — which is also trivially
greppable, so the artifact stays useful without a scrape stack.

Everything here is deterministic: families and labels are emitted in
sorted order so two renders of the same counters are byte-identical
(the same posture as checkpoints and manifests).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.core.perfstats import STAGE_TIMINGS_NAME

#: Metric suffix per perf-cache counter key (``size`` is a gauge of
#: current occupancy; everything else accumulates).
_CACHE_COUNTERS = ("hits", "misses", "evictions", "size",
                   "spill_hits", "spill_misses")

#: Unit statuses exported as ``repro_run_units{status=...}``.
_UNIT_STATUSES = ("completed", "failed", "resumed", "fast_failed",
                  "timed_out")


def _sanitize(name: str) -> str:
    """Coerce an arbitrary counter key to a legal metric-name token."""
    token = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if token and token[0].isdigit():
        token = "_" + token
    return token


def _family(lines: List[str], name: str, help_text: str,
            kind: str = "gauge") -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _fmt(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number):
        return str(int(number))
    return repr(number)


def render_prometheus(
    stats=None,
    perf_caches: Optional[Dict[str, Dict[str, int]]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Render counters as Prometheus text exposition.

    ``stats`` is a :class:`~repro.core.runner.RunStats` (or None):
    unit-status counts, retry/cache totals and wall time become
    ``repro_run_*`` samples, its merged
    :attr:`~repro.core.runner.RunStats.perf_caches` become
    ``repro_cache_*{cache="..."}`` samples, and its coordinator fleet
    counters become ``repro_fleet_*``.  ``perf_caches`` overrides the
    cache source (the service passes a live
    :func:`repro.core.perfstats.snapshot`).  ``extra`` is a flat
    mapping of service-side counters, emitted as
    ``repro_service_<key>``.

    Returns the full payload, trailing-newline-terminated.
    """
    lines: List[str] = []
    if stats is not None:
        _family(lines, "repro_run_units",
                "Work units of the most recent run by terminal status")
        for status in _UNIT_STATUSES:
            count = getattr(stats, status)
            lines.append(
                f'repro_run_units{{status="{status}"}} {_fmt(count)}')
        _family(lines, "repro_run_retries_total",
                "Transient-fault retries across the run", "counter")
        lines.append(f"repro_run_retries_total {_fmt(stats.total_retries)}")
        _family(lines, "repro_run_cache_hits_total",
                "Run-cache (per-question memo) hits", "counter")
        lines.append(f"repro_run_cache_hits_total {_fmt(stats.cache_hits)}")
        _family(lines, "repro_run_cache_misses_total",
                "Run-cache (per-question memo) misses", "counter")
        lines.append(
            f"repro_run_cache_misses_total {_fmt(stats.cache_misses)}")
        _family(lines, "repro_run_quarantined_total",
                "Questions salvaged as quarantined", "counter")
        lines.append(
            f"repro_run_quarantined_total {_fmt(stats.quarantined)}")
        _family(lines, "repro_run_wall_time_seconds",
                "Summed per-unit wall time of the run")
        lines.append(
            f"repro_run_wall_time_seconds {_fmt(stats.total_wall_time())}")
        if perf_caches is None:
            perf_caches = stats.perf_caches
    stages: Dict[str, int] = {}
    if perf_caches:
        perf_caches = dict(perf_caches)
        stages = perf_caches.pop(STAGE_TIMINGS_NAME, {})
        for counter in _CACHE_COUNTERS:
            relevant = {name: entry for name, entry in perf_caches.items()
                        if counter in entry}
            if not relevant:
                continue
            metric = f"repro_cache_{counter}"
            kind = "gauge" if counter == "size" else "counter"
            _family(lines, metric,
                    f"Perception-substrate cache {counter} by cache",
                    kind)
            for name in sorted(relevant):
                lines.append(
                    f'{metric}{{cache="{_sanitize(name)}"}} '
                    f"{_fmt(relevant[name][counter])}")
    if stages:
        names = sorted({key[:-3] for key in stages
                        if key.endswith("_ns")})
        _family(lines, "repro_stage_seconds_total",
                "Pipeline hot-path time by stage (docs/PERF.md)",
                "counter")
        for name in names:
            lines.append(
                f'repro_stage_seconds_total{{stage="{_sanitize(name)}"}} '
                f"{_fmt(stages.get(name + '_ns', 0) / 1e9)}")
        _family(lines, "repro_stage_calls_total",
                "Pipeline hot-path invocations by stage", "counter")
        for name in names:
            lines.append(
                f'repro_stage_calls_total{{stage="{_sanitize(name)}"}} '
                f"{_fmt(stages.get(name + '_calls', 0))}")
    coordinator = (getattr(stats, "coordinator", None) or {}
                   if stats is not None else {})
    if coordinator:
        for key in sorted(coordinator):
            metric = f"repro_fleet_{_sanitize(key)}"
            _family(lines, metric,
                    f"Sweep-coordinator fleet counter {key}")
            lines.append(f"{metric} {_fmt(coordinator[key])}")
    if extra:
        for key in sorted(extra):
            metric = f"repro_service_{_sanitize(key)}"
            _family(lines, metric, f"Evaluation-service counter {key}")
            lines.append(f"{metric} {_fmt(extra[key])}")
    return "\n".join(lines) + "\n" if lines else ""
