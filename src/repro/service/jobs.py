"""The async job queue behind the evaluation service.

A *job* is one served Table-II-shaped sweep: a JSON spec naming
registry models (plus optional serving knobs), executed by a worker
thread through a per-job :class:`~repro.core.runner.ParallelRunner` —
the exact substrate batch runs use, which is why a served job's
checkpoints are byte-identical to a batch run's.  The queue adds the
service semantics on top:

* **admission** — :meth:`JobQueue.submit` consults the service's
  :class:`~repro.core.resilience.AdmissionPolicy`: a backlog past
  ``max_pending`` raises :class:`JobRejected` (the HTTP layer maps it
  to 503) instead of queueing into an unbounded hang;
* **cancellation** — :meth:`JobQueue.cancel` flips the job's cancel
  event, which the per-job admission policy checks before every unit:
  a queued job dies immediately, a running job stops at the next unit
  boundary with its completed units checkpointed (unit granularity —
  an in-flight unit finishes; docs/SERVICE.md);
* **streaming** — every completed unit's *canonical checkpoint
  payload* is appended to the job's result log via the engine's
  ``on_unit_complete`` hook, so clients can stream and digest results
  incrementally with an offset cursor
  (:meth:`Job.results_since`);
* **replicas** — ``"replicas": N`` in a spec serves each model through
  a :class:`~repro.service.router.ProviderRouter` over N identical
  provider instances with breaker-aware failover.

Job specs (all keys except ``models`` optional)::

    {"models": ["gpt-4o", ...],      # registry names (required)
     "setting": "both",              # both | standard | challenge
     "backend": "async",             # serial | thread | process | async
     "workers": 4,                   # runner fan-out within the job
     "replicas": 1,                  # provider replicas per model
     "deadline_s": null,             # per-unit deadline
     "breaker": null,                # per-model breaker threshold
     "quarantine": false,            # salvage faulting questions
     "latency_s": 0.0,               # simulated endpoint latency
     "failure_rate": 0.0}            # simulated transient-fault rate

``latency_s``/``failure_rate`` wrap each provider in a
:class:`~repro.models.providers.RemoteStubProvider`; answers stay
keyed on the provider *name*, so even a remote-wrapped job reproduces
the canonical bytes.
"""

from __future__ import annotations

import tempfile
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.resilience import (
    AdmissionPolicy,
    CircuitBreaker,
    QuarantinePolicy,
)
from repro.service.router import ProviderRouter

#: Spec values accepted for ``setting``.
SETTINGS = ("both", "standard", "challenge")

#: Spec values accepted for ``backend``.
BACKENDS = ("serial", "thread", "process", "async")

#: Default cap on queued-plus-running jobs before 503-style rejection.
DEFAULT_MAX_PENDING = 64


class JobRejected(RuntimeError):
    """Admission refused the job (queue full); maps to HTTP 503."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


class Job:
    """One submitted evaluation job and its streamable result log."""

    def __init__(self, spec: Dict[str, object], run_dir: Path) -> None:
        self.job_id = uuid.uuid4().hex
        self.spec = spec
        self.run_dir = run_dir
        #: queued | running | completed | failed | cancelled
        self.status = "queued"
        self.error: Optional[str] = None
        self.cancel_event = threading.Event()
        self.units_total = 0
        self.units_done = 0
        self.units_failed = 0
        self.created_s = time.monotonic()
        self.finished_s: Optional[float] = None
        self._lock = threading.Lock()
        self._results: List[str] = []
        self._terminal = threading.Event()

    # -- result streaming ----------------------------------------------------

    def append_result(self, payload: str) -> None:
        """Record one unit's canonical checkpoint payload."""
        with self._lock:
            self._results.append(payload)
            self.units_done += 1

    def results_since(self, offset: int) -> Tuple[List[str], int, bool]:
        """Result lines from ``offset`` on, the next cursor, and
        whether the job is terminal (no more lines will ever come)."""
        with self._lock:
            lines = self._results[max(0, offset):]
            next_offset = len(self._results)
        return lines, next_offset, self._terminal.is_set()

    # -- lifecycle -----------------------------------------------------------

    def finish(self, status: str, error: Optional[str] = None) -> None:
        self.status = status
        self.error = error
        self.finished_s = time.monotonic()
        self._terminal.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True if it finished."""
        return self._terminal.wait(timeout)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready status view served by ``GET /v1/jobs/<id>``."""
        with self._lock:
            done = self.units_done
        return {
            "job_id": self.job_id,
            "status": self.status,
            "error": self.error,
            "units_total": self.units_total,
            "units_done": done,
            "units_failed": self.units_failed,
            "run_dir": str(self.run_dir),
        }


def validate_spec(spec: Dict[str, object]) -> Dict[str, object]:
    """Validate and normalise a job spec (raises ``ValueError``)."""
    _require(isinstance(spec, dict), "job spec must be a JSON object")
    models = spec.get("models")
    _require(isinstance(models, list) and bool(models)
             and all(isinstance(m, str) for m in models),
             "spec.models must be a non-empty list of registry names")
    setting = spec.get("setting", "both")
    _require(setting in SETTINGS,
             f"spec.setting must be one of {SETTINGS}")
    backend = spec.get("backend", "async")
    _require(backend in BACKENDS,
             f"spec.backend must be one of {BACKENDS}")
    workers = int(spec.get("workers", 1))
    _require(workers >= 1, "spec.workers must be >= 1")
    replicas = int(spec.get("replicas", 1))
    _require(replicas >= 1, "spec.replicas must be >= 1")
    return dict(spec, setting=setting, backend=backend,
                workers=workers, replicas=replicas)


class JobQueue:
    """Thread-backed async job queue over the evaluation substrate.

    ``queue_workers`` bounds concurrently *running* jobs; admission
    (``admission.max_pending``, default :data:`DEFAULT_MAX_PENDING`)
    bounds queued-plus-running jobs, past which :meth:`submit` raises
    :class:`JobRejected`.  ``run_root`` holds one checkpoint directory
    per job (a temp directory by default).  ``harness`` is shared
    across jobs — the perception caches make consecutive jobs over the
    same models dramatically cheaper.
    """

    def __init__(
        self,
        harness=None,
        queue_workers: int = 2,
        run_root: "Optional[Path | str]" = None,
        admission: Optional[AdmissionPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if queue_workers < 1:
            raise ValueError("queue_workers must be >= 1")
        if harness is None:
            from repro.core.harness import EvaluationHarness
            harness = EvaluationHarness()
        self.harness = harness
        self.run_root = (Path(run_root) if run_root is not None
                         else Path(tempfile.mkdtemp(prefix="repro-serve-")))
        self.admission = admission or AdmissionPolicy(
            max_pending=DEFAULT_MAX_PENDING)
        self._clock = clock
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._queue: Deque[Job] = deque()
        self._running = 0
        self._shutdown = False
        self._counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_rejected": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "jobs_cancelled": 0,
            "units_evaluated": 0,
        }
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"job-worker-{index}", daemon=True)
            for index in range(queue_workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- public API ----------------------------------------------------------

    def submit(self, spec: Dict[str, object]) -> Job:
        """Admit one job (raises :class:`JobRejected` past saturation,
        ``ValueError`` for a malformed spec)."""
        spec = validate_spec(spec)
        from repro.models.providers import provider_names

        known = set(provider_names())
        unknown = [m for m in spec["models"]  # type: ignore[union-attr]
                   if m not in known]
        if unknown:
            raise ValueError(
                f"unknown model(s) {sorted(unknown)}; known registry "
                f"names: {sorted(known)}")
        with self._cv:
            if self._shutdown:
                raise JobRejected("queue is shut down")
            pending = len(self._queue) + self._running
            refusal = self.admission.refuse_request(pending)
            if refusal is not None:
                self._counters["jobs_rejected"] += 1
                raise JobRejected(refusal)
            job = Job(spec, self.run_root / "pending")
            job.run_dir = self.run_root / f"job-{job.job_id}"
            self._jobs[job.job_id] = job
            self._queue.append(job)
            self._counters["jobs_submitted"] += 1
            self._cv.notify()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._jobs[job_id]

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; a queued job dies immediately, a
        running one stops at its next unit boundary."""
        job = self.get(job_id)
        job.cancel_event.set()
        with self._cv:
            if job.status == "queued":
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass  # a worker grabbed it; the event stops it
                else:
                    job.finish("cancelled", "cancelled before start")
                    self._counters["jobs_cancelled"] += 1
        return job

    def metrics(self) -> Dict[str, int]:
        """Live counters for ``/metrics`` (sorted-key stable)."""
        with self._lock:
            data = dict(self._counters)
            data["jobs_queued"] = len(self._queue)
            data["jobs_running"] = self._running
        return data

    def shutdown(self, timeout: Optional[float] = 5.0) -> None:
        """Stop admitting, cancel queued jobs, join worker threads."""
        with self._cv:
            self._shutdown = True
            while self._queue:
                job = self._queue.popleft()
                job.finish("cancelled", "queue shut down")
                self._counters["jobs_cancelled"] += 1
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._shutdown:
                    self._cv.wait()
                if self._shutdown and not self._queue:
                    return
                job = self._queue.popleft()
                self._running += 1
            try:
                self._execute(job)
            except BaseException as exc:  # the queue must survive a job
                job.finish("failed", f"{type(exc).__name__}: {exc}")
                with self._lock:
                    self._counters["jobs_failed"] += 1
            finally:
                with self._cv:
                    self._running -= 1
                    self._cv.notify()

    def _build_units(self, job: Job) -> list:
        from repro.core.benchmark import (build_chipvqa,
                                          build_chipvqa_challenge)
        from repro.core.runner import WorkUnit
        from repro.models.vlm import NO_CHOICE, WITH_CHOICE

        spec = job.spec
        providers = [self._provider_for(name, spec)
                     for name in spec["models"]]  # type: ignore[index]
        cells = []
        if spec["setting"] in ("both", "standard"):
            cells.append((build_chipvqa(), WITH_CHOICE))
        if spec["setting"] in ("both", "challenge"):
            cells.append((build_chipvqa_challenge(), NO_CHOICE))
        return [WorkUnit(model=provider, dataset=dataset, setting=setting)
                for provider in providers
                for dataset, setting in cells]

    def _provider_for(self, name: str, spec: Dict[str, object]):
        """Build one model's serving stack from the spec knobs."""
        from repro.models.providers import (RemoteStubProvider,
                                            create_provider)

        latency = float(spec.get("latency_s", 0.0) or 0.0)
        failure_rate = float(spec.get("failure_rate", 0.0) or 0.0)
        seed = int(spec.get("seed", 0) or 0)

        def build():
            provider = create_provider(name)
            if latency or failure_rate:
                provider = RemoteStubProvider(
                    provider, base_latency_s=latency,
                    transient_rate=failure_rate, seed=seed)
            return provider

        replicas = int(spec["replicas"])  # type: ignore[index]
        if replicas == 1:
            return build()
        return ProviderRouter([build() for _ in range(replicas)])

    def _job_admission(self, job: Job) -> AdmissionPolicy:
        """Fold the spec's resilience knobs and the cancel event into
        one per-job admission policy (the per-run face of the same
        class gating this queue — docs/SERVICE.md)."""
        spec = job.spec
        breaker = None
        if spec.get("breaker"):
            breaker = CircuitBreaker(int(spec["breaker"]))  # type: ignore
        quarantine = QuarantinePolicy() if spec.get("quarantine") else None
        deadline_raw = spec.get("deadline_s")
        deadline_s = (float(deadline_raw)  # type: ignore[arg-type]
                      if deadline_raw is not None else None)
        return AdmissionPolicy(
            breaker=breaker, quarantine=quarantine, deadline_s=deadline_s,
            cancelled=job.cancel_event.is_set)

    def _execute(self, job: Job) -> None:
        from repro.core.runner import ParallelRunner

        if job.cancel_event.is_set():
            job.finish("cancelled", "cancelled before start")
            with self._lock:
                self._counters["jobs_cancelled"] += 1
            return
        job.status = "running"
        units = self._build_units(job)
        job.units_total = len(units)
        spec = job.spec
        runner = ParallelRunner(
            harness=self.harness,
            workers=int(spec["workers"]),  # type: ignore[index]
            run_dir=job.run_dir,
            backend=str(spec["backend"]),  # type: ignore[index]
            admission=self._job_admission(job),
            # serialize-once: the stream receives each unit's canonical
            # checkpoint bytes verbatim instead of re-encoding the
            # result (the engine times the hand-off as the ``stream``
            # stage)
            on_unit_payload=lambda unit, payload: job.append_result(
                payload),
        )
        outcome = runner.run(units)
        job.units_failed = len(outcome.failures)
        with self._lock:
            self._counters["units_evaluated"] += len(outcome.results)
        if job.cancel_event.is_set():
            job.finish("cancelled", "cancelled mid-run; "
                       f"{len(outcome.results)}/{len(units)} unit(s) "
                       "completed")
            with self._lock:
                self._counters["jobs_cancelled"] += 1
        elif outcome.failures:
            detail = "; ".join(
                f"{uid}: {err}"
                for uid, err in sorted(outcome.failures.items()))
            job.finish("failed",
                       f"{len(outcome.failures)} unit(s) failed: {detail}")
            with self._lock:
                self._counters["jobs_failed"] += 1
        else:
            job.finish("completed")
            with self._lock:
                self._counters["jobs_completed"] += 1
