"""Replica routing: load-balance question batches across providers.

:class:`ProviderRouter` is itself a
:class:`~repro.models.providers.ModelProvider`, so it drops into any
:class:`~repro.core.runner.WorkUnit` transparently — the runner, the
engine and the artifacts never know a unit was served by a fleet of
replicas rather than one endpoint.  Three properties make that safe:

* **Identity** — every replica must present the same ``name`` and
  ``config_fingerprint`` (enforced at construction).  Answers are a
  pure function of provider identity, so any replica produces the
  byte-identical batch and routing cannot perturb the golden digest.
* **Whole batches** — a unit's question list is dispatched to exactly
  one replica per attempt, never split: quota-IRT outcome planning is
  cohort-dependent (see docs/PROVIDERS.md), so splitting would change
  answers.  Routing granularity is the unit, parallelism comes from
  concurrent units.
* **Breaker-aware ejection + failover** — each replica gets its own
  :class:`~repro.core.resilience.CircuitBreaker` key; a replica whose
  circuit opens is ejected from candidate selection until it cools
  down, and a mid-call failure fails over to the next healthy replica
  within the same ``answer_batch`` call.  Only when every replica has
  failed or been ejected does the call raise — and then with the last
  underlying error, so the runner's retry/backoff machinery sees the
  real fault class.

Selection is least-loaded: fewest in-flight calls, then fewest
cumulative dispatches, then lowest index — deterministic under equal
load, balanced under concurrency.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.core.faults import ModelCallError, TransientModelError
from repro.core.question import Question
from repro.core.resilience import CircuitBreaker
from repro.models.providers import ModelAnswer, ModelProvider, as_provider


class ProviderRouter:
    """Route whole ``answer_batch`` calls across identical replicas.

    ``replicas`` accepts providers, raw models, or registry names
    (anything :func:`~repro.models.providers.as_provider` takes).
    ``breaker`` defaults to a per-replica circuit breaker opening after
    ``failure_threshold`` consecutive failures; pass an explicit
    :class:`CircuitBreaker` to share or tune it (keys are
    ``replica-<index>``).  ``clock`` is injectable for cooldown tests.
    """

    def __init__(
        self,
        replicas: Sequence[object],
        breaker: Optional[CircuitBreaker] = None,
        failure_threshold: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        resolved: List[ModelProvider] = [as_provider(r) for r in replicas]
        if not resolved:
            raise ValueError("ProviderRouter needs at least one replica")
        names = {provider.name for provider in resolved}
        if len(names) != 1:
            raise ValueError(
                f"replicas must share one provider name, got {sorted(names)}")
        prints = {provider.config_fingerprint() for provider in resolved}
        if len(prints) != 1:
            raise ValueError(
                "replicas must share one config fingerprint — differing "
                "configs would answer differently and break determinism")
        self.replicas = resolved
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold, clock=clock)
        self._lock = threading.Lock()
        self._in_flight = [0] * len(resolved)
        self._dispatches = [0] * len(resolved)
        self._failovers = 0
        self._ejections = 0

    # -- provider protocol ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.replicas[0].name

    def config_fingerprint(self) -> str:
        return self.replicas[0].config_fingerprint()

    def _replica_key(self, index: int) -> str:
        return f"replica-{index}"

    def _pick(self, tried: Set[int]) -> Optional[int]:
        """Least-loaded healthy replica not yet tried this call."""
        with self._lock:
            candidates = []
            for index in range(len(self.replicas)):
                if index in tried:
                    continue
                if not self.breaker.allow(self._replica_key(index)):
                    self._ejections += 1
                    continue
                candidates.append(
                    (self._in_flight[index], self._dispatches[index], index))
            if not candidates:
                return None
            _, _, index = min(candidates)
            self._in_flight[index] += 1
            self._dispatches[index] += 1
            return index

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        """Serve one whole batch, failing over across replicas.

        Raises the *last* replica error once every replica has failed
        or been ejected, so upstream retry/breaker policy classifies
        the true fault; an all-ejected fleet raises a
        :class:`~repro.core.faults.TransientModelError` (the condition
        is recoverable once a breaker cools down).
        """
        tried: Set[int] = set()
        last_error: Optional[ModelCallError] = None
        while True:
            index = self._pick(tried)
            if index is None:
                if last_error is not None:
                    raise last_error
                raise TransientModelError(
                    f"all {len(self.replicas)} replica(s) of "
                    f"{self.name!r} ejected by open circuit breakers")
            tried.add(index)
            key = self._replica_key(index)
            try:
                answers = self.replicas[index].answer_batch(
                    questions, setting, resolution_factor,
                    use_raster=use_raster)
            except ModelCallError as exc:
                self.breaker.record_failure(key, str(exc))
                last_error = exc
                with self._lock:
                    self._in_flight[index] -= 1
                    self._failovers += 1
                continue
            except BaseException:
                with self._lock:
                    self._in_flight[index] -= 1
                raise
            self.breaker.record_success(key)
            with self._lock:
                self._in_flight[index] -= 1
            return answers

    # -- telemetry -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Dispatch/failover counters plus per-replica breaker state."""
        with self._lock:
            return {
                "replicas": len(self.replicas),
                "dispatches": list(self._dispatches),
                "in_flight": list(self._in_flight),
                "failovers": self._failovers,
                "ejections": self._ejections,
                "breaker": self.breaker.as_dict(),
            }

    def __repr__(self) -> str:
        return (f"ProviderRouter(name={self.name!r}, "
                f"replicas={len(self.replicas)})")
