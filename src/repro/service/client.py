"""Retry-aware client for the evaluation service.

:class:`EvalServiceClient` is the thin urllib-based counterpart of
:mod:`repro.service.server` — the same stdlib-only posture, used by the
``table2 --service URL`` CLI path and the load benchmark.  Transport
faults (connection refused/reset, torn reads) are retried with
exponential backoff; an HTTP *response* is never retried blindly —
the server spoke, so its status code is authoritative (a 503 raises
:class:`~repro.service.jobs.JobRejected` for the caller's own backoff
policy, other errors raise :class:`ServiceError`).

:meth:`EvalServiceClient.stream_results` is offset-resumable: the
cursor lives client-side, so a torn connection mid-stream simply
re-polls from the last acknowledged offset — no duplicated and no
dropped lines (the lines are canonical checkpoint payloads, so the
streamed transcript digests identically to the server-side artifacts).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Callable, Dict, Iterator, List, Optional

from repro.service.jobs import JobRejected

#: Transport-level faults worth retrying (the request may never have
#: reached the server, or the response was torn mid-read).
_RETRYABLE = (urllib.error.URLError, ConnectionError, HTTPException,
              TimeoutError, OSError)


class ServiceError(RuntimeError):
    """The service answered with a non-retryable error status."""


class EvalServiceClient:
    """Client for one evaluation service at ``base_url``.

    ``retries``/``backoff_s`` govern transport-fault retry (backoff
    doubles per attempt); ``opener`` is injectable for tests — any
    callable with :func:`urllib.request.urlopen`'s signature.
    """

    def __init__(
        self,
        base_url: str,
        retries: int = 3,
        backoff_s: float = 0.05,
        timeout_s: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
        opener: Optional[Callable] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.retries = retries
        self.backoff_s = backoff_s
        self.timeout_s = timeout_s
        self._sleep = sleep
        self._opener = opener or urllib.request.urlopen
        self.transport_retries = 0  # observable in tests/bench

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None) -> Dict:
        """One JSON round-trip with transport-fault retry."""
        url = f"{self.base_url}{path}"
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with self._opener(request,
                                  timeout=self.timeout_s) as response:
                    body = response.read().decode("utf-8")
                    return json.loads(body) if body else {}
            except urllib.error.HTTPError as exc:
                # The server answered: its verdict stands, no retry.
                detail = self._error_detail(exc)
                if exc.code == 503:
                    raise JobRejected(detail) from exc
                raise ServiceError(
                    f"{method} {path} -> {exc.code}: {detail}") from exc
            except _RETRYABLE as exc:
                last_error = exc
                if attempt == self.retries:
                    break
                self.transport_retries += 1
                self._sleep(self.backoff_s * (2 ** attempt))
        raise ServiceError(
            f"{method} {path} failed after {self.retries + 1} "
            f"attempt(s): {last_error}") from last_error

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            return json.loads(exc.read().decode("utf-8"))["error"]
        except Exception:
            return str(exc)

    # -- API -----------------------------------------------------------------

    def submit_job(self, spec: Dict[str, object]) -> str:
        """Submit a job spec; returns the job id (503 →
        :class:`~repro.service.jobs.JobRejected`)."""
        return str(self._request("POST", "/v1/jobs", spec)["job_id"])

    def job_status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def metrics(self) -> str:
        """Raw Prometheus text from ``/metrics``."""
        url = f"{self.base_url}/metrics"
        with self._opener(urllib.request.Request(url),
                          timeout=self.timeout_s) as response:
            return response.read().decode("utf-8")

    def stream_results(self, job_id: str,
                       poll_s: float = 0.05) -> Iterator[str]:
        """Yield result lines as the job produces them, until the job
        is terminal and fully drained.  Offset-resumable: transport
        faults inside a poll are absorbed by :meth:`_request` retry
        and the cursor never moves past acknowledged lines.
        """
        offset = 0
        while True:
            page = self._request(
                "GET", f"/v1/jobs/{job_id}/results?offset={offset}")
            for line in page["lines"]:
                yield line
            offset = int(page["next_offset"])
            if page["complete"]:
                return
            self._sleep(poll_s)

    def wait(self, job_id: str,
             timeout_s: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, object]:
        """Poll until the job is terminal; returns the final snapshot.

        Raises :class:`ServiceError` on timeout — never hangs forever
        on a wedged job.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            snapshot = self.job_status(job_id)
            if snapshot["status"] in ("completed", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {snapshot['status']!r} after "
                    f"{timeout_s}s")
            self._sleep(poll_s)

    def collect(self, job_id: str) -> List[str]:
        """Drain the full result stream into a list (blocks until the
        job is terminal)."""
        return list(self.stream_results(job_id))
