"""The chip-designer agent: a text-only LLM orchestrating the vision tool.

Reproduces Section IV-C's proof-of-concept: a GPT-4-Turbo "chip designer"
without visual access interprets the question, invokes the describe-image
tool when the prompt references a figure, and answers from the description.
Outcome realisation uses the same quota-IRT machinery as the VLM zoo, with
description *fidelity* in place of pixel perception — which is what makes
the manufacturing category regress (structure/layout figures describe
poorly) even while overall accuracy improves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.prompts import SYSTEM_PROMPT, question_user_prompt
from repro.core.question import Category, Question
from repro.agent.messages import Conversation, Role
from repro.agent.tools import VisionTool
from repro.models.irt import OutcomePlan, abilities_from_rates, plan_outcomes
from repro.models.llm import LlmBackbone
from repro.models.vlm import NO_CHOICE, WITH_CHOICE, ModelAnswer
from repro.core.prompts import build_prompt

DESIGNER_SYSTEM_PROMPT = (
    "You are an expert chip designer. You cannot see images. When the "
    "question references a figure, call the describe_image tool and "
    "reason from its description. Answer concisely."
)

#: Calibrated per-discipline pass rates of the agent system (Table III:
#: overall 0.49 with choice / 0.21 without; manufacturing regresses versus
#: plain GPT-4o, per the paper's Section IV-C discussion).
AGENT_RATES_WITH_CHOICE: Dict[Category, float] = {
    Category.DIGITAL: 0.57,
    Category.ANALOG: 0.57,
    Category.ARCHITECTURE: 0.35,
    Category.MANUFACTURING: 0.10,
    Category.PHYSICAL: 0.65,
}

AGENT_RATES_NO_CHOICE: Dict[Category, float] = {
    Category.DIGITAL: 0.23,
    Category.ANALOG: 0.11,
    Category.ARCHITECTURE: 0.20,
    Category.MANUFACTURING: 0.15,
    Category.PHYSICAL: 0.43,
}


@dataclass
class AgentTrace:
    """One question's conversation plus the final answer."""

    qid: str
    conversation: Conversation
    answer: str
    tool_calls: int


class ChipDesignerAgent:
    """Text-only designer + vision tool, evaluated like a VLM."""

    name = "agent-gpt4turbo+gpt4o"

    def __init__(self, tool: Optional[VisionTool] = None,
                 designer: Optional[LlmBackbone] = None):
        self.tool = tool or VisionTool()
        self.designer = designer or LlmBackbone(
            name="gpt-4-turbo", params_billion=175.0, text_ability=0.88)

    def config_payload(self) -> Dict[str, object]:
        """Configuration identity for provider fingerprinting.

        Consumed by :func:`repro.models.providers._model_config_payload`
        when the agent is wrapped in a
        :class:`~repro.models.providers.LocalProvider`, so an agent with
        a swapped designer backbone or tool backend never shares cache
        or checkpoint entries with the default configuration.
        """
        return {
            "kind": "chip-designer-agent",
            "name": self.name,
            "designer": {
                "name": self.designer.name,
                "params_billion": self.designer.params_billion,
                "text_ability": self.designer.text_ability,
            },
            "tool": self.tool.config_payload(),
            "followup_fidelity": self.FOLLOWUP_FIDELITY,
        }

    def _rates(self, setting: str) -> Mapping[Category, float]:
        if setting == WITH_CHOICE:
            return AGENT_RATES_WITH_CHOICE
        if setting == NO_CHOICE:
            return AGENT_RATES_NO_CHOICE
        raise ValueError(f"unknown setting {setting!r}")

    def plan(self, questions: Sequence[Question],
             setting: str) -> OutcomePlan:
        rates = self._rates(setting)
        fidelities = {q.qid: self.tool.fidelity(q) for q in questions}
        abilities = abilities_from_rates(rates)
        return plan_outcomes(self.name, abilities, rates, questions,
                             fidelities)

    #: Below this description fidelity the designer asks a follow-up.
    FOLLOWUP_FIDELITY = 0.75

    def solve(self, question: Question, plan: OutcomePlan) -> AgentTrace:
        """Run the conversation loop for one question.

        The paper describes the loop as iterative ("this interactive
        process repeats until the chip designer arrives at an answer"):
        when the first description carries the figure poorly (quantitative
        process figures), the designer issues a follow-up request for the
        annotations specifically — which still cannot restore pixel-level
        information, hence the manufacturing regression.
        """
        conversation = Conversation()
        conversation.add(Role.SYSTEM, DESIGNER_SYSTEM_PROMPT)
        conversation.add(Role.USER, question_user_prompt(question))
        # the designer has no eyes: a figure reference triggers a tool call
        tool_calls = 0
        if question.all_visuals:
            conversation.add(
                Role.ASSISTANT,
                f"I will consult the figure via {self.tool.name}.")
            description = self.tool.describe_question(question)
            conversation.add(Role.TOOL, description,
                             tool_name=self.tool.name)
            tool_calls = 1
            if self.tool.fidelity(question) < self.FOLLOWUP_FIDELITY:
                conversation.add(
                    Role.ASSISTANT,
                    "The description omits dimensions I need; please "
                    "read out every annotation and measurement in the "
                    "figure.")
                conversation.add(
                    Role.TOOL,
                    "Annotations visible: "
                    + "; ".join(v.description for v in question.all_visuals),
                    tool_name=self.tool.name)
                tool_calls += 1
        correct = plan.is_correct(question.qid)
        if correct:
            answer = self.designer.phrase_correct(question, seed=self.name)
        else:
            answer = self.designer.phrase_incorrect(question, seed=self.name)
        conversation.add(Role.ASSISTANT, answer)
        return AgentTrace(qid=question.qid, conversation=conversation,
                          answer=answer, tool_calls=tool_calls)

    # -- harness-compatible interface -------------------------------------------

    def answer_all(self, questions: Sequence[Question], setting: str,
                   resolution_factor: int = 1,
                   use_raster: bool = True) -> List[ModelAnswer]:
        """Answer a dataset; signature-compatible with ``SimulatedVLM``.

        The agent never looks at pixels, so the resolution factor is
        irrelevant to it (a property the harness can exploit in ablations).
        """
        plan = self.plan(questions, setting)
        answers: List[ModelAnswer] = []
        for question in questions:
            trace = self.solve(question, plan)
            answers.append(ModelAnswer(
                qid=question.qid,
                text=trace.answer,
                planned_correct=plan.is_correct(question.qid),
                perception=self.tool.fidelity(question),
                prompt=build_prompt(question, True),
            ))
        return answers
