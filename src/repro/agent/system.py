"""Table III driver: evaluate GPT-4o against the agent system."""

from __future__ import annotations

from typing import Dict, Optional

from repro.agent.designer import ChipDesignerAgent
from repro.core.benchmark import build_chipvqa, build_chipvqa_challenge
from repro.core.dataset import Dataset
from repro.core.metrics import EvalRecord, EvalResult
from repro.judge.llm_judge import HybridJudge
from repro.models.vlm import NO_CHOICE, WITH_CHOICE
from repro.models.zoo import build_model


def evaluate_agent(agent: ChipDesignerAgent, dataset: Dataset,
                   setting: str,
                   judge: Optional[HybridJudge] = None) -> EvalResult:
    """Judge the agent over a dataset (mirrors the VLM harness path)."""
    judge = judge or HybridJudge()
    questions = list(dataset)
    answers = agent.answer_all(questions, setting)
    result = EvalResult(model_name=agent.name, dataset_name=dataset.name,
                        setting=setting)
    for question, answer in zip(questions, answers):
        verdict = judge.judge(question, answer.text)
        result.add(EvalRecord(
            qid=question.qid,
            category=question.category,
            response=answer.text,
            correct=verdict.correct,
            judge_method=verdict.method,
            perception=answer.perception,
        ))
    return result


def run_table3(judge: Optional[HybridJudge] = None
               ) -> Dict[str, Dict[str, EvalResult]]:
    """Reproduce Table III: {model: {"with_choice": ..., "no_choice": ...}}."""
    from repro.core.harness import EvaluationHarness

    judge = judge or HybridJudge()
    harness = EvaluationHarness(judge=judge)
    gpt4o = build_model("gpt-4o")
    agent = ChipDesignerAgent()
    return {
        "gpt4o": {
            WITH_CHOICE: harness.zero_shot_standard(gpt4o),
            NO_CHOICE: harness.zero_shot_challenge(gpt4o),
        },
        "agent": {
            WITH_CHOICE: evaluate_agent(agent, build_chipvqa(), WITH_CHOICE,
                                        judge),
            NO_CHOICE: evaluate_agent(agent, build_chipvqa_challenge(),
                                      NO_CHOICE, judge),
        },
    }
