"""Chat message structures for the agent system's conversation loop."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class Role(enum.Enum):
    """Speaker roles in the agent conversation."""

    SYSTEM = "system"
    USER = "user"
    ASSISTANT = "assistant"
    TOOL = "tool"


@dataclass(frozen=True)
class Message:
    role: Role
    content: str
    tool_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.role is Role.TOOL and not self.tool_name:
            raise ValueError("tool messages must name their tool")


@dataclass
class Conversation:
    """An append-only message transcript."""

    messages: List[Message] = field(default_factory=list)

    def add(self, role: Role, content: str,
            tool_name: Optional[str] = None) -> Message:
        message = Message(role, content, tool_name)
        self.messages.append(message)
        return message

    def last(self) -> Message:
        if not self.messages:
            raise IndexError("empty conversation")
        return self.messages[-1]

    def tool_calls(self) -> List[Message]:
        return [m for m in self.messages if m.role is Role.TOOL]

    def turns(self) -> int:
        return sum(1 for m in self.messages if m.role is Role.ASSISTANT)

    def render(self) -> str:
        lines = []
        for message in self.messages:
            prefix = message.role.value.upper()
            if message.tool_name:
                prefix += f"({message.tool_name})"
            lines.append(f"[{prefix}] {message.content}")
        return "\n".join(lines)
