"""Agent substrate: the text-only chip-designer + vision-tool system."""

from repro.agent.designer import (
    AGENT_RATES_NO_CHOICE,
    AGENT_RATES_WITH_CHOICE,
    AgentTrace,
    ChipDesignerAgent,
)
from repro.agent.messages import Conversation, Message, Role
from repro.agent.system import evaluate_agent, run_table3
from repro.agent.tools import DESCRIPTION_FIDELITY, VisionTool

__all__ = [
    "AGENT_RATES_NO_CHOICE",
    "AGENT_RATES_WITH_CHOICE",
    "AgentTrace",
    "ChipDesignerAgent",
    "Conversation",
    "DESCRIPTION_FIDELITY",
    "Message",
    "Role",
    "VisionTool",
    "evaluate_agent",
    "run_table3",
]
