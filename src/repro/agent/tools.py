"""The agent's vision tool: a VLM used as an image-description service.

In the paper's setup GPT-4o acts as a tool that "parses and provides
visual information content" to a text-only designer.  The crucial property
the paper observes — manufacturing questions regress because the designer
never sees pixels — comes from description *lossiness*: a text description
preserves topological/structural facts well but quantitative geometry
(cross-section dimensions, mask measurements) poorly.  The tool models
that with a per-visual-type fidelity table grounded in the figure types of
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.question import Question, VisualContent, VisualType
from repro.models.providers import ModelProvider

#: How faithfully a prose description carries each figure type's
#: task-relevant content.  Structural/graph-like figures describe well;
#: dimension-laden process figures describe poorly (the paper's observed
#: manufacturing regression).
DESCRIPTION_FIDELITY: Dict[VisualType, float] = {
    VisualType.DIAGRAM: 0.95,
    VisualType.FLOW: 0.95,
    VisualType.TABLE: 0.90,
    VisualType.SCHEMATIC: 0.85,
    VisualType.EQUATION: 0.90,
    VisualType.EQUATIONS: 0.90,
    VisualType.NEURAL_NETS: 0.90,
    VisualType.CURVE: 0.80,
    VisualType.MIXED: 0.80,
    VisualType.FIGURE: 0.70,
    VisualType.LAYOUT: 0.65,
    VisualType.STRUCTURE: 0.55,
}


@dataclass
class VisionTool:
    """Wraps a VLM as a describe-the-image tool.

    Any :class:`~repro.models.providers.ModelProvider` can serve as the
    backend: pass one as ``backend`` and the tool reports that provider's
    name as its ``backend_model`` and folds its configuration fingerprint
    into :meth:`config_payload`.  With no backend the tool models the
    paper's GPT-4o default and behaves byte-identically to before the
    provider abstraction existed.
    """

    name: str = "describe_image"
    backend_model: str = "gpt-4o"
    backend: Optional[ModelProvider] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.backend is not None:
            self.backend_model = self.backend.name

    def config_payload(self) -> Dict[str, object]:
        """The tool's identity for provider fingerprinting."""
        payload: Dict[str, object] = {
            "tool": self.name,
            "backend_model": self.backend_model,
        }
        if self.backend is not None:
            payload["backend_fingerprint"] = self.backend.config_fingerprint()
        return payload

    def describe(self, visual: VisualContent) -> str:
        """A prose description of one visual, as the tool would return."""
        return (f"The image is a {visual.visual_type.value} "
                f"({visual.width}x{visual.height}px): {visual.description}.")

    def describe_question(self, question: Question) -> str:
        parts = [self.describe(v) for v in question.all_visuals]
        return "\n".join(parts)

    def fidelity(self, question: Question) -> float:
        """Mean description fidelity over the question's visuals."""
        scores = [
            DESCRIPTION_FIDELITY.get(v.visual_type, 0.8)
            for v in question.all_visuals
        ]
        return sum(scores) / len(scores)
