"""The agent's vision tool: a VLM used as an image-description service.

In the paper's setup GPT-4o acts as a tool that "parses and provides
visual information content" to a text-only designer.  The crucial property
the paper observes — manufacturing questions regress because the designer
never sees pixels — comes from description *lossiness*: a text description
preserves topological/structural facts well but quantitative geometry
(cross-section dimensions, mask measurements) poorly.  The tool models
that with a per-visual-type fidelity table grounded in the figure types of
Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.question import Question, VisualContent, VisualType

#: How faithfully a prose description carries each figure type's
#: task-relevant content.  Structural/graph-like figures describe well;
#: dimension-laden process figures describe poorly (the paper's observed
#: manufacturing regression).
DESCRIPTION_FIDELITY: Dict[VisualType, float] = {
    VisualType.DIAGRAM: 0.95,
    VisualType.FLOW: 0.95,
    VisualType.TABLE: 0.90,
    VisualType.SCHEMATIC: 0.85,
    VisualType.EQUATION: 0.90,
    VisualType.EQUATIONS: 0.90,
    VisualType.NEURAL_NETS: 0.90,
    VisualType.CURVE: 0.80,
    VisualType.MIXED: 0.80,
    VisualType.FIGURE: 0.70,
    VisualType.LAYOUT: 0.65,
    VisualType.STRUCTURE: 0.55,
}


@dataclass
class VisionTool:
    """Wraps a VLM as a describe-the-image tool."""

    name: str = "describe_image"
    backend_model: str = "gpt-4o"

    def describe(self, visual: VisualContent) -> str:
        """A prose description of one visual, as the tool would return."""
        return (f"The image is a {visual.visual_type.value} "
                f"({visual.width}x{visual.height}px): {visual.description}.")

    def describe_question(self, question: Question) -> str:
        parts = [self.describe(v) for v in question.all_visuals]
        return "\n".join(parts)

    def fidelity(self, question: Question) -> float:
        """Mean description fidelity over the question's visuals."""
        scores = [
            DESCRIPTION_FIDELITY.get(v.visual_type, 0.8)
            for v in question.all_visuals
        ]
        return sum(scores) / len(scores)
