"""Sequential logic: flip-flops, excitation tables and finite state machines.

Provides the characteristic and excitation behaviour of the four classic
flip-flops, a synchronous :class:`StateMachine` simulator, and the
derivation used by ChipVQA's Digital example — computing the next-state
function ``Q+`` of a latch/FF from its state table (e.g. the SR latch's
``Q+ = S + R'Q``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.digital.expr import Expr
from repro.digital.kmap import minimized_expr


def d_ff_next(d: int, q: int) -> int:
    """D flip-flop characteristic: Q+ = D."""
    return d


def t_ff_next(t: int, q: int) -> int:
    """T flip-flop characteristic: Q+ = T xor Q."""
    return t ^ q


def jk_ff_next(j: int, k: int, q: int) -> int:
    """JK flip-flop characteristic: Q+ = JQ' + K'Q."""
    return (j & (1 - q)) | ((1 - k) & q)


def sr_ff_next(s: int, r: int, q: int) -> Optional[int]:
    """SR latch characteristic: Q+ = S + R'Q; ``None`` for S=R=1 (invalid)."""
    if s and r:
        return None
    return s | ((1 - r) & q)


#: Excitation tables: (Q, Q+) -> required inputs ('X' = don't care).
JK_EXCITATION: Dict[Tuple[int, int], Tuple[str, str]] = {
    (0, 0): ("0", "X"),
    (0, 1): ("1", "X"),
    (1, 0): ("X", "1"),
    (1, 1): ("X", "0"),
}

SR_EXCITATION: Dict[Tuple[int, int], Tuple[str, str]] = {
    (0, 0): ("0", "X"),
    (0, 1): ("1", "0"),
    (1, 0): ("0", "1"),
    (1, 1): ("X", "0"),
}

D_EXCITATION: Dict[Tuple[int, int], str] = {
    (0, 0): "0", (0, 1): "1", (1, 0): "0", (1, 1): "1",
}

T_EXCITATION: Dict[Tuple[int, int], str] = {
    (0, 0): "0", (0, 1): "1", (1, 0): "1", (1, 1): "0",
}


def next_state_expression(
    input_names: Sequence[str],
    state_name: str,
    table: Dict[Tuple[int, ...], Optional[int]],
) -> Expr:
    """Minimal SOP for Q+ from a (inputs..., Q) -> Q+ state table.

    Entries mapped to ``None`` are don't-cares (e.g. the forbidden S=R=1
    input of an SR latch).  Variable order in the result is
    ``input_names + [state_name]``.
    """
    names = list(input_names) + [state_name]
    n = len(names)
    minterms: List[int] = []
    dont_cares: List[int] = []
    for key, next_q in table.items():
        if len(key) != n:
            raise ValueError(f"table key {key} does not match {names}")
        index = 0
        for bit in key:
            index = (index << 1) | int(bit)
        if next_q is None:
            dont_cares.append(index)
        elif next_q:
            minterms.append(index)
    return minimized_expr(names, minterms, dont_cares)


def sr_latch_table() -> Dict[Tuple[int, int, int], Optional[int]]:
    """The (S, R, Q) -> Q+ table with S=R=1 as don't-care."""
    table: Dict[Tuple[int, int, int], Optional[int]] = {}
    for s in (0, 1):
        for r in (0, 1):
            for q in (0, 1):
                table[(s, r, q)] = sr_ff_next(s, r, q)
    return table


@dataclass(frozen=True)
class Transition:
    state: str
    symbol: str
    next_state: str
    output: str = ""


class StateMachine:
    """A deterministic synchronous FSM (Moore or Mealy by convention)."""

    def __init__(
        self,
        states: Sequence[str],
        inputs: Sequence[str],
        transitions: Sequence[Transition],
        initial: str,
        moore_outputs: Optional[Dict[str, str]] = None,
    ):
        self.states = tuple(states)
        self.inputs = tuple(inputs)
        self.initial = initial
        self.moore_outputs = dict(moore_outputs or {})
        if initial not in self.states:
            raise ValueError(f"initial state {initial!r} not in states")
        self._table: Dict[Tuple[str, str], Transition] = {}
        for transition in transitions:
            if transition.state not in self.states:
                raise ValueError(f"unknown state {transition.state!r}")
            if transition.next_state not in self.states:
                raise ValueError(f"unknown state {transition.next_state!r}")
            if transition.symbol not in self.inputs:
                raise ValueError(f"unknown input {transition.symbol!r}")
            key = (transition.state, transition.symbol)
            if key in self._table:
                raise ValueError(f"duplicate transition for {key}")
            self._table[key] = transition

    def step(self, state: str, symbol: str) -> Transition:
        try:
            return self._table[(state, symbol)]
        except KeyError:
            raise ValueError(
                f"no transition from {state!r} on {symbol!r}"
            ) from None

    def run(self, symbols: Sequence[str]) -> Tuple[List[str], List[str]]:
        """Simulate from the initial state; returns (state trace, outputs).

        The state trace includes the initial state, so it is one longer than
        the input sequence.  Outputs are Mealy outputs if transitions carry
        one, otherwise Moore outputs of the *destination* state.
        """
        state = self.initial
        trace = [state]
        outputs: List[str] = []
        for symbol in symbols:
            transition = self.step(state, symbol)
            state = transition.next_state
            trace.append(state)
            if transition.output:
                outputs.append(transition.output)
            else:
                outputs.append(self.moore_outputs.get(state, ""))
        return trace, outputs

    def state_table_rows(self) -> List[List[str]]:
        """Rows for rendering: state, then next-state per input symbol."""
        rows = []
        for state in self.states:
            row = [state]
            for symbol in self.inputs:
                transition = self._table.get((state, symbol))
                row.append(transition.next_state if transition else "-")
            rows.append(row)
        return rows

    def min_flipflops(self) -> int:
        """Minimum flip-flops for a binary state encoding."""
        count = len(self.states)
        bits = 0
        while (1 << bits) < count:
            bits += 1
        return bits


def sequence_detector(pattern: str, overlapping: bool = True) -> StateMachine:
    """A Mealy sequence detector for a binary ``pattern``.

    States track the longest matched prefix; output ``1`` on the transition
    that completes the pattern.  Classic exam construction used by several
    Digital questions.
    """
    if not pattern or any(c not in "01" for c in pattern):
        raise ValueError("pattern must be a non-empty binary string")
    n = len(pattern)
    states = [f"S{i}" for i in range(n)]
    transitions: List[Transition] = []
    for i in range(n):
        prefix = pattern[:i]
        for symbol in "01":
            candidate = prefix + symbol
            if candidate == pattern:
                if overlapping:
                    next_len = _longest_border(pattern, candidate)
                else:
                    next_len = 0
                transitions.append(
                    Transition(states[i], symbol, states[next_len], "1")
                )
            else:
                next_len = _longest_border(pattern, candidate)
                transitions.append(
                    Transition(states[i], symbol, states[next_len], "0")
                )
    return StateMachine(states, ("0", "1"), transitions, states[0])


def _longest_border(pattern: str, text: str) -> int:
    """Longest ``k`` such that ``pattern[:k]`` is a suffix of ``text``.

    When ``text == pattern`` only *proper* prefixes count (the KMP failure
    value used for overlapping detection).
    """
    upper = min(len(text), len(pattern))
    if text == pattern:
        upper = len(pattern) - 1
    for length in range(upper, 0, -1):
        if text.endswith(pattern[:length]):
            return length
    return 0


def counter_sequence(width: int, steps: int, start: int = 0,
                     down: bool = False) -> List[int]:
    """The value sequence of a ``width``-bit binary up/down counter."""
    if width < 1:
        raise ValueError("width must be >= 1")
    mask = (1 << width) - 1
    value = start & mask
    sequence = [value]
    for _ in range(steps):
        value = (value - 1 if down else value + 1) & mask
        sequence.append(value)
    return sequence


def ring_counter_states(width: int) -> List[int]:
    """One full period of a one-hot ring counter."""
    return [1 << i for i in range(width)]


def johnson_counter_states(width: int) -> List[int]:
    """One full period (2*width states) of a Johnson (twisted-ring) counter."""
    states = []
    value = 0
    for _ in range(2 * width):
        states.append(value)
        msb_complement = 1 - ((value >> (width - 1)) & 1)
        value = ((value << 1) | msb_complement) & ((1 << width) - 1)
    return states
