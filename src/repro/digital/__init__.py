"""Digital Design substrate: boolean algebra, logic networks, sequential
machines, arithmetic and the 35 Digital ChipVQA questions built on them."""

from repro.digital import arithmetic, expr, gates, kmap, sequential, verilog
from repro.digital.questions import (
    generate_digital_questions,
    generate_digital_questions_scaled,
)

__all__ = [
    "arithmetic",
    "expr",
    "gates",
    "kmap",
    "sequential",
    "verilog",
    "generate_digital_questions",
    "generate_digital_questions_scaled",
]
