"""Two-level logic minimisation: Quine-McCluskey with Petrick fallback.

Produces minimal sum-of-products covers for functions of up to ~8 variables
(ChipVQA questions use 2-4).  Also provides Karnaugh-map grid construction
(Gray-coded) for the figure renderer, and SOP-expression formatting that
matches the answer style of the paper's example (``Q = S'R'q + SR'``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.digital.expr import And, Const, Expr, Not, Or, Var

GRAY_2 = (0, 1)
GRAY_4 = (0, 1, 3, 2)


@dataclass(frozen=True)
class Implicant:
    """A product term: ``value`` over cared bits, ``mask`` of don't-care bits."""

    value: int
    mask: int

    def covers(self, minterm: int) -> bool:
        return (minterm & ~self.mask) == self.value

    def literal_count(self, n_vars: int) -> int:
        return n_vars - bin(self.mask).count("1")

    def to_term(self, names: Sequence[str]) -> Expr:
        n = len(names)
        literals: List[Expr] = []
        for index, name in enumerate(names):
            bit_pos = n - 1 - index
            if (self.mask >> bit_pos) & 1:
                continue
            literal: Expr = Var(name)
            if not (self.value >> bit_pos) & 1:
                literal = Not(literal)
            literals.append(literal)
        if not literals:
            return Const(True)
        if len(literals) == 1:
            return literals[0]
        return And(tuple(literals))


def _combine(a: Implicant, b: Implicant) -> Optional[Implicant]:
    """Merge two implicants differing in exactly one cared bit."""
    if a.mask != b.mask:
        return None
    diff = a.value ^ b.value
    if diff and (diff & (diff - 1)) == 0:  # exactly one bit differs
        return Implicant(a.value & ~diff, a.mask | diff)
    return None


def prime_implicants(
    n_vars: int, minterms: Sequence[int], dont_cares: Sequence[int] = ()
) -> List[Implicant]:
    """All prime implicants of the function (minterms + don't-cares)."""
    limit = 1 << n_vars
    for m in itertools.chain(minterms, dont_cares):
        if not 0 <= m < limit:
            raise ValueError(
                f"minterm {m} outside the {n_vars}-variable space")
    current: Set[Implicant] = {
        Implicant(m, 0) for m in itertools.chain(minterms, dont_cares)
    }
    primes: Set[Implicant] = set()
    while current:
        merged: Set[Implicant] = set()
        used: Set[Implicant] = set()
        items = sorted(current, key=lambda imp: (imp.mask, imp.value))
        for a, b in itertools.combinations(items, 2):
            combined = _combine(a, b)
            if combined is not None:
                merged.add(combined)
                used.add(a)
                used.add(b)
        primes |= current - used
        current = merged
    return sorted(primes, key=lambda imp: (imp.mask, imp.value))


def minimize(
    n_vars: int, minterms: Sequence[int], dont_cares: Sequence[int] = ()
) -> List[Implicant]:
    """A minimum-cardinality prime-implicant cover of ``minterms``.

    Essential primes are selected first; the residual covering problem is
    solved exactly by Petrick's method (fine at benchmark sizes).
    """
    required = sorted(set(minterms) - set(dont_cares))
    if not required:
        return []
    primes = prime_implicants(n_vars, minterms, dont_cares)
    # chart: minterm -> primes covering it
    chart = {
        m: [p for p in primes if p.covers(m)]
        for m in required
    }
    for m, covering in chart.items():
        if not covering:
            raise ValueError(f"minterm {m} not covered by any prime")
    essential: List[Implicant] = []
    covered: Set[int] = set()
    for m, covering in chart.items():
        if len(covering) == 1 and covering[0] not in essential:
            essential.append(covering[0])
    for p in essential:
        covered |= {m for m in required if p.covers(m)}
    remaining = [m for m in required if m not in covered]
    if not remaining:
        return essential
    candidates = [p for p in primes if p not in essential]
    best = _petrick(remaining, candidates, n_vars)
    return essential + best


def _petrick(
    minterms: Sequence[int], primes: Sequence[Implicant], n_vars: int
) -> List[Implicant]:
    """Exact minimum cover via Petrick's method (product-of-sums expansion)."""
    # each product is a frozenset of prime indices
    products: Set[FrozenSet[int]] = {frozenset()}
    for m in minterms:
        covering = [i for i, p in enumerate(primes) if p.covers(m)]
        new_products: Set[FrozenSet[int]] = set()
        for product in products:
            for index in covering:
                new_products.add(product | {index})
        # absorb supersets to keep the set small
        products = _absorb(new_products)
    def cost(product: FrozenSet[int]) -> Tuple[int, int]:
        return (
            len(product),
            sum(primes[i].literal_count(n_vars) for i in product),
        )
    best = min(products, key=cost)
    return [primes[i] for i in sorted(best)]


def _absorb(products: Set[FrozenSet[int]]) -> Set[FrozenSet[int]]:
    kept: Set[FrozenSet[int]] = set()
    for product in sorted(products, key=len):
        if not any(existing <= product for existing in kept):
            kept.add(product)
    return kept


def minimized_expr(
    names: Sequence[str],
    minterms: Sequence[int],
    dont_cares: Sequence[int] = (),
) -> Expr:
    """Minimal SOP expression over ``names``."""
    cover = minimize(len(names), minterms, dont_cares)
    if not cover:
        return Const(False)
    terms = [imp.to_term(names) for imp in cover]
    if len(terms) == 1:
        return terms[0]
    return Or(tuple(terms))


def sop_text(expr: Expr) -> str:
    """Render an SOP expression in the paper's answer style."""
    return str(expr)


def kmap_grid(
    names: Sequence[str],
    minterms: Sequence[int],
    dont_cares: Sequence[int] = (),
) -> List[List[str]]:
    """A Gray-coded K-map cell grid ('0' / '1' / 'X') for rendering.

    Supports 2, 3 and 4 variables (2x2, 2x4 and 4x4 grids); row variables
    are the leading half of ``names``.
    """
    n = len(names)
    if n not in (2, 3, 4):
        raise ValueError("K-maps supported for 2-4 variables")
    row_bits = 1 if n <= 3 else 2
    col_bits = n - row_bits
    rows = GRAY_2 if row_bits == 1 else GRAY_4
    cols = GRAY_2 if col_bits == 1 else GRAY_4
    mins = set(minterms)
    dcs = set(dont_cares)
    grid: List[List[str]] = []
    for row_code in rows:
        row: List[str] = []
        for col_code in cols:
            minterm = (row_code << col_bits) | col_code
            if minterm in dcs:
                row.append("X")
            elif minterm in mins:
                row.append("1")
            else:
                row.append("0")
        grid.append(row)
    return grid
