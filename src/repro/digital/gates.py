"""Gate-level combinational netlists and their simulation.

A :class:`Netlist` is a DAG of named gates over named primary inputs.
Supports evaluation, full truth-table extraction, conversion to a boolean
:mod:`~repro.digital.expr` AST, and simple topology queries (levels, fan-in)
used by question generators and the critical-path timing questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.digital.expr import And, Const, Expr, Not, Or, Var, Xor

_GATE_FUNCS: Dict[str, Callable[[Sequence[bool]], bool]] = {
    "AND": lambda ins: all(ins),
    "OR": lambda ins: any(ins),
    "NOT": lambda ins: not ins[0],
    "BUF": lambda ins: ins[0],
    "NAND": lambda ins: not all(ins),
    "NOR": lambda ins: not any(ins),
    "XOR": lambda ins: sum(ins) % 2 == 1,
    "XNOR": lambda ins: sum(ins) % 2 == 0,
}

#: Typical relative gate delays (arbitrary units) for critical-path questions.
GATE_DELAYS = {
    "NOT": 1.0, "BUF": 1.0,
    "NAND": 1.0, "NOR": 1.2,
    "AND": 1.4, "OR": 1.6,
    "XOR": 2.0, "XNOR": 2.0,
}


@dataclass(frozen=True)
class Gate:
    name: str
    gate_type: str
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        gate_type = self.gate_type.upper()
        if gate_type not in _GATE_FUNCS:
            raise ValueError(f"unknown gate type {self.gate_type!r}")
        if gate_type in ("NOT", "BUF") and len(self.inputs) != 1:
            raise ValueError(f"{gate_type} takes exactly one input")
        if gate_type not in ("NOT", "BUF") and len(self.inputs) < 2:
            raise ValueError(f"{gate_type} needs at least two inputs")
        object.__setattr__(self, "gate_type", gate_type)


class Netlist:
    """A combinational gate network over primary inputs."""

    def __init__(self, primary_inputs: Sequence[str]):
        if len(set(primary_inputs)) != len(primary_inputs):
            raise ValueError("duplicate primary input names")
        self.primary_inputs: Tuple[str, ...] = tuple(primary_inputs)
        self._gates: Dict[str, Gate] = {}
        self._order: List[str] = []

    def add_gate(self, name: str, gate_type: str, inputs: Sequence[str]) -> "Netlist":
        """Add a gate; inputs must already be defined (DAG by construction)."""
        if name in self._gates or name in self.primary_inputs:
            raise ValueError(f"duplicate signal name {name!r}")
        for signal in inputs:
            if signal not in self._gates and signal not in self.primary_inputs:
                raise ValueError(f"gate {name!r} references unknown {signal!r}")
        self._gates[name] = Gate(name, gate_type, tuple(inputs))
        self._order.append(name)
        return self

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates[name] for name in self._order)

    def evaluate(self, assignment: Dict[str, bool]) -> Dict[str, bool]:
        """Signal values for every net under ``assignment`` of the inputs."""
        values: Dict[str, bool] = {}
        for name in self.primary_inputs:
            if name not in assignment:
                raise ValueError(f"missing input {name!r}")
            values[name] = bool(assignment[name])
        for name in self._order:
            gate = self._gates[name]
            ins = [values[s] for s in gate.inputs]
            values[name] = _GATE_FUNCS[gate.gate_type](ins)
        return values

    def output(self, name: str, assignment: Dict[str, bool]) -> bool:
        return self.evaluate(assignment)[name]

    def truth_table(self, output: str) -> List[Tuple[Tuple[int, ...], int]]:
        """Rows of ``((input bits...), output bit)`` in counting order."""
        rows = []
        n = len(self.primary_inputs)
        for value in range(2 ** n):
            bits = tuple((value >> (n - 1 - i)) & 1 for i in range(n))
            assignment = {
                name: bool(bit)
                for name, bit in zip(self.primary_inputs, bits)
            }
            rows.append((bits, int(self.output(output, assignment))))
        return rows

    def minterms(self, output: str) -> List[int]:
        return [
            index
            for index, (_, out) in enumerate(self.truth_table(output))
            if out
        ]

    def to_expr(self, output: str) -> Expr:
        """The boolean AST computed by net ``output``."""
        cache: Dict[str, Expr] = {name: Var(name) for name in self.primary_inputs}

        def build(name: str) -> Expr:
            if name in cache:
                return cache[name]
            gate = self._gates[name]
            operands = tuple(build(s) for s in gate.inputs)
            expr: Expr
            if gate.gate_type == "NOT":
                expr = Not(operands[0])
            elif gate.gate_type == "BUF":
                expr = operands[0]
            elif gate.gate_type == "AND":
                expr = And(operands)
            elif gate.gate_type == "OR":
                expr = Or(operands)
            elif gate.gate_type == "NAND":
                expr = Not(And(operands))
            elif gate.gate_type == "NOR":
                expr = Not(Or(operands))
            elif gate.gate_type == "XOR":
                expr = operands[0]
                for operand in operands[1:]:
                    expr = Xor(expr, operand)
            elif gate.gate_type == "XNOR":
                expr = operands[0]
                for operand in operands[1:]:
                    expr = Xor(expr, operand)
                expr = Not(expr)
            else:  # pragma: no cover - constructor forbids
                raise AssertionError(gate.gate_type)
            cache[name] = expr
            return expr

        return build(output)

    # -- topology / timing ---------------------------------------------------

    def level(self, name: str) -> int:
        """Logic depth of a net (primary inputs are level 0)."""
        if name in self.primary_inputs:
            return 0
        gate = self._gates[name]
        return 1 + max(self.level(s) for s in gate.inputs)

    def arrival_time(self, name: str) -> float:
        """Worst-case arrival at a net using :data:`GATE_DELAYS`."""
        if name in self.primary_inputs:
            return 0.0
        gate = self._gates[name]
        return GATE_DELAYS[gate.gate_type] + max(
            self.arrival_time(s) for s in gate.inputs
        )

    def critical_path(self, output: str) -> List[str]:
        """Signal names along the slowest path into ``output``."""
        if output in self.primary_inputs:
            return [output]
        gate = self._gates[output]
        slowest = max(gate.inputs, key=self.arrival_time)
        return self.critical_path(slowest) + [output]

    def gate_count(self) -> int:
        return len(self._gates)


def half_adder() -> Netlist:
    """Half adder: sum = A^B, carry = AB (the paper's Fig. 3 MMMU sample)."""
    netlist = Netlist(["A", "B"])
    netlist.add_gate("SUM", "XOR", ["A", "B"])
    netlist.add_gate("CARRY", "AND", ["A", "B"])
    return netlist


def full_adder() -> Netlist:
    """Full adder from two half adders plus an OR."""
    netlist = Netlist(["A", "B", "CIN"])
    netlist.add_gate("S1", "XOR", ["A", "B"])
    netlist.add_gate("C1", "AND", ["A", "B"])
    netlist.add_gate("SUM", "XOR", ["S1", "CIN"])
    netlist.add_gate("C2", "AND", ["S1", "CIN"])
    netlist.add_gate("COUT", "OR", ["C1", "C2"])
    return netlist


def mux2() -> Netlist:
    """2:1 multiplexer: OUT = S'A + SB."""
    netlist = Netlist(["S", "A", "B"])
    netlist.add_gate("SN", "NOT", ["S"])
    netlist.add_gate("T0", "AND", ["SN", "A"])
    netlist.add_gate("T1", "AND", ["S", "B"])
    netlist.add_gate("OUT", "OR", ["T0", "T1"])
    return netlist


def decoder2to4() -> Netlist:
    """2-to-4 decoder with active-high outputs Y0..Y3."""
    netlist = Netlist(["A1", "A0"])
    netlist.add_gate("N1", "NOT", ["A1"])
    netlist.add_gate("N0", "NOT", ["A0"])
    netlist.add_gate("Y0", "AND", ["N1", "N0"])
    netlist.add_gate("Y1", "AND", ["N1", "A0"])
    netlist.add_gate("Y2", "AND", ["A1", "N0"])
    netlist.add_gate("Y3", "AND", ["A1", "A0"])
    return netlist


def ripple_carry_adder(width: int) -> Netlist:
    """A ``width``-bit ripple-carry adder built from full-adder slices."""
    if width < 1:
        raise ValueError("width must be >= 1")
    inputs = [f"A{i}" for i in range(width)]
    inputs += [f"B{i}" for i in range(width)]
    inputs.append("CIN")
    netlist = Netlist(inputs)
    carry = "CIN"
    for i in range(width):
        netlist.add_gate(f"P{i}", "XOR", [f"A{i}", f"B{i}"])
        netlist.add_gate(f"G{i}", "AND", [f"A{i}", f"B{i}"])
        netlist.add_gate(f"S{i}", "XOR", [f"P{i}", carry])
        netlist.add_gate(f"PC{i}", "AND", [f"P{i}", carry])
        netlist.add_gate(f"C{i + 1}", "OR", [f"G{i}", f"PC{i}"])
        carry = f"C{i + 1}"
    return netlist


def adder_output_value(netlist: Netlist, width: int, a: int, b: int,
                       cin: int = 0) -> int:
    """Drive a ripple-carry adder with integers and read back the sum."""
    assignment: Dict[str, bool] = {"CIN": bool(cin)}
    for i in range(width):
        assignment[f"A{i}"] = bool((a >> i) & 1)
        assignment[f"B{i}"] = bool((b >> i) & 1)
    values = netlist.evaluate(assignment)
    total = 0
    for i in range(width):
        total |= int(values[f"S{i}"]) << i
    total |= int(values[f"C{width}"]) << width
    return total
