"""A structural-Verilog subset: parse to / emit from gate netlists.

The paper situates ChipVQA next to VerilogEval; questions about gate
networks are naturally exchanged as structural Verilog.  This module
supports the gate-primitive subset::

    module top (input a, input b, output f);
      wire n1;
      nand g1 (n1, a, b);
      not  g2 (f, n1);
    endmodule

Primitive instances follow Verilog-1995 semantics: first terminal is the
output, the rest are inputs.  :func:`parse_verilog` builds a
:class:`~repro.digital.gates.Netlist`; :func:`emit_verilog` is its inverse
(round-trips modulo whitespace).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.digital.gates import Netlist

PRIMITIVES = {"and", "or", "not", "buf", "nand", "nor", "xor", "xnor"}


class VerilogError(ValueError):
    """Raised for source the subset parser cannot handle."""


_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_MODULE_RE = re.compile(
    r"module\s+(?P<name>\w+)\s*\((?P<ports>.*?)\)\s*;(?P<body>.*?)endmodule",
    re.DOTALL)
_INSTANCE_RE = re.compile(
    r"(?P<prim>\w+)\s+(?P<inst>\w+)\s*\((?P<conns>[^)]*)\)\s*;")


@dataclass(frozen=True)
class VerilogModule:
    """A parsed module: its netlist plus port directions."""

    name: str
    netlist: Netlist
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]


def _split_ports(ports_text: str) -> Tuple[List[str], List[str]]:
    inputs: List[str] = []
    outputs: List[str] = []
    direction = None
    for token in re.split(r"[,\s]+", ports_text.strip()):
        if not token:
            continue
        if token in ("input", "output"):
            direction = token
        elif token == "wire":
            continue
        elif direction == "input":
            inputs.append(token)
        elif direction == "output":
            outputs.append(token)
        else:
            raise VerilogError(
                f"port {token!r} lacks a direction (ANSI style required)")
    return inputs, outputs


def parse_verilog(source: str) -> VerilogModule:
    """Parse one structural module into a netlist."""
    source = _COMMENT_RE.sub(" ", source)
    match = _MODULE_RE.search(source)
    if not match:
        raise VerilogError("no module ... endmodule found")
    name = match.group("name")
    inputs, outputs = _split_ports(match.group("ports"))
    if not inputs:
        raise VerilogError("module has no inputs")
    if not outputs:
        raise VerilogError("module has no outputs")
    body = match.group("body")

    declared_wires: List[str] = []
    for wire_match in re.finditer(r"\bwire\s+([^;]+);", body):
        declared_wires.extend(
            w for w in re.split(r"[,\s]+", wire_match.group(1)) if w)
    body = re.sub(r"\bwire\s+[^;]+;", " ", body)

    instances: List[Tuple[str, str, List[str]]] = []
    consumed = 0
    for inst_match in _INSTANCE_RE.finditer(body):
        prim = inst_match.group("prim").lower()
        if prim not in PRIMITIVES:
            raise VerilogError(
                f"unsupported primitive {inst_match.group('prim')!r} "
                f"(structural gate subset only)")
        conns = [c.strip() for c in inst_match.group("conns").split(",")]
        if len(conns) < 2 or not all(conns):
            raise VerilogError(
                f"instance {inst_match.group('inst')!r} needs an output "
                f"and at least one input")
        instances.append((prim, inst_match.group("inst"), conns))
        consumed += 1
    leftovers = _INSTANCE_RE.sub(" ", body).strip()
    if leftovers:
        raise VerilogError(f"unparsed text in module body: {leftovers!r}")
    if not instances:
        raise VerilogError("module instantiates no gates")

    # topological insertion: gates whose inputs are all known go first
    netlist = Netlist(inputs)
    pending = list(instances)
    known = set(inputs)
    progress = True
    while pending and progress:
        progress = False
        remaining = []
        for prim, inst, conns in pending:
            out, ins = conns[0], conns[1:]
            if all(i in known for i in ins):
                netlist.add_gate(out, prim.upper(), ins)
                known.add(out)
                progress = True
            else:
                remaining.append((prim, inst, conns))
        pending = remaining
    if pending:
        missing = sorted(
            {i for _, _, conns in pending for i in conns[1:]} - known)
        raise VerilogError(
            f"combinational loop or undriven nets: {missing}")
    for out in outputs:
        if out not in known:
            raise VerilogError(f"output {out!r} is never driven")
    return VerilogModule(name=name, netlist=netlist,
                         inputs=tuple(inputs), outputs=tuple(outputs))


def emit_verilog(netlist: Netlist, outputs: Sequence[str],
                 name: str = "top") -> str:
    """Structural Verilog for a netlist (inverse of :func:`parse_verilog`)."""
    outputs = list(outputs)
    signal_names = {g.name for g in netlist.gates}
    for out in outputs:
        if out not in signal_names:
            raise VerilogError(f"output {out!r} is not a gate in the netlist")
    ports = ", ".join(
        [f"input {p}" for p in netlist.primary_inputs]
        + [f"output {o}" for o in outputs])
    lines = [f"module {name} ({ports});"]
    wires = [g.name for g in netlist.gates if g.name not in outputs]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    for index, gate in enumerate(netlist.gates):
        conns = ", ".join([gate.name, *gate.inputs])
        lines.append(f"  {gate.gate_type.lower()} g{index} ({conns});")
    lines.append("endmodule")
    return "\n".join(lines)


def roundtrip_equivalent(source: str, output: str) -> bool:
    """Parse, re-emit, re-parse: same boolean function at ``output``?"""
    from repro.digital.expr import equivalent

    first = parse_verilog(source)
    emitted = emit_verilog(first.netlist, first.outputs, first.name)
    second = parse_verilog(emitted)
    return equivalent(first.netlist.to_expr(output),
                      second.netlist.to_expr(output))
