"""Boolean algebra: expression AST, parser, evaluation and equivalence.

The grammar matches textbook notation as used in ChipVQA answers
(e.g. ``Q = S'R'q + SR'``):

* juxtaposition is AND (``AB`` = ``A AND B``), ``*`` and ``&`` also accepted;
* ``+`` and ``|`` are OR;
* a postfix apostrophe is NOT (``A'``), prefix ``~`` / ``!`` also accepted;
* ``^`` is XOR; parentheses group; ``0`` / ``1`` are constants.

Equivalence is decided by exhaustive truth-table comparison over the union
of variable sets — exact for the <= 8-variable expressions the benchmark
uses, and the mechanism the judge substrate relies on to accept re-ordered
or re-factored boolean answers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple, Union


class ExprError(ValueError):
    """Raised for malformed boolean expressions."""


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    value: bool

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not:
    operand: "Expr"

    def __str__(self) -> str:
        inner = str(self.operand)
        if isinstance(self.operand, (Var, Const)):
            return f"{inner}'"
        return f"({inner})'"


@dataclass(frozen=True)
class And:
    operands: Tuple["Expr", ...]

    def __str__(self) -> str:
        parts = []
        for operand in self.operands:
            text = str(operand)
            if isinstance(operand, (Or, Xor)):
                text = f"({text})"
            parts.append(text)
        return "".join(parts)


@dataclass(frozen=True)
class Or:
    operands: Tuple["Expr", ...]

    def __str__(self) -> str:
        return " + ".join(str(operand) for operand in self.operands)


@dataclass(frozen=True)
class Xor:
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        def wrap(e: "Expr") -> str:
            text = str(e)
            if isinstance(e, (Or, And)):
                return f"({text})"
            return text

        return f"{wrap(self.left)} ^ {wrap(self.right)}"


Expr = Union[Var, Const, Not, And, Or, Xor]


# -- parsing ------------------------------------------------------------------

_TOKEN_CHARS = {"+", "|", "*", "&", "^", "(", ")", "'", "~", "!"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in _TOKEN_CHARS:
            tokens.append(ch)
            i += 1
        elif ch.isalpha() or ch == "_":
            j = i + 1
            # variable names: single letter optionally followed by digits
            while j < len(text) and text[j].isdigit():
                j += 1
            tokens.append(text[i:j])
            i = j
        elif ch in "01":
            tokens.append(ch)
            i += 1
        else:
            raise ExprError(f"unexpected character {ch!r} in {text!r}")
    return tokens


class _Parser:
    """Recursive-descent parser for the textbook boolean grammar."""

    def __init__(self, tokens: Sequence[str]):
        self._tokens = list(tokens)
        self._pos = 0

    def _peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        self._pos += 1
        return token

    def parse(self) -> Expr:
        expr = self._or()
        if self._pos != len(self._tokens):
            raise ExprError(f"trailing tokens at {self._tokens[self._pos:]}")
        return expr

    def _or(self) -> Expr:
        operands = [self._xor()]
        while self._peek() in ("+", "|"):
            self._next()
            operands.append(self._xor())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _xor(self) -> Expr:
        left = self._and()
        while self._peek() == "^":
            self._next()
            left = Xor(left, self._and())
        return left

    def _and(self) -> Expr:
        operands = [self._unary()]
        while True:
            token = self._peek()
            if token in ("*", "&"):
                self._next()
                operands.append(self._unary())
            elif token and (token[0].isalnum() or token in ("(", "~", "!")
                            or token == "_"):
                operands.append(self._unary())
            else:
                break
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _unary(self) -> Expr:
        token = self._peek()
        if token in ("~", "!"):
            self._next()
            return self._postfix(Not(self._unary()))
        return self._postfix(self._atom())

    def _postfix(self, expr: Expr) -> Expr:
        while self._peek() == "'":
            self._next()
            expr = Not(expr)
        return expr

    def _atom(self) -> Expr:
        token = self._next()
        if token == "(":
            inner = self._or()
            if self._next() != ")":
                raise ExprError("unbalanced parenthesis")
            return inner
        if token == "0":
            return Const(False)
        if token == "1":
            return Const(True)
        if token and (token[0].isalpha() or token[0] == "_"):
            return Var(token)
        raise ExprError(f"unexpected token {token!r}")


def parse(text: str) -> Expr:
    """Parse boolean expression ``text`` into an AST.

    Accepts an optional ``LHS =`` prefix (``Q = S'Q + S``) which is dropped.
    """
    if "=" in text:
        text = text.split("=", 1)[1]
    tokens = _tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens).parse()


# -- evaluation and equivalence --------------------------------------------------

def variables(expr: Expr) -> FrozenSet[str]:
    """The set of variable names appearing in ``expr``."""
    if isinstance(expr, Var):
        return frozenset([expr.name])
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, Not):
        return variables(expr.operand)
    if isinstance(expr, (And, Or)):
        result: FrozenSet[str] = frozenset()
        for operand in expr.operands:
            result |= variables(operand)
        return result
    if isinstance(expr, Xor):
        return variables(expr.left) | variables(expr.right)
    raise TypeError(f"not an expression: {expr!r}")


def evaluate(expr: Expr, assignment: Dict[str, bool]) -> bool:
    """Evaluate ``expr`` under a variable assignment."""
    if isinstance(expr, Var):
        try:
            return bool(assignment[expr.name])
        except KeyError:
            raise ExprError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Not):
        return not evaluate(expr.operand, assignment)
    if isinstance(expr, And):
        return all(evaluate(op, assignment) for op in expr.operands)
    if isinstance(expr, Or):
        return any(evaluate(op, assignment) for op in expr.operands)
    if isinstance(expr, Xor):
        return evaluate(expr.left, assignment) != evaluate(expr.right, assignment)
    raise TypeError(f"not an expression: {expr!r}")


def assignments(names: Sequence[str]) -> Iterator[Dict[str, bool]]:
    """All 2^n assignments over ``names`` in binary counting order."""
    for bits in itertools.product((False, True), repeat=len(names)):
        yield dict(zip(names, bits))


def truth_vector(expr: Expr, names: Sequence[str]) -> Tuple[bool, ...]:
    """The expression's output column over all assignments of ``names``."""
    return tuple(evaluate(expr, a) for a in assignments(names))


def equivalent(left: Expr, right: Expr) -> bool:
    """Exact equivalence by exhaustive truth-table comparison."""
    names = sorted(variables(left) | variables(right))
    if len(names) > 16:
        raise ExprError("too many variables for exhaustive equivalence")
    return truth_vector(left, names) == truth_vector(right, names)


def equivalent_text(left: str, right: str) -> bool:
    """Parse both strings and compare; ``False`` if either fails to parse."""
    try:
        return equivalent(parse(left), parse(right))
    except ExprError:
        return False


def minterms_of(expr: Expr, names: Sequence[str]) -> List[int]:
    """Indices (binary counting order over ``names``) where ``expr`` is 1."""
    return [
        index
        for index, value in enumerate(truth_vector(expr, names))
        if value
    ]


def from_minterms(names: Sequence[str], minterms: Sequence[int]) -> Expr:
    """Canonical sum-of-minterms expression over ``names``."""
    mins = set(minterms)
    n = len(names)
    if not mins:
        return Const(False)
    if len(mins) == 2 ** n:
        return Const(True)
    terms: List[Expr] = []
    for m in sorted(mins):
        literals: List[Expr] = []
        for bit_index, name in enumerate(names):
            bit = (m >> (n - 1 - bit_index)) & 1
            literal: Expr = Var(name)
            if not bit:
                literal = Not(literal)
            literals.append(literal)
        terms.append(And(tuple(literals)) if len(literals) > 1 else literals[0])
    return Or(tuple(terms)) if len(terms) > 1 else terms[0]
