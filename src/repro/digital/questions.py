"""The 35 Digital Design multiple-choice questions of the benchmark.

Every gold answer here is *computed* by the digital substrate (netlist
simulation, Quine-McCluskey minimisation, FSM simulation, arithmetic
helpers), never transcribed, and each generator asserts that its distractors
are genuinely wrong — e.g. boolean distractors are checked to be
non-equivalent to the gold expression, mirroring the paper's requirement
that answer options be "syntactically and even semantically similar ...
logically plausible" yet uniquely resolvable.

Visual-type budget for this category (see DESIGN.md): 16 schematics,
8 tables, 6 diagrams (+1 secondary diagram), 4 mixed, 1 "equations".
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.question import (
    AnswerKind,
    Category,
    Question,
    VisualContent,
    VisualType,
    make_mc_question,
)
from repro.digital import arithmetic, sequential
from repro.digital.expr import equivalent_text
from repro.digital.gates import (
    GATE_DELAYS,
    Netlist,
    adder_output_value,
    decoder2to4,
    full_adder,
    half_adder,
    mux2,
    ripple_carry_adder,
)
from repro.digital.kmap import kmap_grid, minimized_expr, sop_text
from repro.digital.sequential import (
    StateMachine,
    next_state_expression,
    sequence_detector,
    sr_latch_table,
)
from repro.visual.diagram import block_diagram_scene, flow_chart_scene
from repro.visual.resolution import infer_legibility_scale
from repro.visual.scene import translate
from repro.visual.schematic import logic_network_scene
from repro.visual.table import (
    equation_scene,
    kmap_scene,
    state_table_scene,
    table_scene,
    truth_table_scene,
)
from repro.visual.waveform import waveform_scene


def _visual(visual_type: VisualType, description: str, scene) -> VisualContent:
    return VisualContent(
        visual_type=visual_type,
        description=description,
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene),
    )


def _check_boolean_choices(choices: Sequence[str], correct: int) -> None:
    """Assert the gold is unique among boolean-expression options."""
    gold = choices[correct]
    for index, option in enumerate(choices):
        if index != correct and equivalent_text(option, gold):
            raise AssertionError(
                f"distractor {option!r} is equivalent to gold {gold!r}"
            )


def _mc(
    number: int,
    prompt: str,
    visual: VisualContent,
    choices: Sequence[str],
    correct: int,
    *,
    difficulty: float,
    topics: Sequence[str],
    answer_kind: AnswerKind = AnswerKind.CHOICE,
    aliases: Sequence[str] = (),
    extra_visuals: Sequence[VisualContent] = (),
) -> Question:
    question = make_mc_question(
        qid=f"dig-{number:02d}",
        category=Category.DIGITAL,
        prompt=prompt,
        visual=visual,
        choices=choices,
        correct=correct,
        difficulty=difficulty,
        topics=topics,
        answer_kind=answer_kind,
        aliases=aliases,
    )
    if extra_visuals:
        question = dataclasses.replace(
            question, extra_visuals=tuple(extra_visuals)
        )
    return question


# ---------------------------------------------------------------------------
# individual question builders
# ---------------------------------------------------------------------------

def _q_half_adder() -> Question:
    netlist = half_adder()
    rows = [bits + (out_sum, out_carry) for (bits, out_sum), (_, out_carry)
            in zip(netlist.truth_table("SUM"), netlist.truth_table("CARRY"))]
    table = truth_table_scene(["A", "B"], ["S", "C"], rows)
    circuit = logic_network_scene(
        [("XOR", "G1", ["A", "B"]), ("AND", "G2", ["A", "B"])], "S,C")
    # a "mixed" visual: truth table + circuit sketch side by side
    scene = table + translate(circuit, 230, 120)
    visual = _visual(
        VisualType.MIXED,
        "Truth table and gate-level circuit for 1-digit binary addition",
        scene,
    )
    return _mc(
        1,
        "The figure shows the truth table and calculation circuit diagram "
        "for the addition of 1-digit integers. What is the simple circuit "
        "that the diagram represents usually called?",
        visual,
        ["Half adder", "Full adder", "Ripple-carry adder", "Comparator"],
        0,
        difficulty=0.1,
        topics=("logic design", "adders"),
        answer_kind=AnswerKind.TEXT,
        aliases=("half-adder", "a half adder"),
    )


def _q_full_adder_cout() -> Question:
    netlist = full_adder()
    gold = "AB + CIN(A ^ B)"
    assert netlist.minterms("COUT") == [3, 5, 6, 7]
    choices = [
        "AB + CIN(A ^ B)",
        "A ^ B ^ CIN",
        "AB + A'CIN",
        "(A + B)CIN'",
    ]
    _check_boolean_choices(choices, 0)
    scene = logic_network_scene(
        [("XOR", "S1", ["A", "B"]), ("AND", "C1", ["A", "B"]),
         ("XOR", "SUM", ["S1", "CIN"]), ("AND", "C2", ["S1", "CIN"]),
         ("OR", "COUT", ["C1", "C2"])],
        "COUT",
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "Full adder built from two half adders", scene)
    return _mc(
        2,
        "For the full-adder circuit shown, which expression gives the "
        "carry-out COUT in terms of the inputs A, B and CIN?",
        visual,
        choices,
        0,
        difficulty=0.35,
        topics=("logic design", "adders"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_mux_function() -> Question:
    netlist = mux2()
    gold_expr = minimized_expr(["S", "A", "B"], netlist.minterms("OUT"))
    gold = sop_text(gold_expr)
    choices = [gold, "SA + S'B", "S(A + B)", "S'A'B + SAB"]
    _check_boolean_choices(choices, 0)
    scene = logic_network_scene(
        [("NOT", "N", ["S"]), ("AND", "T0", ["N", "A"]),
         ("AND", "T1", ["S", "B"]), ("OR", "OUT", ["T0", "T1"])],
        "OUT",
    )
    visual = _visual(VisualType.SCHEMATIC, "Gate-level 2-to-1 multiplexer",
                     scene)
    return _mc(
        3,
        "Derive the output function OUT of the gate network shown, where S "
        "is the select input and A, B are data inputs.",
        visual,
        choices,
        0,
        difficulty=0.3,
        topics=("logic design", "multiplexers"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_decoder_output() -> Question:
    netlist = decoder2to4()
    values = netlist.evaluate({"A1": True, "A0": False})
    active = [name for name in ("Y0", "Y1", "Y2", "Y3") if values[name]]
    assert active == ["Y2"]
    scene = logic_network_scene(
        [("NOT", "N1", ["A1"]), ("NOT", "N0", ["A0"]),
         ("AND", "Y0", ["N1", "N0"]), ("AND", "Y1", ["N1", "A0"]),
         ("AND", "Y2", ["A1", "N0"]), ("AND", "Y3", ["A1", "A0"])],
        "Y",
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "2-to-4 line decoder with active-high outputs", scene)
    return _mc(
        4,
        "The 2-to-4 decoder shown has address inputs A1 (MSB) and A0. "
        "Which output is asserted when A1=1 and A0=0?",
        visual,
        ["Y2", "Y1", "Y3", "Y0"],
        0,
        difficulty=0.18,
        topics=("logic design", "decoders"),
        answer_kind=AnswerKind.TEXT,
    )


def _q_network_eval() -> Question:
    netlist = Netlist(["A", "B", "C"])
    netlist.add_gate("N1", "NAND", ["A", "B"])
    netlist.add_gate("N2", "NOR", ["B", "C"])
    netlist.add_gate("F", "XOR", ["N1", "N2"])
    value = netlist.output("F", {"A": True, "B": False, "C": True})
    assert value is True
    scene = logic_network_scene(
        [("NAND", "N1", ["A", "B"]), ("NOR", "N2", ["B", "C"]),
         ("XOR", "F", ["N1", "N2"])],
        "F",
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "Three-gate network with NAND, NOR and XOR", scene)
    return _mc(
        5,
        "In the logic network shown, determine the value of the output F "
        "when A=1, B=0 and C=1.",
        visual,
        ["F = 1", "F = 0", "F is undefined", "F oscillates"],
        0,
        difficulty=0.25,
        topics=("circuit analysis",),
        answer_kind=AnswerKind.TEXT,
        aliases=("1", "one", "high", "logic 1"),
    )


def _q_network_expr() -> Question:
    netlist = Netlist(["A", "B", "C"])
    netlist.add_gate("N1", "AND", ["A", "B"])
    netlist.add_gate("N2", "NOT", ["C"])
    netlist.add_gate("F", "OR", ["N1", "N2"])
    gold_expr = minimized_expr(["A", "B", "C"], netlist.minterms("F"))
    gold = sop_text(gold_expr)
    choices = [gold, "AB + C", "A + BC'", "(A + B)C'"]
    _check_boolean_choices(choices, 0)
    scene = logic_network_scene(
        [("AND", "N1", ["A", "B"]), ("NOT", "N2", ["C"]),
         ("OR", "F", ["N1", "N2"])],
        "F",
    )
    visual = _visual(VisualType.SCHEMATIC, "AND-OR network with one inverter",
                     scene)
    return _mc(
        6,
        "Write the minimal sum-of-products expression for the output F of "
        "the circuit shown.",
        visual,
        choices,
        0,
        difficulty=0.3,
        topics=("functional derivation",),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_nand_only() -> Question:
    # AND = NAND followed by NAND-as-inverter: 2 gates.
    scene = logic_network_scene(
        [("NAND", "G1", ["A", "B"]), ("NAND", "G2", ["G1", "G1"])],
        "F",
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "Two-gate NAND-only realisation of a function", scene)
    return _mc(
        7,
        "Using only 2-input NAND gates, what is the minimum number of gates "
        "required to implement the AND function F = AB, as illustrated?",
        visual,
        ["2", "1", "3", "4"],
        0,
        difficulty=0.3,
        topics=("logic design", "universal gates"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_critical_path() -> Question:
    netlist = Netlist(["A", "B", "C", "D"])
    netlist.add_gate("G1", "AND", ["A", "B"])
    netlist.add_gate("G2", "OR", ["C", "D"])
    netlist.add_gate("G3", "XOR", ["G1", "G2"])
    netlist.add_gate("F", "NAND", ["G3", "D"])
    delay = netlist.arrival_time("F")
    expected = GATE_DELAYS["OR"] + GATE_DELAYS["XOR"] + GATE_DELAYS["NAND"]
    assert abs(delay - expected) < 1e-9
    scene = logic_network_scene(
        [("AND", "G1", ["A", "B"]), ("OR", "G2", ["C", "D"]),
         ("XOR", "G3", ["G1", "G2"]), ("NAND", "F", ["G3", "D"])],
        "F",
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "Four-gate network with annotated unit delays", scene)
    gold = f"{expected:.1f}"
    return _mc(
        8,
        "Assume gate delays of 1.4 for AND, 1.6 for OR, 2.0 for XOR and "
        "1.0 for NAND (arbitrary units). What is the worst-case "
        "input-to-output delay of the circuit shown?",
        visual,
        [gold, "4.4", "3.0", "6.0"],
        0,
        difficulty=0.55,
        topics=("timing", "critical path"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_parity_tree() -> Question:
    netlist = Netlist(["A", "B", "C", "D"])
    netlist.add_gate("X1", "XOR", ["A", "B"])
    netlist.add_gate("X2", "XOR", ["C", "D"])
    netlist.add_gate("P", "XOR", ["X1", "X2"])
    value = netlist.output(
        "P", {"A": True, "B": True, "C": True, "D": False})
    assert value is True
    scene = logic_network_scene(
        [("XOR", "X1", ["A", "B"]), ("XOR", "X2", ["C", "D"]),
         ("XOR", "P", ["X1", "X2"])],
        "P",
    )
    visual = _visual(VisualType.SCHEMATIC, "XOR tree computing parity", scene)
    return _mc(
        9,
        "The XOR tree shown computes the parity P of inputs A, B, C, D. "
        "What is P for the input pattern A=1, B=1, C=1, D=0?",
        visual,
        ["P = 1", "P = 0", "P = A", "Cannot be determined"],
        0,
        difficulty=0.25,
        topics=("circuit analysis", "parity"),
        answer_kind=AnswerKind.TEXT,
        aliases=("1", "one", "odd parity"),
    )


def _q_demorgan() -> Question:
    gold = "A' + B'"
    choices = [gold, "A'B'", "(A + B)'", "A + B"]
    _check_boolean_choices(choices, 0)
    scene = logic_network_scene([("NAND", "G", ["A", "B"])], "F")
    visual = _visual(VisualType.SCHEMATIC, "Single NAND gate", scene)
    return _mc(
        10,
        "By De Morgan's theorem, the NAND gate shown is logically "
        "equivalent to which expression?",
        visual,
        choices,
        0,
        difficulty=0.2,
        topics=("boolean algebra",),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_ripple_delay() -> Question:
    width = 4
    netlist = ripple_carry_adder(width)
    levels = netlist.level(f"C{width}")
    assert levels == 2 * width + 1  # initial XOR level + 2 levels per slice
    scene = block_diagram_scene(
        [(f"fa{i}", f"FA{i}") for i in range(width)],
        [(f"fa{i}", f"fa{i + 1}") for i in range(width - 1)],
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "4-bit ripple-carry adder as chained full adders", scene)
    return _mc(
        11,
        "In the 4-bit ripple-carry adder shown, each slice computes a "
        "propagate signal (one XOR level) and passes carry through an AND "
        "and an OR gate. Counting the initial propagate level, how many "
        "gate levels does the carry-out C4 traverse in the worst case?",
        visual,
        [str(levels), str(2 * width), str(width), str(3 * width)],
        0,
        difficulty=0.5,
        topics=("adders", "timing"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_adder_value() -> Question:
    width = 4
    netlist = ripple_carry_adder(width)
    total = adder_output_value(netlist, width, 0b1011, 0b0110)
    assert total == 0b1011 + 0b0110
    scene = block_diagram_scene(
        [("a", "A=1011"), ("b", "B=0110"), ("add", "4B ADD"), ("s", "S")],
        [("a", "add"), ("b", "add"), ("add", "s")],
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "4-bit adder with binary operands annotated", scene)
    return _mc(
        12,
        "The 4-bit adder shown receives A=1011 and B=0110 with carry-in 0. "
        "What is the 5-bit result (carry-out followed by sum)?",
        visual,
        [format(total, "05b"), "01111", "11011", "10011"],
        0,
        difficulty=0.35,
        topics=("adders", "arithmetic"),
        answer_kind=AnswerKind.TEXT,
        aliases=(str(total), "17"),
    )


def _q_comparator() -> Question:
    # A > B for 1-bit: A B'. Build and minimise from the truth table.
    gold_expr = minimized_expr(["A", "B"], [2])  # A=1, B=0
    gold = sop_text(gold_expr)
    choices = [gold, "A'B", "A ^ B", "AB"]
    _check_boolean_choices(choices, 0)
    scene = logic_network_scene(
        [("NOT", "NB", ["B"]), ("AND", "GT", ["A", "NB"])], "GT")
    visual = _visual(VisualType.SCHEMATIC, "1-bit magnitude comparator",
                     scene)
    return _mc(
        13,
        "For the 1-bit comparator shown, which expression asserts the "
        "output GT exactly when A > B?",
        visual,
        choices,
        0,
        difficulty=0.3,
        topics=("comparators", "functional derivation"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_mux4_select() -> Question:
    # 4:1 mux, select = 2 -> input D2 appears at the output.
    scene = block_diagram_scene(
        [("d0", "D0"), ("d1", "D1"), ("d2", "D2"), ("d3", "D3"),
         ("mux", "MUX 4:1"), ("out", "Y")],
        [("d0", "mux"), ("d1", "mux"), ("d2", "mux"), ("d3", "mux"),
         ("mux", "out")],
        columns=5,
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "4-to-1 multiplexer with select lines S1 S0", scene)
    return _mc(
        14,
        "The 4-to-1 multiplexer shown has select inputs S1 (MSB) and S0. "
        "Which data input is routed to the output Y when S1=1 and S0=0?",
        visual,
        ["D2", "D1", "D3", "D0"],
        0,
        difficulty=0.2,
        topics=("multiplexers",),
        answer_kind=AnswerKind.TEXT,
    )


def _q_ring_oscillator() -> Question:
    stages, tp = 5, 2.0
    period = 2 * stages * tp
    scene = logic_network_scene(
        [("NOT", f"I{i}", [f"I{i - 1}" if i else "I4"]) for i in range(5)],
        "OSC",
    )
    visual = _visual(VisualType.SCHEMATIC, "Five-inverter ring oscillator",
                     scene)
    return _mc(
        15,
        "A ring oscillator is formed from 5 identical inverters, each with "
        "propagation delay 2 ns, as shown. What is the oscillation period?",
        visual,
        [f"{period:.0f} ns", "10 ns", "5 ns", "40 ns"],
        0,
        difficulty=0.45,
        topics=("timing", "oscillators"),
        answer_kind=AnswerKind.NUMERIC,
        aliases=(f"{period:.0f}",),
    )


def _q_logic_levels() -> Question:
    netlist = Netlist(["A", "B", "C", "D"])
    netlist.add_gate("L1A", "AND", ["A", "B"])
    netlist.add_gate("L1B", "OR", ["C", "D"])
    netlist.add_gate("L2", "NAND", ["L1A", "L1B"])
    netlist.add_gate("F", "NOT", ["L2"])
    levels = netlist.level("F")
    assert levels == 3
    scene = logic_network_scene(
        [("AND", "L1A", ["A", "B"]), ("OR", "L1B", ["C", "D"]),
         ("NAND", "L2", ["L1A", "L1B"]), ("NOT", "F", ["L2"])],
        "F",
    )
    visual = _visual(VisualType.SCHEMATIC, "Multi-level gate network", scene)
    return _mc(
        16,
        "How many logic levels (maximum number of gates on any "
        "input-to-output path) does the network shown have?",
        visual,
        [str(levels), "2", "4", "5"],
        0,
        difficulty=0.3,
        topics=("logic design",),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_nor_latch() -> Question:
    value = sequential.sr_ff_next(1, 0, 0)
    assert value == 1
    scene = logic_network_scene(
        [("NOR", "Q", ["R", "QB"]), ("NOR", "QB", ["S", "Q"])], "Q")
    visual = _visual(VisualType.SCHEMATIC, "Cross-coupled NOR SR latch",
                     scene)
    return _mc(
        17,
        "The cross-coupled NOR latch shown is driven with S=1, R=0 while "
        "Q was previously 0. What does Q become?",
        visual,
        ["Q = 1", "Q = 0", "Q holds its previous value", "Q is metastable"],
        0,
        difficulty=0.35,
        topics=("latches", "sequential logic"),
        answer_kind=AnswerKind.TEXT,
        aliases=("1", "set", "high"),
    )


def _q_sr_next_state() -> Question:
    expr = next_state_expression(["S", "R"], "Q", sr_latch_table())
    gold = f"Q+ = {sop_text(expr)}"
    choices = [gold, "Q+ = S'Q + SR", "Q+ = SR' + S'R'Q'", "Q+ = S'Q + R'"]
    _check_boolean_choices([c.split("=", 1)[1] for c in choices], 0)
    grid = kmap_grid(["S", "R", "Q"], [1, 4, 5], [6, 7])
    scene = (state_table_scene(
        ["S", "R", "Q", "Q+"],
        [["0", "0", "0", "0"], ["0", "0", "1", "1"],
         ["0", "1", "0", "0"], ["0", "1", "1", "0"],
         ["1", "0", "0", "1"], ["1", "0", "1", "1"],
         ["1", "1", "0", "X"], ["1", "1", "1", "X"]],
        title="SR LATCH STATE TABLE")
        + translate(kmap_scene(["S", "R", "Q"], grid, title="Q+ MAP"),
                    280, 0))
    visual = _visual(
        VisualType.TABLE,
        "State table and excitation map of an SR latch", scene)
    return _mc(
        18,
        "Derive the function for Q given the state table and excitation "
        "maps as shown in the figures (X entries are don't-cares).",
        visual,
        choices,
        0,
        difficulty=0.6,
        topics=("sequential logic", "functional derivation"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_jk_characteristic() -> Question:
    minterms = []
    for index in range(8):
        j, k, q = (index >> 2) & 1, (index >> 1) & 1, index & 1
        if sequential.jk_ff_next(j, k, q):
            minterms.append(index)
    expr = minimized_expr(["J", "K", "Q"], minterms)
    gold = f"Q+ = {sop_text(expr)}"
    choices = [gold, "Q+ = JQ + K'Q'", "Q+ = J + K'Q'", "Q+ = JK' + Q"]
    _check_boolean_choices([c.split("=", 1)[1] for c in choices], 0)
    scene = state_table_scene(
        ["J", "K", "Q", "Q+"],
        [[str((i >> 2) & 1), str((i >> 1) & 1), str(i & 1),
          str(sequential.jk_ff_next((i >> 2) & 1, (i >> 1) & 1, i & 1))]
         for i in range(8)],
        title="JK FLIP FLOP")
    visual = _visual(VisualType.TABLE, "JK flip-flop state table", scene)
    return _mc(
        19,
        "From the JK flip-flop state table shown, derive the "
        "characteristic equation for the next state Q+.",
        visual,
        choices,
        0,
        difficulty=0.5,
        topics=("sequential logic", "flip-flops"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_kmap3() -> Question:
    names = ["A", "B", "C"]
    minterms = [1, 3, 5, 7]  # f = C
    expr = minimized_expr(names, minterms)
    gold = sop_text(expr)
    assert gold == "C"
    # the gold text "C" is itself a letter: place it at option position C
    # so letter- and text-interpretations of a bare "C" response agree
    choices = ["B'C", "AB'C", gold, "A + C"]
    _check_boolean_choices(choices, 2)
    scene = kmap_scene(names, kmap_grid(names, minterms), title="F MAP")
    visual = _visual(VisualType.TABLE, "Three-variable Karnaugh map", scene)
    return _mc(
        20,
        "Find the minimal sum-of-products expression for the function F "
        "mapped in the Karnaugh map shown.",
        visual,
        choices,
        2,
        difficulty=0.35,
        topics=("kmap", "minimisation"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_kmap4_dc() -> Question:
    names = ["A", "B", "C", "D"]
    minterms = [0, 2, 5, 7, 8, 10]
    dont_cares = [13, 15]
    expr = minimized_expr(names, minterms, dont_cares)
    gold = sop_text(expr)
    choices = [gold, "B'D' + A'BD", "A'D' + BD", "B'D' + A'D"]
    _check_boolean_choices(choices, 0)
    scene = kmap_scene(names, kmap_grid(names, minterms, dont_cares),
                       title="F MAP WITH DONT CARES")
    visual = _visual(VisualType.TABLE,
                     "Four-variable Karnaugh map with don't-cares", scene)
    return _mc(
        21,
        "Using the don't-care entries (X) to advantage, find the minimal "
        "sum-of-products form of the function in the Karnaugh map shown.",
        visual,
        choices,
        0,
        difficulty=0.65,
        topics=("kmap", "minimisation", "dont cares"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_identify_gate() -> Question:
    rows = [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 1)]
    scene = truth_table_scene(["A", "B"], ["F"],
                              [(a, b, f) for a, b, f in rows])
    visual = _visual(VisualType.TABLE, "Two-input truth table", scene)
    return _mc(
        22,
        "Which gate is this?",
        visual,
        ["XNOR", "XOR", "NAND", "NOR"],
        0,
        difficulty=0.15,
        topics=("logic design",),
        answer_kind=AnswerKind.TEXT,
        aliases=("exclusive-nor", "equivalence gate"),
    )


def _q_min_flipflops() -> Question:
    machine = StateMachine(
        states=[f"S{i}" for i in range(6)],
        inputs=("0", "1"),
        transitions=[
            sequential.Transition(f"S{i}", symbol, f"S{(i + 1) % 6}")
            for i in range(6) for symbol in ("0", "1")
        ],
        initial="S0",
    )
    bits = machine.min_flipflops()
    assert bits == 3
    scene = state_table_scene(
        ["STATE", "X=0", "X=1"], machine.state_table_rows(),
        title="SIX STATE MACHINE")
    visual = _visual(VisualType.TABLE, "State table with six states", scene)
    return _mc(
        23,
        "The state table shown describes a synchronous machine with six "
        "states. What is the minimum number of flip-flops required for a "
        "binary state encoding?",
        visual,
        [str(bits), "2", "6", "4"],
        0,
        difficulty=0.3,
        topics=("sequential logic", "state encoding"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_kmap3_b() -> Question:
    names = ["X", "Y", "Z"]
    minterms = [0, 1, 4, 5, 6]
    expr = minimized_expr(names, minterms)
    gold = sop_text(expr)
    choices = [gold, "Y' + XZ", "X'Y' + XY", "Y'Z' + XZ'"]
    _check_boolean_choices(choices, 0)
    scene = kmap_scene(names, kmap_grid(names, minterms), title="G MAP")
    visual = _visual(VisualType.TABLE, "Three-variable Karnaugh map", scene)
    return _mc(
        24,
        "Minimise the function G shown in the Karnaugh map into "
        "sum-of-products form.",
        visual,
        choices,
        0,
        difficulty=0.45,
        topics=("kmap", "minimisation"),
        answer_kind=AnswerKind.BOOLEAN_EXPR,
    )


def _q_t_ff_sequence() -> Question:
    # Q trace 0 -> 1 -> 1 -> 0 requires T = 1, 0, 1.
    trace = [0, 1, 1, 0]
    t_inputs = [sequential.T_EXCITATION[(trace[i], trace[i + 1])]
                for i in range(3)]
    gold = "".join(t_inputs)
    assert gold == "101"
    scene = state_table_scene(
        ["CLK", "Q"], [[str(i), str(q)] for i, q in enumerate(trace)],
        title="DESIRED Q SEQUENCE")
    visual = _visual(VisualType.TABLE,
                     "Required flip-flop output per clock edge", scene)
    return _mc(
        25,
        "A T flip-flop must produce the output sequence Q = 0, 1, 1, 0 on "
        "successive clock edges as tabulated. What input sequence T must "
        "be applied over the three transitions?",
        visual,
        [gold, "010", "110", "011"],
        0,
        difficulty=0.5,
        topics=("flip-flops", "excitation"),
        answer_kind=AnswerKind.TEXT,
        aliases=("1,0,1", "1 0 1"),
    )


def _q_detector_states() -> Question:
    machine = sequence_detector("101")
    count = len(machine.states)
    assert count == 3
    scene = flow_chart_scene([f"S{i}" for i in range(count)], loop_back=0)
    visual = _visual(VisualType.DIAGRAM,
                     "State diagram of a Mealy sequence detector", scene)
    return _mc(
        26,
        "A minimal Mealy machine detects the overlapping pattern 101 on a "
        "serial input, as sketched. How many states does it need?",
        visual,
        [str(count), "4", "2", "5"],
        0,
        difficulty=0.5,
        topics=("fsm", "sequence detector"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_fsm_run() -> Question:
    machine = sequence_detector("110")
    trace, outputs = machine.run(list("110110"))
    detections = outputs.count("1")
    assert detections == 2
    scene = flow_chart_scene(list(machine.states), loop_back=0)
    visual = _visual(VisualType.DIAGRAM,
                     "State diagram of a 110 sequence detector", scene)
    return _mc(
        27,
        "The Mealy detector shown outputs 1 each time the pattern 110 "
        "completes (overlaps allowed). How many 1s does it emit for the "
        "input stream 110110?",
        visual,
        [str(detections), "1", "3", "0"],
        0,
        difficulty=0.45,
        topics=("fsm",),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_shift_register() -> Question:
    # 4-bit right shift register, serial-in 1,0,1 applied to 0000.
    state = [0, 0, 0, 0]
    for bit in (1, 0, 1):
        state = [bit] + state[:-1]
    gold = "".join(str(b) for b in state)
    assert gold == "1010"
    scene = block_diagram_scene(
        [("d0", "FF0"), ("d1", "FF1"), ("d2", "FF2"), ("d3", "FF3")],
        [("d0", "d1"), ("d1", "d2"), ("d2", "d3")],
    )
    wave = waveform_scene([("SIN", [1, 0, 1]), ("CLK", [0, 1, 0, 1, 0, 1])])
    extra = _visual(VisualType.DIAGRAM,
                    "Serial input and clock timing for the shift register",
                    wave)
    visual = _visual(VisualType.DIAGRAM,
                     "4-bit serial-in shift register", scene)
    return _mc(
        28,
        "The 4-bit shift register shown starts at 0000 and shifts right "
        "(FF0 receives the serial input). After the three serial bits "
        "1, 0, 1 shown in the timing diagram are clocked in, what is the "
        "register content FF0..FF3?",
        visual,
        [gold, "0101", "1011", "0010"],
        0,
        difficulty=0.4,
        topics=("registers", "sequential logic"),
        answer_kind=AnswerKind.TEXT,
        extra_visuals=[extra],
    )


def _q_johnson() -> Question:
    width = 4
    states = sequential.johnson_counter_states(width)
    period = len(states)
    assert period == 8
    scene = block_diagram_scene(
        [(f"f{i}", f"FF{i}") for i in range(width)],
        [(f"f{i}", f"f{i + 1}") for i in range(width - 1)] + [("f3", "f0")],
    )
    visual = _visual(VisualType.DIAGRAM, "Four-stage Johnson counter", scene)
    return _mc(
        29,
        "The twisted-ring (Johnson) counter shown feeds the complement of "
        "the last stage back to the first. With 4 flip-flops, how many "
        "distinct states does it cycle through?",
        visual,
        [str(period), "4", "16", "15"],
        0,
        difficulty=0.45,
        topics=("counters",),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_ring_counter() -> Question:
    width = 5
    states = sequential.ring_counter_states(width)
    assert len(states) == 5
    scene = block_diagram_scene(
        [(f"f{i}", f"FF{i}") for i in range(width)],
        [(f"f{i}", f"f{i + 1}") for i in range(width - 1)] + [("f4", "f0")],
        columns=5,
    )
    visual = _visual(VisualType.DIAGRAM, "Five-stage one-hot ring counter",
                     scene)
    return _mc(
        30,
        "A one-hot ring counter with 5 flip-flops is shown. How many "
        "states make up its counting sequence?",
        visual,
        [str(len(states)), "10", "32", "25"],
        0,
        difficulty=0.3,
        topics=("counters",),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_address_bits() -> Question:
    bits = arithmetic.memory_address_bits(64 * 1024)
    assert bits == 16
    scene = block_diagram_scene(
        [("addr", "ADDR"), ("mem", "64K X 8"), ("data", "DATA")],
        [("addr", "mem"), ("mem", "data")],
    )
    visual = _visual(VisualType.DIAGRAM, "64K x 8 memory block", scene)
    return _mc(
        31,
        "How many address lines are required for the 64K x 8 memory shown?",
        visual,
        [str(bits), "8", "64", "17"],
        0,
        difficulty=0.25,
        topics=("memory",),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_memory_expansion() -> Question:
    chips = arithmetic.memory_chip_count(64 * 1024, 16, 16 * 1024, 8)
    assert chips == 8
    scene = (table_scene([["ITEM", "SIZE"],
                          ["TARGET", "64K X 16"],
                          ["CHIP", "16K X 8"]],
                         origin=(60, 60))
             + block_diagram_scene(
                 [("c0", "CHIP"), ("c1", "CHIP"), ("c2", "CHIP"),
                  ("c3", "...")],
                 [],
             ))
    visual = _visual(VisualType.MIXED,
                     "Memory expansion target and available chips", scene)
    return _mc(
        32,
        "A 64K x 16 memory must be assembled from 16K x 8 chips as "
        "tabulated. How many chips are required?",
        visual,
        [str(chips), "4", "16", "2"],
        0,
        difficulty=0.4,
        topics=("memory", "storage design"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_hamming() -> Question:
    code = arithmetic.hamming_encode("1011")
    corrupted = list(code)
    corrupted[4] = "1" if corrupted[4] == "0" else "0"  # flip position 5
    corrupted_word = "".join(corrupted)
    _, position = arithmetic.hamming_correct(corrupted_word)
    assert position == 5
    scene = (table_scene([["POS"] + [str(i + 1) for i in range(len(code))],
                          ["BIT"] + list(corrupted_word)],
                         col_width=34, origin=(40, 70))
             + equation_scene(["P1 P2 D1 P4 D2 D3 D4"], numbered=False))
    visual = _visual(VisualType.MIXED,
                     "Received Hamming(7,4) code word and bit positions",
                     scene)
    return _mc(
        33,
        "The received Hamming(7,4) code word shown contains a single bit "
        "error. Using even parity, at which bit position (1-indexed) is "
        "the error?",
        visual,
        [str(position), "3", "6", "1"],
        0,
        difficulty=0.85,
        topics=("error correction", "data representation"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_float_fields() -> Question:
    sign, exponent, _ = arithmetic.float_fields(-6.5)
    assert (sign, exponent) == (1, 129)
    scene = (equation_scene(["V = -6.5", "V = (-1)^S 2^(E-127) (1+F)"])
             + table_scene([["S", "E", "F"], ["1", "?", "101..."]],
                           origin=(60, 180)))
    visual = _visual(VisualType.MIXED,
                     "IEEE-754 single-precision field layout", scene)
    return _mc(
        34,
        "When -6.5 is encoded in IEEE-754 single precision as laid out in "
        "the figure, what is the value of the biased exponent field E "
        "(in decimal)?",
        visual,
        [str(exponent), "2", "127", "130"],
        0,
        difficulty=0.6,
        topics=("data representation", "floating point"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_overflow() -> Question:
    result, overflow = arithmetic.add_with_overflow(90, 70, 8)
    assert overflow and result == -96
    scene = equation_scene(
        ["1) 90 + 70 IN 8-BIT 2'S COMPLEMENT",
         "2) 01011010 + 01000110", "3) RESULT = ?"],
        numbered=False)
    visual = _visual(VisualType.EQUATIONS,
                     "Two's-complement addition worked in equations", scene)
    return _mc(
        35,
        "The equations shown add 90 and 70 in 8-bit two's-complement "
        "arithmetic. What does the hardware produce?",
        visual,
        [f"{result} with signed overflow", "160 with no overflow",
         "-96 with no overflow", "96 with signed overflow"],
        0,
        difficulty=0.55,
        topics=("arithmetic", "overflow"),
        answer_kind=AnswerKind.TEXT,
        aliases=("-96 with overflow", "overflow, result -96"),
    )


_BUILDERS = [
    _q_half_adder, _q_full_adder_cout, _q_mux_function, _q_decoder_output,
    _q_network_eval, _q_network_expr, _q_nand_only, _q_critical_path,
    _q_parity_tree, _q_demorgan, _q_ripple_delay, _q_adder_value,
    _q_comparator, _q_mux4_select, _q_ring_oscillator, _q_logic_levels,
    _q_nor_latch, _q_sr_next_state, _q_jk_characteristic, _q_kmap3,
    _q_kmap4_dc, _q_identify_gate, _q_min_flipflops, _q_kmap3_b,
    _q_t_ff_sequence, _q_detector_states, _q_fsm_run, _q_shift_register,
    _q_johnson, _q_ring_counter, _q_address_bits, _q_memory_expansion,
    _q_hamming, _q_float_fields, _q_overflow,
]


#: Worked solutions, interpolating the computed gold as ``{gold}``.
_EXPLANATIONS = {
    "dig-01": "One sum and one carry output over two inputs with S = A^B "
              "and C = AB is the definition of a half adder; the gold is "
              "{gold}.",
    "dig-02": "Carry-out asserts when both inputs are 1 (AB) or when "
              "exactly one is 1 and carry-in is 1 (CIN(A^B)), giving "
              "{gold}; simulation confirms minterms 3, 5, 6, 7.",
    "dig-03": "With S = 0 the upper AND passes A; with S = 1 the lower "
              "AND passes B, so OUT = {gold} after two-level minimisation.",
    "dig-04": "A1=1, A0=0 encodes address 2, and a one-hot decoder "
              "asserts exactly output {gold}.",
    "dig-05": "N1 = NAND(1, 0) = 1 and N2 = NOR(0, 1) = 0, so "
              "F = 1 XOR 0 = 1.",
    "dig-06": "The OR combines AB with C', so F = {gold}; the "
              "Quine-McCluskey cover of minterms 0, 2, 4, 6, 7 is already "
              "minimal.",
    "dig-07": "A NAND gives (AB)'; feeding it into a second NAND wired as "
              "an inverter restores AB, so {gold} gates suffice and one "
              "cannot work (a single NAND is not AND).",
    "dig-08": "The slowest path is C/D through the OR (1.6), the XOR "
              "(2.0) and the NAND (1.0): 1.6 + 2.0 + 1.0 = {gold}.",
    "dig-09": "Three ones among A, B, C, D make odd parity, so the XOR "
              "tree outputs 1.",
    "dig-10": "De Morgan: (AB)' = {gold} — a NAND is an OR of the "
              "complemented inputs.",
    "dig-11": "Propagate signals cost one XOR level, then each of the 4 "
              "slices adds an AND and an OR to the carry chain: "
              "1 + 2x4 = {gold} levels.",
    "dig-12": "1011 (11) plus 0110 (6) is 17 = 10001 in five bits; the "
              "gate-level adder produces exactly that carry and sum.",
    "dig-13": "A > B for single bits only when A = 1 and B = 0, i.e. "
              "GT = {gold}.",
    "dig-14": "S1S0 = 10 selects input index 2, so {gold} reaches Y.",
    "dig-15": "A ring oscillator's period is twice the loop delay: "
              "2 x 5 x 2 ns = {gold}.",
    "dig-16": "The longest path passes AND/OR (level 1), NAND (level 2) "
              "and NOT (level 3): {gold} levels.",
    "dig-17": "S = 1 drives QB low, which with R = 0 lets Q rise: the "
              "latch sets, Q = 1.",
    "dig-18": "Minimising the map with X entries as don't-cares groups "
              "minterms 4, 5 (+6, 7) into S and 1, 5 into R'Q: "
              "Q+ = S + R'Q.",
    "dig-19": "Grouping the table's ones gives JQ' (set when clear) plus "
              "K'Q (hold when set): the JK characteristic equation.",
    "dig-20": "All four ones sit where C = 1 regardless of A and B, so "
              "F = C.",
    "dig-21": "Using X at 13 and 15 extends the BD group: F = B'D' + BD "
              "covers minterms 0, 2, 8, 10 and 5, 7.",
    "dig-22": "Output is 1 exactly when the inputs match (00 and 11): "
              "that truth table is the XNOR.",
    "dig-23": "Six states need ceil(log2 6) = {gold} flip-flops; two give "
              "only four codes.",
    "dig-24": "Y' covers minterms 0, 1, 4, 5 and XZ' adds 6: "
              "G = {gold}.",
    "dig-25": "A T flip-flop toggles when T = 1: transitions 0->1, 1->1, "
              "1->0 need T = 1, 0, 1.",
    "dig-26": "A minimal detector needs one state per matched prefix "
              "length 0..2, so {gold} states suffice for pattern 101.",
    "dig-27": "110110 completes the pattern at positions 3 and 6, so the "
              "detector emits two 1s.",
    "dig-28": "Shifting in 1, 0, 1 (MSB first into FF0) leaves "
              "FF0..FF3 = 1010 after three clocks.",
    "dig-29": "A Johnson counter walks through 2n distinct states: "
              "2 x 4 = {gold}.",
    "dig-30": "A one-hot ring counter has exactly one state per stage: "
              "{gold} states.",
    "dig-31": "64K = 2^16 locations need {gold} address lines.",
    "dig-32": "Words: 64K/16K = 4 banks; width: 16/8 = 2 chips per bank; "
              "4 x 2 = {gold} chips.",
    "dig-33": "Recomputing even parity over positions 1, 2 and 4 flags "
              "subsets {1,4}, giving syndrome 1 + 4 = {gold}.",
    "dig-34": "6.5 = 1.625 x 2^2, so E = 127 + 2 = {gold}; the sign bit "
              "handles the minus.",
    "dig-35": "90 + 70 = 160 exceeds the +127 limit of 8 bits; the sum "
              "wraps to -96 with signed overflow.",
}


def generate_digital_questions() -> List[Question]:
    """All 35 Digital Design questions, in stable order."""
    questions = [builder() for builder in _BUILDERS]
    if len(questions) != 35:
        raise AssertionError(f"expected 35 digital questions, got {len(questions)}")
    questions = [
        dataclasses.replace(
            q, explanation=_EXPLANATIONS[q.qid].replace("{gold}",
                                                        q.gold_text))
        for q in questions
    ]
    return questions


#: Version of this family's question generators.  Folded into the
#: content-addressed build-cache fingerprint (see
#: :func:`repro.core.databuild.generator_fingerprint`): bump whenever a
#: builder's output changes so stale cached shards are invalidated.
GENERATOR_VERSION = "digital-1"


def generate_digital_questions_scaled(
    seed: int,
    shard_index: int,
    shard_size: int,
    total: Optional[int] = None,
) -> List[Question]:
    """Digital Design members of one shard of a seeded scaled build.

    Delegates to :func:`repro.core.databuild.family_scaled_questions`:
    shard ``shard_index`` of the interleaved global sequence is built
    (through the shard build cache) and this family's members are
    returned in global order.  ``total`` clips the final shard of an
    ``n``-question build.
    """
    from repro.core.databuild import family_scaled_questions
    from repro.core.question import Category

    return family_scaled_questions(
        Category.DIGITAL, seed, shard_index, shard_size, total=total)
