"""Data representation and computer arithmetic helpers.

Covers the Digital Design topics the paper lists under "Data Representation"
and "Memory and Storage Design": two's complement, sign extension, overflow
detection, fixed point, IEEE-754-style float decomposition, parity and
Hamming codes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def to_twos_complement(value: int, width: int) -> str:
    """The ``width``-bit two's-complement bit string of ``value``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not low <= value <= high:
        raise ValueError(f"{value} not representable in {width} bits")
    return format(value & ((1 << width) - 1), f"0{width}b")


def from_twos_complement(bits: str) -> int:
    """Integer value of a two's-complement bit string."""
    if not bits or any(c not in "01" for c in bits):
        raise ValueError(f"not a bit string: {bits!r}")
    value = int(bits, 2)
    if bits[0] == "1":
        value -= 1 << len(bits)
    return value


def twos_complement_range(width: int) -> Tuple[int, int]:
    """(min, max) representable in ``width``-bit two's complement."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def add_with_overflow(a: int, b: int, width: int) -> Tuple[int, bool]:
    """Two's-complement addition: (wrapped result, signed overflow flag)."""
    low, high = twos_complement_range(width)
    total = a + b
    overflow = not low <= total <= high
    mask = (1 << width) - 1
    wrapped = (total & mask)
    if wrapped >= 1 << (width - 1):
        wrapped -= 1 << width
    return wrapped, overflow


def sign_extend(bits: str, width: int) -> str:
    """Sign-extend a two's-complement bit string to ``width`` bits."""
    if width < len(bits):
        raise ValueError("target width narrower than input")
    return bits[0] * (width - len(bits)) + bits


def fixed_point_value(bits: str, fraction_bits: int, signed: bool = True) -> float:
    """Value of a fixed-point bit string with ``fraction_bits`` after the
    binary point."""
    raw = from_twos_complement(bits) if signed else int(bits, 2)
    return raw / (1 << fraction_bits)


def float_fields(value: float, exponent_bits: int = 8,
                 mantissa_bits: int = 23) -> Tuple[int, int, int]:
    """(sign, biased exponent, mantissa) of an IEEE-754-style encoding.

    Round-to-nearest-even is approximated by round-half-away (adequate for
    the benchmark's exactly-representable values); subnormals and specials
    are out of scope and raise.
    """
    if value == 0:
        return (0, 0, 0)
    if math.isnan(value) or math.isinf(value):
        raise ValueError("specials not supported")
    sign = 0 if value > 0 else 1
    magnitude = abs(value)
    exponent = math.floor(math.log2(magnitude))
    bias = (1 << (exponent_bits - 1)) - 1
    biased = exponent + bias
    if not 1 <= biased <= (1 << exponent_bits) - 2:
        raise ValueError("exponent out of normal range")
    fraction = magnitude / (2.0 ** exponent) - 1.0
    mantissa = int(round(fraction * (1 << mantissa_bits)))
    if mantissa == 1 << mantissa_bits:  # rounding overflowed the fraction
        mantissa = 0
        biased += 1
    return (sign, biased, mantissa)


def parity_bit(bits: str, even: bool = True) -> int:
    """The parity bit that makes the total ones count even (or odd)."""
    ones = bits.count("1")
    bit = ones % 2
    return bit if even else 1 - bit


def hamming_encode(data_bits: str) -> str:
    """Encode data with a (2^r - 1, 2^r - 1 - r) Hamming code (SEC).

    Bit positions are 1-indexed; powers of two hold parity.  Returns the
    full code word MSB-position-1-first (textbook convention).
    """
    m = len(data_bits)
    r = 0
    while (1 << r) < m + r + 1:
        r += 1
    n = m + r
    code = ["0"] * (n + 1)  # 1-indexed
    data_iter = iter(data_bits)
    for position in range(1, n + 1):
        if position & (position - 1):  # not a power of two
            code[position] = next(data_iter)
    for parity_pos in (1 << i for i in range(r)):
        ones = sum(
            int(code[position])
            for position in range(1, n + 1)
            if position & parity_pos
        )
        code[parity_pos] = str(ones % 2)
    return "".join(code[1:])


def hamming_syndrome(code_word: str) -> int:
    """The error position (0 when clean) of a Hamming code word."""
    n = len(code_word)
    syndrome = 0
    r = 0
    while (1 << r) <= n:
        parity_pos = 1 << r
        ones = sum(
            int(code_word[position - 1])
            for position in range(1, n + 1)
            if position & parity_pos
        )
        if ones % 2:
            syndrome |= parity_pos
        r += 1
    return syndrome


def hamming_correct(code_word: str) -> Tuple[str, int]:
    """Correct a single-bit error; returns (corrected word, position)."""
    position = hamming_syndrome(code_word)
    if position == 0:
        return code_word, 0
    if position > len(code_word):
        raise ValueError("syndrome outside code word (multi-bit error?)")
    flipped = list(code_word)
    flipped[position - 1] = "1" if flipped[position - 1] == "0" else "0"
    return "".join(flipped), position


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return value ^ (value >> 1)


def gray_decode(gray: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if gray < 0:
        raise ValueError("value must be non-negative")
    value = 0
    while gray:
        value ^= gray
        gray >>= 1
    return value


def memory_address_bits(words: int) -> int:
    """Address width needed for ``words`` locations (ceil log2)."""
    if words < 1:
        raise ValueError("words must be >= 1")
    bits = 0
    while (1 << bits) < words:
        bits += 1
    return bits


def memory_chip_count(
    total_words: int, total_width: int, chip_words: int, chip_width: int
) -> int:
    """Chips needed to build a ``total_words x total_width`` memory from
    ``chip_words x chip_width`` devices (textbook memory-expansion drill)."""
    if min(total_words, total_width, chip_words, chip_width) < 1:
        raise ValueError("all dimensions must be positive")
    rows = math.ceil(total_words / chip_words)
    cols = math.ceil(total_width / chip_width)
    return rows * cols
