"""A small deterministic tokenizer used for prompt-length statistics.

The paper reports prompt token-length statistics (Table I) computed with the
evaluated models' tokenizers.  Offline we provide :class:`WordPieceTokenizer`,
a self-contained greedy sub-word tokenizer with a fixed vocabulary of common
English and chip-design sub-words, so token counts are reproducible across
machines and runs.
"""

from repro.tokenizer.bpe import WordPieceTokenizer, default_tokenizer

__all__ = ["WordPieceTokenizer", "default_tokenizer"]
