"""Greedy word-piece tokenizer with a fixed, code-defined vocabulary.

The tokenizer splits text on whitespace and punctuation, then greedily
matches the longest known sub-word at each position (the classic WordPiece
inference algorithm).  Unknown spans fall back to character tokens, so every
string tokenizes and ``detokenize(tokenize(s))`` preserves the word sequence.

The vocabulary is intentionally small: a few hundred frequent English
sub-words plus chip-design terms that occur in ChipVQA prompts.  What matters
for the benchmark statistics is determinism and a realistic ~0.75 words/token
ratio, not linguistic fidelity.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Iterable, List, Sequence, Tuple

_WORD_RE = re.compile(r"[A-Za-z]+|[0-9]+|[^\sA-Za-z0-9]")

# Frequent English sub-words (roots, prefixes, suffixes) plus domain terms.
_BASE_VOCAB = [
    # whole common words
    "the", "a", "an", "of", "to", "in", "is", "are", "and", "or", "for",
    "what", "which", "how", "when", "where", "why", "with", "without",
    "given", "shown", "figure", "diagram", "circuit", "voltage", "current",
    "signal", "gate", "logic", "state", "table", "answer", "question",
    "design", "chip", "clock", "delay", "path", "cell", "layer", "mask",
    "wafer", "etch", "rate", "time", "cache", "memory", "pipeline", "stage",
    "branch", "address", "page", "bit", "bits", "byte", "bytes", "line",
    "output", "input", "value", "unit", "units", "gain", "frequency",
    "resistance", "capacitance", "transistor", "amplifier", "feedback",
    "transfer", "function", "pole", "zero", "phase", "margin", "loop",
    "routing", "placement", "timing", "skew", "tree", "net", "pin", "wire",
    "area", "power", "ground", "assume", "calculate", "determine", "derive",
    "compute", "select", "choose", "correct", "following", "respectively",
    "total", "minimum", "maximum", "number", "shows", "depicted", "per",
    "each", "two", "three", "four", "one", "if", "at", "on", "by", "from",
    "as", "be", "it", "its", "this", "that", "these", "those", "has",
    "have", "will", "can", "between", "across", "into", "through",
    "resolution", "process", "node", "edge", "block", "module", "latency",
    "cycle", "cycles", "instruction", "instructions", "miss", "hit",
    "ratio", "width", "height", "length", "size", "speed", "technique",
    "lithography", "enhancement", "structure", "substrate", "silicon",
    "oxide", "metal", "poly", "via", "contact", "drain", "source",
    "threshold", "channel", "region", "doping", "implant", "anneal",
    # prefixes / roots
    "pre", "post", "sub", "super", "inter", "intra", "multi", "semi",
    "micro", "nano", "giga", "mega", "kilo", "milli", "over", "under",
    "out", "up", "down", "non", "un", "re", "de", "dis", "mis", "trans",
    "con", "com", "pro", "per", "ex", "en",
    # suffixes (as continuation pieces)
    "##s", "##es", "##ed", "##ing", "##er", "##ers", "##or", "##ors",
    "##ion", "##ions", "##tion", "##ation", "##ment", "##ness", "##ity",
    "##al", "##ial", "##ic", "##ical", "##ous", "##ive", "##able", "##ible",
    "##ly", "##ful", "##less", "##est", "##ize", "##ise", "##ance", "##ence",
    "##y", "##e", "##t", "##d", "##n", "##r", "##l", "##m", "##a", "##o",
    "##i", "##u", "##c", "##g", "##h", "##p", "##b", "##f", "##k", "##v",
    "##w", "##x", "##z", "##q", "##j",
    # chip-design domain vocabulary (high-frequency words from the ChipVQA
    # prompt corpus; a tokenizer trained on EDA text would carry these)
    "kohm", "does", "many", "um", "nm", "ns", "gm", "using", "ms",
    "sequence", "results", "ro", "required", "machine", "register", "add",
    "load", "alu", "expression", "network", "sum", "tabulated", "first",
    "same", "ideal", "beta", "end", "cm", "carry", "inputs", "pattern",
    "level", "flip", "single", "closed", "mm", "data", "worst", "period",
    "flop", "must", "sketched", "ff", "back", "ohm", "rd", "rs", "adc",
    "step", "half", "reads", "sio", "microns", "row", "cells", "adder",
    "minimal", "products", "only", "delays", "case", "levels", "map",
    "states", "flops", "after", "rl", "drawn", "vin", "inverting", "rf",
    "estimate", "dc", "device", "db", "ma", "vref", "bandwidth",
    "topology", "execute", "dependent", "bolded", "immediately", "wide",
    "access", "vector", "model", "min", "defect", "msb", "nand", "gates",
    "xor", "counting", "receives", "comparator", "ring", "driven", "find",
    "karnaugh", "serial", "right", "counter", "lines", "code", "error",
    "connected", "ladder", "series", "uses", "op", "amp", "open", "unity",
    "differential", "small", "neglect", "loaded", "five", "nmos",
    "magnitude", "id", "residue", "rc", "before", "most", "factor",
    "placed", "but", "relation", "annotated", "bypass", "reach", "file",
    "read", "lw", "no", "use", "critical", "cpi", "kib", "writes", "runs",
    "taken", "branches", "plus", "predict", "boe", "si", "na", "pitch",
    "printed", "follows", "drive", "dies", "defects", "wirelength",
    "target", "full", "terms", "write", "computes", "parity",
    "equivalent", "propagate", "followed", "multiplexer", "oscillator",
    "oscillation", "cross", "become", "entries", "don", "characteristic",
    "form", "produce", "successive", "edges", "applied", "mealy",
    "overlapping", "detector", "outputs", "starts", "feeds", "complement",
    "last", "chips", "biased", "field", "arithmetic", "vs", "top", "much",
    "vout", "rin", "rg", "finite", "classic", "resistors", "common",
    "adding", "stacks", "including", "both", "pair", "cmrr",
    "approximation", "vov", "vgs", "vth", "scaling", "conversion", "pass",
    "converter", "large", "lsb", "nf", "present", "do", "instruction",
    "instructions", "cycles", "cycle", "stall", "stalls", "forwarding",
    "decode", "fetch", "writeback", "compute", "derive", "determine",
    "shown", "figure", "minimum", "maximum", "resistance", "voltage",
    "frequency", "feedback", "amplifier", "transistor", "capacitance",
    # common letter bigrams/trigrams as continuations
    "##th", "##he", "##in", "##er", "##an", "##re", "##on", "##at", "##en",
    "##nd", "##ti", "##es", "##or", "##te", "##of", "##it", "##is", "##ar",
    "##st", "##to", "##nt", "##ng", "##se", "##ha", "##as", "##ou", "##io",
    "##le", "##ve", "##co", "##me", "##de", "##hi", "##ri", "##ro", "##ic",
    "##ne", "##ea", "##ra", "##ce", "##li", "##ch", "##ll", "##be", "##ma",
    "##si", "##om", "##ur", "##ck", "##ge", "##ap", "##la", "##el", "##ta",
    "##ol", "##ow", "##sh", "##ul", "##um", "##ag", "##ir", "##ab", "##ut",
    "##ad", "##qu", "##ff", "##gh", "##gn", "##mp", "##ph", "##ach", "##ign",
    "##ter", "##ent", "##ate", "##ver", "##ith", "##ort", "##ect", "##ain",
]


def _build_vocab(extra: Iterable[str] = ()) -> dict:
    vocab = {}
    for piece in _BASE_VOCAB:
        vocab.setdefault(piece, len(vocab))
    # single characters, standalone and as continuations
    for code in range(32, 127):
        ch = chr(code)
        vocab.setdefault(ch, len(vocab))
        if ch.isalnum():
            vocab.setdefault("##" + ch, len(vocab))
    for piece in extra:
        vocab.setdefault(piece, len(vocab))
    return vocab


class WordPieceTokenizer:
    """Deterministic greedy longest-match sub-word tokenizer.

    >>> tok = WordPieceTokenizer()
    >>> tok.count("What is the voltage across RL?") >= 7
    True
    """

    #: Upper bound on a matched sub-word, keeps the greedy scan linear.
    max_piece_len = 16

    #: Bound on the per-instance word memo: words repeat heavily across
    #: the 142-prompt corpus, so the greedy scan runs once per distinct
    #: word; the cap keeps a long-lived tokenizer's footprint fixed.
    word_cache_limit = 4096

    def __init__(self, extra_vocab: Iterable[str] = ()) -> None:
        self._vocab = _build_vocab(extra_vocab)
        self._word_cache: "OrderedDict[str, Tuple[str, ...]]" = OrderedDict()
        self._word_cache_lock = threading.Lock()

    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into sub-word tokens (continuations prefixed ``##``)."""
        pieces: List[str] = []
        for word in _WORD_RE.findall(text):
            pieces.extend(self._tokenize_word(word))
        return pieces

    def _tokenize_word(self, word: str) -> Tuple[str, ...]:
        """Memoized greedy scan of one word (LRU-bounded, thread-safe).

        Returns a tuple so a cached result can be shared safely between
        callers; :meth:`tokenize` extends its piece list from it.
        """
        with self._word_cache_lock:
            cached = self._word_cache.get(word)
            if cached is not None:
                self._word_cache.move_to_end(word)
                return cached
        pieces = tuple(self._tokenize_word_uncached(word))
        with self._word_cache_lock:
            self._word_cache[word] = pieces
            self._word_cache.move_to_end(word)
            while len(self._word_cache) > self.word_cache_limit:
                self._word_cache.popitem(last=False)
        return pieces

    def _tokenize_word_uncached(self, word: str) -> List[str]:
        lowered = word.lower()
        pieces: List[str] = []
        start = 0
        while start < len(lowered):
            end = min(len(lowered), start + self.max_piece_len)
            match = None
            while end > start:
                candidate = lowered[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self._vocab:
                    match = candidate
                    break
                end -= 1
            if match is None:
                # Single characters are always in the vocabulary, so this
                # only happens for non-ASCII input; emit a 1-char fallback.
                match = ("##" if start > 0 else "") + lowered[start]
                start += 1
            else:
                start = end
            pieces.append(match)
        return pieces

    def count(self, text: str) -> int:
        """Number of tokens in ``text``."""
        return len(self.tokenize(text))

    def detokenize(self, pieces: Sequence[str]) -> str:
        """Best-effort inverse of :meth:`tokenize` (lower-cased)."""
        words: List[str] = []
        for piece in pieces:
            if piece.startswith("##") and words:
                words[-1] += piece[2:]
            else:
                words.append(piece)
        return " ".join(words)


_DEFAULT = None


def default_tokenizer() -> WordPieceTokenizer:
    """Process-wide shared tokenizer instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = WordPieceTokenizer()
    return _DEFAULT
