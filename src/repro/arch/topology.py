"""Network-on-chip topologies: construction and the metrics questions use.

Builds ring, 2D mesh, 2D torus, hypercube and crossbar graphs with networkx
and computes diameter, average hop count, bisection width and link/router
counts.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Tuple

import networkx as nx


def ring(n: int) -> nx.Graph:
    """A bidirectional ring of ``n`` routers."""
    if n < 3:
        raise ValueError("ring needs >= 3 nodes")
    return nx.cycle_graph(n)


def mesh2d(rows: int, cols: int) -> nx.Graph:
    """A rows x cols 2-D mesh."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    return nx.grid_2d_graph(rows, cols)


def torus2d(rows: int, cols: int) -> nx.Graph:
    """A rows x cols 2-D torus (mesh with wraparound links)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be >= 3")
    return nx.grid_2d_graph(rows, cols, periodic=True)


def hypercube(dimension: int) -> nx.Graph:
    """A ``dimension``-dimensional binary hypercube."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    return nx.hypercube_graph(dimension)


def crossbar(n: int) -> nx.Graph:
    """Fully connected (every pair one hop)."""
    if n < 2:
        raise ValueError("crossbar needs >= 2 nodes")
    return nx.complete_graph(n)


def diameter(graph: nx.Graph) -> int:
    """Longest shortest-path hop count."""
    return nx.diameter(graph)


def average_hops(graph: nx.Graph) -> float:
    """Mean shortest-path length over all router pairs."""
    return nx.average_shortest_path_length(graph)


def link_count(graph: nx.Graph) -> int:
    """Number of bidirectional links."""
    return graph.number_of_edges()


def bisection_width(graph: nx.Graph) -> int:
    """Minimum links cut when splitting nodes into two equal halves.

    Exact (exhaustive) for small graphs; exams only use small instances.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n % 2:
        raise ValueError("bisection needs an even node count")
    if n > 16:
        return _bisection_known(graph, nodes)
    best = math.inf
    node_set = set(nodes)
    for half in itertools.combinations(nodes, n // 2):
        if nodes[0] not in half:  # fix one node's side: halves the search
            continue
        half_set = set(half)
        cut = sum(
            1 for u, v in graph.edges()
            if (u in half_set) != (v in half_set)
        )
        best = min(best, cut)
    return int(best)


def _bisection_known(graph: nx.Graph, nodes) -> int:
    """Closed forms for the standard topologies at larger sizes."""
    n = len(nodes)
    degrees = {d for _, d in graph.degree()}
    edges = graph.number_of_edges()
    if edges == n * (n - 1) // 2:  # crossbar
        return (n // 2) ** 2
    if degrees == {2}:  # ring
        return 2
    # hypercube: n = 2^d, regular of degree d
    d = n.bit_length() - 1
    if 2 ** d == n and degrees == {d}:
        return n // 2
    raise ValueError("unknown large topology; use <= 16 nodes")


def mesh_diameter(rows: int, cols: int) -> int:
    """Closed form: (rows - 1) + (cols - 1)."""
    return (rows - 1) + (cols - 1)


def torus_diameter(rows: int, cols: int) -> int:
    """Closed form: floor(rows/2) + floor(cols/2)."""
    return rows // 2 + cols // 2


def hypercube_diameter(dimension: int) -> int:
    """Closed form: the dimension itself."""
    return dimension


def compare_topologies(n: int) -> Dict[str, Dict[str, float]]:
    """Metric table for the standard topologies at ``n`` nodes (n = k^2 =
    2^d for mesh/hypercube comparability)."""
    side = int(round(math.sqrt(n)))
    dim = n.bit_length() - 1
    table: Dict[str, Dict[str, float]] = {}
    entries = [("ring", ring(n)), ("crossbar", crossbar(n))]
    if side * side == n:
        entries.append(("mesh", mesh2d(side, side)))
        if side >= 3:
            entries.append(("torus", torus2d(side, side)))
    if 2 ** dim == n:
        entries.append(("hypercube", hypercube(dim)))
    for name, graph in entries:
        table[name] = {
            "diameter": float(diameter(graph)),
            "links": float(link_count(graph)),
            "avg_hops": round(average_hops(graph), 3),
        }
    return table


def dor_route(src: Tuple[int, int], dst: Tuple[int, int]) -> list:
    """Dimension-order (XY) route in a mesh; returns the hop list."""
    path = [src]
    x, y = src
    while x != dst[0]:
        x += 1 if dst[0] > x else -1
        path.append((x, y))
    while y != dst[1]:
        y += 1 if dst[1] > y else -1
        path.append((x, y))
    return path
