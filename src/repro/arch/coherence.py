"""MESI cache-coherence protocol: per-line state machine and bus traffic.

A faithful snooping MESI model at the granularity coherence exam questions
use: processors issue reads/writes to one line, the protocol tracks each
cache's state, and counts bus transactions (BusRd, BusRdX, BusUpgr) and
writebacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class State(enum.Enum):
    """The four MESI line states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class Access:
    cpu: int
    write: bool

    @classmethod
    def read(cls, cpu: int) -> "Access":
        return cls(cpu, False)

    @classmethod
    def write_(cls, cpu: int) -> "Access":
        return cls(cpu, True)


@dataclass
class BusEvent:
    kind: str          # BusRd | BusRdX | BusUpgr
    cpu: int
    flush: bool = False  # another cache supplied / wrote back the data


class MesiSystem:
    """N caches snooping one bus, tracking a single cache line."""

    def __init__(self, n_cpus: int):
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.states: List[State] = [State.INVALID] * n_cpus
        self.events: List[BusEvent] = []
        self.writebacks = 0

    def _others_with_copy(self, cpu: int) -> List[int]:
        return [
            i for i, s in enumerate(self.states)
            if i != cpu and s is not State.INVALID
        ]

    def access(self, access: Access) -> State:
        """Apply one access; returns the requester's resulting state."""
        cpu = access.cpu
        state = self.states[cpu]
        if access.write:
            if state is State.MODIFIED:
                pass  # silent hit
            elif state is State.EXCLUSIVE:
                self.states[cpu] = State.MODIFIED  # silent upgrade
            elif state is State.SHARED:
                self.events.append(BusEvent("BusUpgr", cpu))
                self._invalidate_others(cpu)
                self.states[cpu] = State.MODIFIED
            else:  # INVALID
                flush = self._snoop_flush(cpu)
                self.events.append(BusEvent("BusRdX", cpu, flush))
                self._invalidate_others(cpu)
                self.states[cpu] = State.MODIFIED
        else:
            if state is not State.INVALID:
                pass  # read hit in M/E/S
            else:
                flush = self._snoop_flush(cpu)
                others = self._others_with_copy(cpu)
                self.events.append(BusEvent("BusRd", cpu, flush))
                if others:
                    for i in others:
                        if self.states[i] in (State.MODIFIED, State.EXCLUSIVE):
                            self.states[i] = State.SHARED
                    self.states[cpu] = State.SHARED
                else:
                    self.states[cpu] = State.EXCLUSIVE
        return self.states[cpu]

    def _snoop_flush(self, cpu: int) -> bool:
        """A Modified copy elsewhere must be flushed before we proceed."""
        for i, state in enumerate(self.states):
            if i != cpu and state is State.MODIFIED:
                self.writebacks += 1
                return True
        return False

    def _invalidate_others(self, cpu: int) -> None:
        for i in range(len(self.states)):
            if i != cpu:
                self.states[i] = State.INVALID

    def run(self, accesses: Sequence[Access]) -> List[State]:
        """Apply a sequence of accesses; returns requester states per step."""
        return [self.access(a) for a in accesses]

    @property
    def bus_transactions(self) -> int:
        return len(self.events)

    def state_of(self, cpu: int) -> State:
        return self.states[cpu]

    def state_trace(self, accesses: Sequence[Access]) -> List[Tuple[State, ...]]:
        """All caches' states after each access (for table rendering)."""
        trace: List[Tuple[State, ...]] = []
        for access in accesses:
            self.access(access)
            trace.append(tuple(self.states))
        return trace


def invalidations_for(accesses: Sequence[Access], n_cpus: int) -> int:
    """Number of invalidation-causing bus transactions in a trace."""
    system = MesiSystem(n_cpus)
    system.run(accesses)
    return sum(1 for e in system.events if e.kind in ("BusRdX", "BusUpgr"))
