"""In-order pipeline timing model with forwarding/bypass configuration.

Models the classic 5-stage RISC pipeline (IF ID EX MEM WB) at the level
graduate exam questions reason about: data-hazard stalls as a function of
which bypass paths exist, load-use delays, control-flow bubbles, and the
resulting CPI over an instruction trace.  The bypass-path configuration is
explicit so questions like the paper's Architecture example — "how does the
bolded bypass path from the load unit to the ALU affect CPI and frequency?"
— are answered by running the same trace under two configurations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

STAGES = ("IF", "ID", "EX", "MEM", "WB")


class Op(enum.Enum):
    """Instruction classes the timing model distinguishes."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"


@dataclass(frozen=True)
class Instr:
    """One instruction: destination register and source registers."""

    op: Op
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.op is Op.LOAD and self.dst is None:
            raise ValueError("load needs a destination")


def alu(dst: str, *srcs: str, label: str = "") -> Instr:
    """An ALU instruction writing ``dst`` from ``srcs``."""
    return Instr(Op.ALU, dst, tuple(srcs), label or f"ALU {dst}")


def load(dst: str, addr_reg: str = "sp", label: str = "") -> Instr:
    """A load into ``dst`` addressed via ``addr_reg``."""
    return Instr(Op.LOAD, dst, (addr_reg,), label or f"LD {dst}")


def store(src: str, addr_reg: str = "sp", label: str = "") -> Instr:
    """A store of ``src`` addressed via ``addr_reg``."""
    return Instr(Op.STORE, None, (src, addr_reg), label or f"ST {src}")


def branch(*srcs: str, label: str = "BR") -> Instr:
    """A conditional branch reading ``srcs``."""
    return Instr(Op.BRANCH, None, tuple(srcs), label)


@dataclass(frozen=True)
class BypassConfig:
    """Which forwarding paths exist.

    * ``ex_to_ex``: ALU result forwarded to the next instruction's EX.
    * ``mem_to_ex``: MEM-stage value (incl. load data) forwarded to EX.
    * ``wb_to_id``: register write visible to ID in the same cycle
      (write-before-read register file), standard in the 5-stage design.
    """

    ex_to_ex: bool = True
    mem_to_ex: bool = True
    wb_to_id: bool = True

    @classmethod
    def full(cls) -> "BypassConfig":
        return cls(True, True, True)

    @classmethod
    def none(cls) -> "BypassConfig":
        return cls(False, False, True)


@dataclass
class PipelineResult:
    """Outcome of a timing simulation."""

    cycles: int
    instructions: int
    stall_cycles: int
    issue_cycle: List[int]  # cycle in which each instruction entered EX

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            raise ValueError("empty trace")
        return self.cycles / self.instructions


class Pipeline:
    """Scalar in-order 5-stage pipeline with configurable bypassing."""

    def __init__(self, bypass: BypassConfig = BypassConfig.full(),
                 branch_penalty: int = 1):
        self.bypass = bypass
        if branch_penalty < 0:
            raise ValueError("branch penalty must be non-negative")
        self.branch_penalty = branch_penalty

    def _operand_ready_distance(self, producer: Instr) -> int:
        """Minimum instruction distance so the consumer needs no stall.

        Distance 1 means back-to-back works.  With full bypassing an ALU
        result is usable at distance 1 and a load at distance 2 (classic
        load-use bubble); without EX/MEM forwarding the value is only
        available through the register file (distance 3 with
        write-before-read).
        """
        if producer.op is Op.LOAD:
            if self.bypass.mem_to_ex:
                return 2
            return 3 if self.bypass.wb_to_id else 4
        if producer.op in (Op.ALU,):
            if self.bypass.ex_to_ex:
                return 1
            if self.bypass.mem_to_ex:
                return 2
            return 3 if self.bypass.wb_to_id else 4
        return 1

    def run(self, trace: Sequence[Instr],
            taken_branches: int = 0) -> PipelineResult:
        """Timing-simulate ``trace``; returns cycle counts and CPI.

        ``cycles`` counts from the first instruction's EX issue through the
        last WB, the convention under which an ideal pipeline has CPI -> 1.
        """
        if not trace:
            raise ValueError("empty trace")
        issue: List[int] = []
        last_writer: Dict[str, int] = {}
        cycle = 0
        stalls = 0
        for index, instr in enumerate(trace):
            earliest = cycle + 1 if index else 1
            for src in instr.srcs:
                if src in last_writer:
                    producer_index = last_writer[src]
                    producer = trace[producer_index]
                    distance = self._operand_ready_distance(producer)
                    ready = issue[producer_index] + distance
                    earliest = max(earliest, ready)
            stalls += earliest - (cycle + 1 if index else 1)
            issue.append(earliest)
            cycle = earliest
            if instr.dst is not None:
                last_writer[instr.dst] = index
        total = issue[-1] + (len(STAGES) - STAGES.index("EX") - 1)
        total += taken_branches * self.branch_penalty
        return PipelineResult(
            cycles=total,
            instructions=len(trace),
            stall_cycles=stalls,
            issue_cycle=issue,
        )

    def cpi(self, trace: Sequence[Instr], taken_branches: int = 0) -> float:
        return self.run(trace, taken_branches).cpi


def load_use_stall_cycles(bypass: BypassConfig) -> int:
    """Bubbles between a load and an immediately dependent ALU op."""
    pipeline = Pipeline(bypass)
    trace = [load("r1"), alu("r2", "r1")]
    result = pipeline.run(trace)
    return result.issue_cycle[1] - result.issue_cycle[0] - 1


def frequency_after_bypass(base_freq_mhz: float,
                           bypass_delay_fraction: float) -> float:
    """Clock frequency after adding a bypass mux to the critical path.

    A forwarding path adds mux delay to the EX stage; if it lengthens the
    critical path by ``bypass_delay_fraction`` (e.g. 0.1 for 10%), the
    maximum frequency scales down by 1 / (1 + fraction).
    """
    if bypass_delay_fraction < 0:
        raise ValueError("delay fraction must be non-negative")
    return base_freq_mhz / (1.0 + bypass_delay_fraction)


def speedup(cpi_before: float, cpi_after: float,
            freq_before: float = 1.0, freq_after: float = 1.0) -> float:
    """Iron-law speedup: (CPI_b / CPI_a) * (f_a / f_b) for a fixed program."""
    if min(cpi_before, cpi_after, freq_before, freq_after) <= 0:
        raise ValueError("all quantities must be positive")
    return (cpi_before / cpi_after) * (freq_after / freq_before)


def pipeline_speedup_ideal(n_stages: int) -> float:
    """Ideal speedup of an n-stage pipeline over single-cycle: n."""
    if n_stages < 1:
        raise ValueError("need at least one stage")
    return float(n_stages)


def critical_path_frequency_mhz(stage_delays_ns: Sequence[float],
                                latch_overhead_ns: float = 0.0) -> float:
    """Maximum clock frequency set by the slowest stage."""
    if not stage_delays_ns:
        raise ValueError("no stages")
    slowest = max(stage_delays_ns)
    if slowest + latch_overhead_ns <= 0:
        raise ValueError("non-positive cycle time")
    return 1000.0 / (slowest + latch_overhead_ns)
