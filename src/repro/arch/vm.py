"""Virtual memory: multi-level page-table walks and a TLB model."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class VmGeometry:
    """Address-space parameters of a paged machine."""

    virtual_bits: int
    physical_bits: int
    page_bytes: int
    levels: int = 1

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a power of two")
        if self.levels < 1:
            raise ValueError("need at least one level")
        if self.vpn_bits % self.levels:
            raise ValueError("VPN bits must divide evenly across levels")

    @property
    def offset_bits(self) -> int:
        return self.page_bytes.bit_length() - 1

    @property
    def vpn_bits(self) -> int:
        return self.virtual_bits - self.offset_bits

    @property
    def ppn_bits(self) -> int:
        return self.physical_bits - self.offset_bits

    @property
    def bits_per_level(self) -> int:
        return self.vpn_bits // self.levels

    @property
    def entries_per_table(self) -> int:
        return 1 << self.bits_per_level

    def pte_bytes(self, metadata_bits: int = 0) -> int:
        """Bytes per page-table entry, rounded up to a power of two."""
        bits = self.ppn_bits + metadata_bits
        size = 1
        while size * 8 < bits:
            size *= 2
        return size

    def split_vpn(self, vaddr: int) -> List[int]:
        """Per-level VPN fields, outermost first."""
        vpn = vaddr >> self.offset_bits
        fields: List[int] = []
        for level in range(self.levels):
            shift = self.bits_per_level * (self.levels - 1 - level)
            fields.append((vpn >> shift) & (self.entries_per_table - 1))
        return fields

    def offset(self, vaddr: int) -> int:
        return vaddr & (self.page_bytes - 1)


class PageTable:
    """A radix page table mapping VPN -> PPN, walked level by level."""

    def __init__(self, geometry: VmGeometry):
        self.geometry = geometry
        self._map: Dict[int, int] = {}

    def map(self, vaddr: int, paddr: int) -> None:
        """Install a mapping for the pages containing the addresses."""
        vpn = vaddr >> self.geometry.offset_bits
        ppn = paddr >> self.geometry.offset_bits
        self._map[vpn] = ppn

    def translate(self, vaddr: int) -> int:
        """Translate or raise ``KeyError`` (page fault)."""
        vpn = vaddr >> self.geometry.offset_bits
        if vpn not in self._map:
            raise KeyError(f"page fault at {vaddr:#x}")
        return (self._map[vpn] << self.geometry.offset_bits) \
            | self.geometry.offset(vaddr)

    def walk_accesses(self) -> int:
        """Memory accesses per walk: one per level."""
        return self.geometry.levels


class Tlb:
    """Fully associative LRU TLB."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError("need at least one entry")
        self.entries = entries
        self._lines: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[int]:
        if vpn in self._lines:
            self.hits += 1
            self._lines.move_to_end(vpn)
            return self._lines[vpn]
        self.misses += 1
        return None

    def fill(self, vpn: int, ppn: int) -> None:
        if len(self._lines) >= self.entries and vpn not in self._lines:
            self._lines.popitem(last=False)
        self._lines[vpn] = ppn
        self._lines.move_to_end(vpn)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if not total:
            raise ValueError("no lookups yet")
        return self.hits / total


class Mmu:
    """TLB + page table front end returning access latencies."""

    def __init__(self, table: PageTable, tlb: Tlb,
                 tlb_time: float = 1.0, memory_time: float = 100.0):
        self.table = table
        self.tlb = tlb
        self.tlb_time = tlb_time
        self.memory_time = memory_time

    def access(self, vaddr: int) -> Tuple[int, float]:
        """(physical address, latency) of one access; walks on TLB miss."""
        geometry = self.table.geometry
        vpn = vaddr >> geometry.offset_bits
        ppn = self.tlb.lookup(vpn)
        latency = self.tlb_time
        if ppn is None:
            paddr = self.table.translate(vaddr)  # may raise (fault)
            latency += geometry.levels * self.memory_time
            self.tlb.fill(vpn, paddr >> geometry.offset_bits)
        else:
            paddr = (ppn << geometry.offset_bits) | geometry.offset(vaddr)
        return paddr, latency + self.memory_time  # final data access


def page_table_size_bytes(geometry: VmGeometry,
                          metadata_bits: int = 0) -> int:
    """Size of one flat (single-level) page table covering the space."""
    entries = 1 << geometry.vpn_bits
    return entries * geometry.pte_bytes(metadata_bits)


def effective_access_time(tlb_hit_rate: float, tlb_time: float,
                          memory_time: float, levels: int = 1) -> float:
    """EAT = hit: tlb + mem; miss: tlb + levels*mem (walk) + mem."""
    if not 0 <= tlb_hit_rate <= 1:
        raise ValueError("hit rate must be a probability")
    hit_cost = tlb_time + memory_time
    miss_cost = tlb_time + levels * memory_time + memory_time
    return tlb_hit_rate * hit_cost + (1 - tlb_hit_rate) * miss_cost
