"""Vector processor timing: chimes, strip-mining, Amdahl arithmetic."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class VectorOp:
    """One vector instruction with its functional unit and register usage."""

    name: str
    unit: str
    dst: str
    srcs: Tuple[str, ...] = ()


def chimes(ops: Sequence[VectorOp], allow_chaining: bool = True) -> int:
    """Number of convoys/chimes for a vector sequence.

    A new convoy starts when an op needs a functional unit already used in
    the current convoy, or (without chaining) reads a register written in
    the current convoy.
    """
    if not ops:
        return 0
    convoys = 1
    units: Set[str] = set()
    written: Set[str] = set()
    for op in ops:
        conflict = op.unit in units
        if not allow_chaining and any(s in written for s in op.srcs):
            conflict = True
        if conflict:
            convoys += 1
            units = set()
            written = set()
        units.add(op.unit)
        written.add(op.dst)
    return convoys


def vector_execution_cycles(n_elements: int, n_chimes: int,
                            startup: int = 0) -> int:
    """Cycles = chimes * n + startup (one lane, unit initiation rate)."""
    if n_elements < 1 or n_chimes < 1:
        raise ValueError("elements and chimes must be positive")
    return n_chimes * n_elements + startup


def strip_mine_iterations(n: int, mvl: int) -> int:
    """Loop iterations to process ``n`` elements with max vector length."""
    if n < 0 or mvl < 1:
        raise ValueError("bad sizes")
    return math.ceil(n / mvl) if n else 0


def amdahl_speedup(parallel_fraction: float, speedup_factor: float) -> float:
    """Amdahl's law."""
    if not 0 <= parallel_fraction <= 1:
        raise ValueError("fraction must be a probability")
    if speedup_factor <= 0:
        raise ValueError("speedup factor must be positive")
    return 1.0 / ((1 - parallel_fraction) + parallel_fraction / speedup_factor)


def lanes_speedup(n_elements: int, n_lanes: int, n_chimes: int) -> float:
    """Speedup from multiple lanes: elements drain n_lanes per cycle."""
    if n_lanes < 1:
        raise ValueError("need at least one lane")
    single = vector_execution_cycles(n_elements, n_chimes)
    multi = n_chimes * math.ceil(n_elements / n_lanes)
    return single / multi


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte — roofline model x-axis."""
    if bytes_moved <= 0:
        raise ValueError("bytes must be positive")
    return flops / bytes_moved


def roofline_gflops(peak_gflops: float, bandwidth_gbs: float,
                    intensity: float) -> float:
    """Attainable performance under the roofline model."""
    if min(peak_gflops, bandwidth_gbs, intensity) <= 0:
        raise ValueError("all inputs must be positive")
    return min(peak_gflops, bandwidth_gbs * intensity)
