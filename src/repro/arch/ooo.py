"""Out-of-order execution: hazard classification and a scoreboard model.

Covers the OoO exam staples: naming RAW/WAR/WAW hazards in a code fragment,
and a simple scoreboard-style issue model that shows how register renaming
removes false dependences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.pipeline import Instr


@dataclass(frozen=True)
class Hazard:
    kind: str        # RAW | WAR | WAW
    earlier: int     # index of the earlier instruction
    later: int
    register: str


def classify_hazards(trace: Sequence[Instr]) -> List[Hazard]:
    """All register hazards between instruction pairs (nearest producer).

    RAW: later reads a register an earlier writes.
    WAR: later writes a register an earlier reads.
    WAW: later writes a register an earlier writes.
    """
    hazards: List[Hazard] = []
    for j, later in enumerate(trace):
        for i in range(j - 1, -1, -1):
            earlier = trace[i]
            if later.srcs and earlier.dst in later.srcs:
                hazards.append(Hazard("RAW", i, j, earlier.dst))
            if later.dst is not None:
                if later.dst in earlier.srcs:
                    hazards.append(Hazard("WAR", i, j, later.dst))
                if earlier.dst == later.dst:
                    hazards.append(Hazard("WAW", i, j, later.dst))
    return hazards


def hazard_counts(trace: Sequence[Instr]) -> Dict[str, int]:
    """RAW/WAR/WAW hazard totals for a trace."""
    counts = {"RAW": 0, "WAR": 0, "WAW": 0}
    for hazard in classify_hazards(trace):
        counts[hazard.kind] += 1
    return counts


def false_hazards_removed_by_renaming(trace: Sequence[Instr]) -> int:
    """WAR + WAW count — the hazards register renaming eliminates."""
    counts = hazard_counts(trace)
    return counts["WAR"] + counts["WAW"]


@dataclass
class _InFlight:
    index: int
    finish: int
    dst: Optional[str]


class Scoreboard:
    """Simplified scoreboard: in-order issue, out-of-order completion.

    Each op takes ``latency[op.label]`` cycles in its unit (default 1).
    Issue stalls on RAW (source pending) and on WAW (destination pending);
    with ``renaming=True`` WAW never stalls (infinite physical registers).
    """

    def __init__(self, latencies: Optional[Dict[str, int]] = None,
                 renaming: bool = False):
        self.latencies = dict(latencies or {})
        self.renaming = renaming

    def run(self, trace: Sequence[Instr]) -> List[Tuple[int, int]]:
        """Returns (issue cycle, completion cycle) per instruction."""
        schedule: List[Tuple[int, int]] = []
        pending: List[_InFlight] = []
        cycle = 0
        for index, instr in enumerate(trace):
            cycle += 1
            while True:
                ready_cycle = cycle
                for flight in pending:
                    if flight.dst and flight.dst in instr.srcs:
                        ready_cycle = max(ready_cycle, flight.finish + 1)
                    if (not self.renaming and instr.dst is not None
                            and flight.dst == instr.dst):
                        ready_cycle = max(ready_cycle, flight.finish + 1)
                if ready_cycle == cycle:
                    break
                cycle = ready_cycle
            latency = self.latencies.get(instr.label, 1)
            finish = cycle + latency - 1
            pending = [f for f in pending if f.finish >= cycle]
            pending.append(_InFlight(index, finish, instr.dst))
            schedule.append((cycle, finish))
        return schedule

    def total_cycles(self, trace: Sequence[Instr]) -> int:
        schedule = self.run(trace)
        return max(finish for _, finish in schedule)


def rob_entries_needed(issue_width: int, pipeline_depth: int) -> int:
    """Little's-law sizing: in-flight instructions = width x depth."""
    if issue_width < 1 or pipeline_depth < 1:
        raise ValueError("width and depth must be positive")
    return issue_width * pipeline_depth
