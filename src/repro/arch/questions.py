"""The 20 Architecture questions of the benchmark (8 MC + 12 short-answer).

Coverage mirrors Section III-B3 of the paper: memory encoding, branch
prediction, critical-path latency, coherence, virtual-memory translation,
pipelining (including the bolded-bypass-path example from the paper's
introduction of this category), vector processors, out-of-order machines
and network topology.  All golds are computed by the architecture substrate.

Visual budget (DESIGN.md): 10 diagrams (+1 secondary diagram), 4 tables,
3 mixed, 2 neural-nets, 1 figure.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.arch import branch as branch_mod
from repro.arch import coherence, ooo, topology, vector, vm
from repro.arch.cache import CacheGeometry, amat
from repro.arch.coherence import Access, MesiSystem
from repro.arch.pipeline import (
    BypassConfig,
    Pipeline,
    alu,
    load,
    load_use_stall_cycles,
    store,
)
from repro.arch.vector import VectorOp
from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    Question,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.visual.diagram import block_diagram_scene, graph_scene, pipeline_scene
from repro.visual.resolution import infer_legibility_scale
from repro.visual.scene import translate
from repro.visual.table import cache_table_scene, equation_scene, table_scene


def _visual(visual_type: VisualType, description: str, scene) -> VisualContent:
    return VisualContent(
        visual_type=visual_type,
        description=description,
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene),
    )


def _mc(number: int, prompt: str, visual: VisualContent,
        choices: Sequence[str], correct: int, *, difficulty: float,
        topics: Sequence[str], answer_kind: AnswerKind = AnswerKind.CHOICE,
        aliases: Sequence[str] = (), unit: str = "",
        extra_visuals: Sequence[VisualContent] = ()) -> Question:
    question = make_mc_question(
        qid=f"arc-{number:02d}", category=Category.ARCHITECTURE,
        prompt=prompt, visual=visual, choices=choices, correct=correct,
        difficulty=difficulty, topics=topics, answer_kind=answer_kind,
        aliases=aliases, unit=unit)
    if extra_visuals:
        question = dataclasses.replace(
            question, extra_visuals=tuple(extra_visuals))
    return question


def _sa(number: int, prompt: str, visual: VisualContent, answer: AnswerSpec,
        *, difficulty: float, topics: Sequence[str]) -> Question:
    return make_sa_question(
        qid=f"arc-{number:02d}", category=Category.ARCHITECTURE,
        prompt=prompt, visual=visual, answer=answer,
        difficulty=difficulty, topics=topics)


# ---------------------------------------------------------------------------

def _q_bypass_cpi() -> Question:
    """The paper's example: a bolded load-to-ALU bypass path."""
    trace = [load("r1"), alu("r2", "r1"), alu("r3", "r2"), store("r3"),
             load("r4"), alu("r5", "r4"), alu("r6", "r5", "r3"), store("r6")]
    without = Pipeline(BypassConfig(ex_to_ex=True, mem_to_ex=False))
    with_path = Pipeline(BypassConfig(ex_to_ex=True, mem_to_ex=True))
    saved = without.run(trace).cycles - with_path.run(trace).cycles
    assert saved > 0
    scene = pipeline_scene(["IF", "ID", "EX", "MEM", "WB"], bypass=(3, 2))
    visual = _visual(
        VisualType.DIAGRAM,
        "Five-stage pipeline with a bolded bypass from the load unit "
        "(MEM) back to the ALU input (EX)", scene)
    prompt = (
        "The figure shows a classic five-stage in-order pipeline (fetch, "
        "decode, execute, memory, writeback) for a scalar RISC machine. "
        "The machine already forwards ALU results from the end of execute "
        "back to the ALU input, so back-to-back dependent ALU operations "
        "never stall. The bolded path in the drawing is an additional "
        "bypass routing the load unit output, available at the end of the "
        "memory stage, directly to the ALU input of the instruction "
        "entering execute. Without the bolded path, a loaded value "
        "reaches a dependent instruction only through the register file, "
        "which is written in writeback and read in decode (write before "
        "read, so a same-cycle reader sees the new value). Consider the "
        "sequence where each load feeds a dependent ALU operation: LW r1; "
        "ADD r2, r1; ADD r3, r2; SW r3; LW r4; ADD r5, r4; ADD r6, r5, "
        "r3; SW r6. Assume perfect caches, no control hazards, and "
        "single-issue operation. Note that adding the bolded bypass also "
        "lengthens the execute critical path by one forwarding "
        "multiplexer, trading frequency for fewer stalls; ignore the "
        "frequency effect here. How many total "
        "clock cycles of stall does the bolded bypass path remove from "
        "this eight-instruction sequence?")
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(saved),
                        aliases=(f"{saved} cycles", f"{saved} stalls"),
                        unit="cycles")
    return _sa(1, prompt, visual, answer, difficulty=0.75,
               topics=("pipelining", "bypassing", "cpi"))


def _q_pipeline_cpi() -> Question:
    trace = [load("r1"), alu("r2", "r1"), alu("r3", "r2"), alu("r4", "r3")]
    cpi = Pipeline(BypassConfig.full()).run(trace).cpi
    gold = f"{cpi:.2f}"
    scene = pipeline_scene(["IF", "ID", "EX", "MEM", "WB"])
    visual = _visual(VisualType.DIAGRAM, "Five-stage pipeline datapath",
                     scene)
    return _mc(
        2,
        "On the fully bypassed five-stage pipeline shown, the sequence "
        "LW r1; ADD r2,r1; ADD r3,r2; ADD r4,r3 executes with one "
        "load-use bubble. Counting cycles from the first EX to the last "
        "WB, what CPI does the four-instruction sequence achieve?",
        visual,
        [gold, "1.00", "2.50", f"{cpi + 1:.2f}"],
        0,
        difficulty=0.65,
        topics=("pipelining", "cpi"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_load_use() -> Question:
    stalls = load_use_stall_cycles(BypassConfig(ex_to_ex=True,
                                                mem_to_ex=False))
    scene = pipeline_scene(["IF", "ID", "EX", "MEM", "WB"])
    visual = _visual(VisualType.DIAGRAM,
                     "Pipeline without a MEM-to-EX forwarding path", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(stalls),
                        aliases=(f"{stalls} bubbles", f"{stalls} cycles"),
                        unit="cycles")
    return _sa(
        3,
        "The pipeline shown forwards ALU results but has no path from the "
        "memory stage to the ALU; loaded values reach consumers only "
        "through the write-before-read register file. How many stall "
        "cycles separate a load from an immediately dependent ALU "
        "instruction?",
        visual, answer, difficulty=0.6,
        topics=("pipelining", "hazards"))


def _q_cache_index_bits() -> Question:
    geometry = CacheGeometry(32 * 1024, 64, 4)
    scene = cache_table_scene(32, [
        (name, str(hi), str(lo)) for name, hi, lo in geometry.field_layout()])
    visual = _visual(VisualType.TABLE,
                     "32-bit address split into tag, index and offset",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC,
                        text=str(geometry.index_bits),
                        aliases=(f"{geometry.index_bits} bits",),
                        unit="bits")
    return _sa(
        4,
        "A 32 KiB, 4-way set-associative cache with 64-byte blocks decodes "
        "the 32-bit address as shown. How many index bits does it use?",
        visual, answer, difficulty=0.5,
        topics=("caches", "memory encoding"))


def _q_cache_tag_bits() -> Question:
    geometry = CacheGeometry(16 * 1024, 32, 2)
    gold = str(geometry.tag_bits)
    scene = cache_table_scene(32, [
        (name, str(hi), str(lo)) for name, hi, lo in geometry.field_layout()])
    visual = _visual(VisualType.TABLE, "Cache address field breakdown", scene)
    return _mc(
        5,
        "For the 16 KiB two-way cache with 32-byte lines whose address "
        "breakdown is shown (32-bit addresses), how wide is the tag field?",
        visual,
        [gold, "14", "8", "22"],
        0,
        difficulty=0.55,
        topics=("caches", "memory encoding"),
        answer_kind=AnswerKind.NUMERIC,
        unit="bits",
    )


def _q_amat() -> Question:
    value = amat(hit_time=1.0, miss_rate=0.05, miss_penalty=100.0)
    scene = block_diagram_scene(
        [("cpu", "CPU"), ("l1", "L1 1CYC"), ("mem", "MEM 100CYC")],
        [("cpu", "l1"), ("l1", "mem")])
    visual = _visual(VisualType.DIAGRAM,
                     "CPU, L1 cache and memory with annotated latencies",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.0f}",
                        aliases=(f"{value:.1f}", f"{value:.0f} cycles"),
                        unit="cycles")
    return _sa(
        6,
        "The hierarchy shown has a 1-cycle L1 hit time, a 5% miss rate "
        "and a 100-cycle miss penalty. Compute the average memory access "
        "time in cycles.",
        visual, answer, difficulty=0.35,
        topics=("caches", "amat"))


def _q_mesi_state() -> Question:
    system = MesiSystem(2)
    system.run([Access.read(0), Access.write_(1), Access.read(0)])
    final = system.state_of(1)
    assert final is coherence.State.SHARED
    rows = [["STEP", "P0", "P1"]]
    replay = MesiSystem(2)
    for step, states in enumerate(replay.state_trace(
            [Access.read(0), Access.write_(1), Access.read(0)])):
        rows.append([str(step + 1)] + [s.value for s in states])
    scene = table_scene(rows)
    visual = _visual(VisualType.TABLE,
                     "MESI state of both caches after each access", scene)
    return _mc(
        7,
        "Two caches snoop a MESI bus. P0 reads the line, P1 writes it, "
        "then P0 reads it again, as traced in the table. What state does "
        "P1's copy end in?",
        visual,
        ["Shared", "Modified", "Invalid", "Exclusive"],
        0,
        difficulty=0.6,
        topics=("coherence", "mesi"),
        answer_kind=AnswerKind.TEXT,
        aliases=("S", "shared state"),
    )


def _q_mesi_bus() -> Question:
    accesses = [Access.read(0), Access.read(1), Access.write_(0),
                Access.write_(1), Access.read(0)]
    system = MesiSystem(2)
    system.run(accesses)
    count = system.bus_transactions
    scene = block_diagram_scene(
        [("p0", "P0+L1"), ("p1", "P1+L1"), ("bus", "SNOOP BUS"),
         ("mem", "MEMORY")],
        [("p0", "bus"), ("p1", "bus"), ("bus", "mem")])
    visual = _visual(VisualType.DIAGRAM,
                     "Two processors snooping a shared bus", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(count),
                        aliases=(f"{count} transactions",))
    return _sa(
        8,
        "On the two-processor MESI system shown, the access sequence is: "
        "P0 reads, P1 reads, P0 writes, P1 writes, P0 reads (same line). "
        "How many bus transactions (BusRd, BusRdX or BusUpgr) occur?",
        visual, answer, difficulty=0.7,
        topics=("coherence", "mesi"))


def _q_predictor_accuracy() -> Question:
    outcomes = branch_mod.loop_branch_outcomes(iterations=5, trips=2)
    predictor = branch_mod.TwoBitPredictor(initial=1)
    correct, _ = branch_mod.run_predictor(predictor, outcomes)
    percent = 100.0 * correct / len(outcomes)
    gold = f"{percent:.0f}%"
    scene = block_diagram_scene(
        [("pc", "PC"), ("bht", "2-BIT BHT"), ("pred", "T/NT")],
        [("pc", "bht"), ("bht", "pred")])
    visual = _visual(VisualType.DIAGRAM,
                     "Two-bit saturating-counter branch predictor", scene)
    return _mc(
        9,
        "A loop branch runs 5 iterations (taken 4 times, then not taken) "
        "for 2 consecutive loop executions. The 2-bit counter shown "
        "starts weakly not-taken (01). What prediction accuracy results "
        "over the 10 branches?",
        visual,
        [gold, "90%", "50%", "80%"],
        0,
        difficulty=0.7,
        topics=("branch prediction",),
        answer_kind=AnswerKind.NUMERIC,
        aliases=(f"{correct}/10",),
    )


def _q_mispredict_cpi() -> Question:
    value = branch_mod.mispredict_penalty_cpi(1.0, 0.2, 0.1, 15)
    scene = block_diagram_scene(
        [("fe", "FETCH"), ("pred", "PRED"), ("ex", "EXEC 15CYC FLUSH")],
        [("fe", "pred"), ("pred", "ex"), ("ex", "fe")])
    visual = _visual(VisualType.DIAGRAM,
                     "Front end with a 15-cycle mispredict flush loop",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.1f}",
                        aliases=(f"{value:.2f}",))
    return _sa(
        10,
        "A machine with base CPI 1.0 runs code where 20% of instructions "
        "are branches; 10% of branches mispredict, each costing the "
        "15-cycle flush shown. What is the effective CPI?",
        visual, answer, difficulty=0.55,
        topics=("branch prediction", "cpi"))


def _q_page_table() -> Question:
    geometry = vm.VmGeometry(virtual_bits=32, physical_bits=30,
                             page_bytes=4096, levels=1)
    size_mb = vm.page_table_size_bytes(geometry, metadata_bits=12) / 2 ** 20
    scene = table_scene([
        ["PARAM", "VALUE"],
        ["VADDR", "32 BITS"],
        ["PADDR", "30 BITS"],
        ["PAGE", "4 KIB"],
        ["PTE", "4 BYTES"],
    ])
    visual = _visual(VisualType.TABLE, "Virtual-memory parameters", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{size_mb:.0f} MiB",
                        aliases=(f"{size_mb:.0f} MB", "4194304 bytes"),
                        unit="MiB")
    return _sa(
        11,
        "Using the parameters tabulated (32-bit virtual addresses, 4 KiB "
        "pages, 4-byte PTEs), how large is a flat single-level page table "
        "covering the whole address space?",
        visual, answer, difficulty=0.55,
        topics=("virtual memory",))


def _q_tlb_eat() -> Question:
    value = vm.effective_access_time(tlb_hit_rate=0.98, tlb_time=1.0,
                                     memory_time=100.0, levels=2)
    scene = block_diagram_scene(
        [("cpu", "CPU"), ("tlb", "TLB 1CYC"), ("walk", "2-LVL WALK"),
         ("mem", "MEM 100CYC")],
        [("cpu", "tlb"), ("tlb", "walk"), ("walk", "mem")])
    visual = _visual(VisualType.DIAGRAM,
                     "TLB backed by a two-level page walk", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.0f}",
                        aliases=(f"{value:.1f} cycles", f"{value:.1f}"),
                        unit="cycles")
    return _sa(
        12,
        "The MMU shown hits its TLB 98% of the time (1 cycle); a miss "
        "walks a two-level page table at 100 cycles per level before the "
        "100-cycle data access. What is the effective memory access time, "
        "rounded to the nearest cycle?",
        visual, answer, difficulty=0.65,
        topics=("virtual memory", "tlb"))


def _q_mesh_diameter() -> Question:
    mesh_d = topology.mesh_diameter(4, 4)
    torus_d = topology.torus_diameter(4, 4)
    assert (mesh_d, torus_d) == (6, 4)
    mesh_graph = topology.mesh2d(3, 3)
    nodes = [f"{r}{c}" for r in range(3) for c in range(3)]
    edges = [(f"{a[0]}{a[1]}", f"{b[0]}{b[1]}")
             for a, b in mesh_graph.edges()]
    scene = graph_scene(nodes, edges, layout="grid", node_radius=13)
    torus_scene = graph_scene(
        nodes,
        edges + [(f"{r}0", f"{r}2") for r in range(3)]
        + [(f"0{c}", f"2{c}") for c in range(3)],
        layout="grid", node_radius=13)
    extra = _visual(VisualType.DIAGRAM,
                    "The same mesh with wrap-around torus links",
                    torus_scene)
    visual = _visual(VisualType.DIAGRAM, "A 2D mesh network-on-chip", scene)
    return _mc(
        13,
        "Scaling the mesh shown to 4x4 (and the torus variant in the "
        "second figure likewise), what are the network diameters of the "
        "mesh and torus respectively?",
        visual,
        [f"{mesh_d} and {torus_d}", "6 and 6", "8 and 4", "4 and 2"],
        0,
        difficulty=0.6,
        topics=("noc", "topology"),
        answer_kind=AnswerKind.TEXT,
        aliases=("mesh 6, torus 4",),
        extra_visuals=[extra],
    )


def _q_hypercube_bisection() -> Question:
    graph = topology.hypercube(4)
    width = topology.bisection_width(graph)
    assert width == 8
    nodes = [format(i, "04b") for i in range(16)]
    edges = [("".join(str(b) for b in u), "".join(str(b) for b in v))
             for u, v in graph.edges()]
    scene = graph_scene([n for n in nodes], edges, layout="circle",
                        node_radius=12)
    visual = _visual(VisualType.DIAGRAM, "A 4-dimensional hypercube", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(width),
                        aliases=(f"{width} links",))
    return _sa(
        14,
        "What is the bisection width (minimum links cut when splitting "
        "the nodes into two equal halves) of the 16-node hypercube shown?",
        visual, answer, difficulty=0.7,
        topics=("noc", "topology"))


def _q_hazards() -> Question:
    trace = [load("r1"), alu("r2", "r1", "r3"), alu("r3", "r4"),
             alu("r2", "r5")]
    counts = ooo.hazard_counts(trace)
    removed = counts["WAR"] + counts["WAW"]
    assert removed == 2 and counts["RAW"] == 1
    scene = equation_scene([
        "I1: LW R1",
        "I2: ADD R2 = R1 + R3",
        "I3: SUB R3 = R4",
        "I4: OR R2 = R5",
    ])
    visual = _visual(VisualType.FIGURE,
                     "Four-instruction code fragment with register reuse",
                     scene)
    return _mc(
        15,
        "Register renaming is applied to the code fragment shown. How "
        "many false dependences (WAR plus WAW hazards) does renaming "
        "eliminate?",
        visual,
        [str(removed), "1", "3", "4"],
        0,
        difficulty=0.7,
        topics=("out-of-order", "hazards"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_chimes() -> Question:
    ops = [VectorOp("LV", "loadstore", "v1"),
           VectorOp("MULVS", "multiply", "v2", ("v1",)),
           VectorOp("LV2", "loadstore", "v3"),
           VectorOp("ADDVV", "add", "v4", ("v2", "v3")),
           VectorOp("SV", "loadstore", "v5", ("v4",))]
    n_chimes = vector.chimes(ops, allow_chaining=True)
    assert n_chimes == 3  # the textbook DAXPY convoy count
    scene = (table_scene([["OP", "UNIT"]] + [[op.name, op.unit.upper()]
                                             for op in ops])
             + translate(block_diagram_scene(
                 [("ld", "LOAD"), ("mul", "MUL"), ("add", "ADD"),
                  ("st", "STORE")], []), 240, 40))
    visual = _visual(VisualType.MIXED,
                     "Vector code listing and functional units", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(n_chimes),
                        aliases=(f"{n_chimes} chimes", f"{n_chimes} convoys"))
    return _sa(
        16,
        "The vector sequence tabulated (DAXPY-style) runs on a machine "
        "with one load/store unit, one multiplier and one adder, with "
        "chaining. Into how many convoys (chimes) does it partition?",
        visual, answer, difficulty=0.85,
        topics=("vector", "chimes"))


def _q_strip_mine() -> Question:
    iterations = vector.strip_mine_iterations(1000, 64)
    scene = (equation_scene(["FOR I = 0 TO 999", "  C[I]=A[I]+B[I]"])
             + translate(block_diagram_scene(
                 [("vl", "MVL=64"), ("loop", "STRIP LOOP")],
                 [("vl", "loop")]), 220, 60))
    visual = _visual(VisualType.MIXED,
                     "A 1000-element loop strip-mined to MVL 64", scene)
    return _mc(
        17,
        "The loop shown processes 1000 elements on a vector machine with "
        "maximum vector length 64. How many strip-mined vector "
        "iterations are required?",
        visual,
        [str(iterations), "15", "64", "17"],
        0,
        difficulty=0.4,
        topics=("vector", "strip mining"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_amdahl() -> Question:
    value = vector.amdahl_speedup(0.8, 16.0)
    scene = (equation_scene(["S = 1 / ((1-F) + F/K)"])
             + translate(block_diagram_scene(
                 [("ser", "20% SERIAL"), ("par", "80% X16")],
                 [("ser", "par")]), 0, 120))
    visual = _visual(VisualType.MIXED,
                     "Amdahl's-law formula with the workload split", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.0f}",
                        aliases=(f"{value:.1f}", f"{value:.2f}x"))
    return _sa(
        18,
        "Using the relation shown, what overall speedup results when 80% "
        "of a workload is accelerated 16x and the rest is unchanged? "
        "Round to the nearest integer.",
        visual, answer, difficulty=0.5,
        topics=("amdahl", "parallelism"))


def _q_mlp_macs() -> Question:
    macs = 4 * 8 + 8 * 2
    layers = [("i", "IN 4"), ("h", "HID 8"), ("o", "OUT 2")]
    scene = block_diagram_scene(layers, [("i", "h"), ("h", "o")])
    visual = _visual(VisualType.NEURAL_NETS,
                     "A two-layer perceptron: 4 inputs, 8 hidden, 2 outputs",
                     scene)
    return _mc(
        19,
        "The fully connected network shown has 4 inputs, one hidden "
        "layer of 8 neurons and 2 outputs. Ignoring biases, how many "
        "multiply-accumulate operations does one inference require?",
        visual,
        [str(macs), "64", "14", "96"],
        0,
        difficulty=0.45,
        topics=("accelerators", "neural networks"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_roofline() -> Question:
    attainable = vector.roofline_gflops(peak_gflops=100.0,
                                        bandwidth_gbs=50.0, intensity=0.5)
    scene = block_diagram_scene(
        [("dram", "DRAM 50GB/S"), ("pe", "PE 100GF"), ("nn", "CONV LAYER")],
        [("dram", "pe"), ("pe", "nn")])
    visual = _visual(VisualType.NEURAL_NETS,
                     "Accelerator roofline parameters for a conv layer",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{attainable:.0f}",
                        aliases=(f"{attainable:.0f} GFLOP/s",
                                 f"{attainable:.1f}"),
                        unit="GFLOP/s")
    return _sa(
        20,
        "An accelerator peaks at 100 GFLOP/s with 50 GB/s of memory "
        "bandwidth, as sketched. A layer with arithmetic intensity 0.5 "
        "FLOP/byte is memory bound. What performance (GFLOP/s) does the "
        "roofline model predict?",
        visual, answer, difficulty=0.6,
        topics=("accelerators", "roofline"))


_BUILDERS = [
    _q_bypass_cpi, _q_pipeline_cpi, _q_load_use, _q_cache_index_bits,
    _q_cache_tag_bits, _q_amat, _q_mesi_state, _q_mesi_bus,
    _q_predictor_accuracy, _q_mispredict_cpi, _q_page_table, _q_tlb_eat,
    _q_mesh_diameter, _q_hypercube_bisection, _q_hazards, _q_chimes,
    _q_strip_mine, _q_amdahl, _q_mlp_macs, _q_roofline,
]


#: Worked solutions, interpolating the computed gold as ``{gold}``.
_EXPLANATIONS = {
    "arc-01": "Each of the two load-use pairs stalls 2 cycles without the "
              "bypass (value via the register file) but only 1 with it "
              "(load data forwarded from MEM), saving 1 cycle per pair: "
              "{gold} cycles total.",
    "arc-02": "The load-use pair inserts one bubble, so 4 instructions "
              "take 7 cycles from first EX to last WB: CPI = {gold}.",
    "arc-03": "Load data arrives at WB (write-before-read), three stages "
              "after issue; the dependent ALU op waits {gold} cycles.",
    "arc-04": "32 KiB / (64 B x 4 ways) = 128 sets, so {gold} index "
              "bits.",
    "arc-05": "Offset 5 bits (32 B), index 8 bits (256 sets), leaving "
              "32 - 13 = {gold} tag bits.",
    "arc-06": "AMAT = 1 + 0.05 x 100 = {gold} cycles.",
    "arc-07": "P1's write made it Modified; P0's re-read forces a flush "
              "and both copies end Shared.",
    "arc-08": "BusRd, BusRd, BusUpgr (S->M), BusRdX (I->M), BusRd: "
              "{gold} transactions.",
    "arc-09": "Starting at 01, the counter mispredicts the first taken, "
              "each loop exit, and the first re-entry: 7 of 10 correct "
              "= {gold}.",
    "arc-10": "CPI = 1.0 + 0.2 x 0.1 x 15 = {gold}.",
    "arc-11": "2^20 pages x 4-byte PTEs = {gold}.",
    "arc-12": "EAT = 0.98 x 101 + 0.02 x (1 + 200 + 100) = {gold} "
              "cycles.",
    "arc-13": "A k x k mesh spans 2(k-1) hops corner to corner; wraparound "
              "halves each axis: {gold}.",
    "arc-14": "Cutting a d-cube in half severs the 2^(d-1) dimension-d "
              "links: {gold} for d = 4.",
    "arc-15": "I3 writes r3 that I2 reads (WAR) and I4 rewrites r2 (WAW); "
              "renaming removes both, leaving only the true r1 "
              "dependence.",
    "arc-16": "The single load/store unit forces three convoys: "
              "{LV, MULVS}, {LV2, ADDVV}, {SV} — {gold} chimes.",
    "arc-17": "ceil(1000/64) = {gold} strip-mined iterations.",
    "arc-18": "Amdahl: 1/((1-0.8) + 0.8/16) = 1/0.25 = {gold}.",
    "arc-19": "4 x 8 + 8 x 2 = {gold} multiply-accumulates per "
              "inference.",
    "arc-20": "At 0.5 FLOP/byte the bandwidth roof binds: 50 GB/s x 0.5 "
              "= {gold} GFLOP/s.",
}


def generate_architecture_questions() -> List[Question]:
    """All 20 Architecture questions, in stable order."""
    questions = [builder() for builder in _BUILDERS]
    if len(questions) != 20:
        raise AssertionError(
            f"expected 20 architecture questions, got {len(questions)}")
    questions = [
        dataclasses.replace(
            q, explanation=_EXPLANATIONS[q.qid].replace("{gold}",
                                                        q.gold_text))
        for q in questions
    ]
    return questions


#: Version of this family's question generators.  Folded into the
#: content-addressed build-cache fingerprint (see
#: :func:`repro.core.databuild.generator_fingerprint`): bump whenever a
#: builder's output changes so stale cached shards are invalidated.
GENERATOR_VERSION = "arch-1"


def generate_architecture_questions_scaled(
    seed: int,
    shard_index: int,
    shard_size: int,
    total: Optional[int] = None,
) -> List[Question]:
    """Architecture members of one shard of a seeded scaled build.

    Delegates to :func:`repro.core.databuild.family_scaled_questions`:
    shard ``shard_index`` of the interleaved global sequence is built
    (through the shard build cache) and this family's members are
    returned in global order.  ``total`` clips the final shard of an
    ``n``-question build.
    """
    from repro.core.databuild import family_scaled_questions
    from repro.core.question import Category

    return family_scaled_questions(
        Category.ARCHITECTURE, seed, shard_index, shard_size, total=total)
