"""Branch predictors: static, 1-bit, 2-bit saturating, and gshare.

Predictors consume a sequence of branch outcomes (optionally with PCs) and
report accuracy — the quantity exam questions about loop branches and
predictor warm-up ask for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class StaticPredictor:
    """Always predicts one direction."""

    def __init__(self, predict_taken: bool = True):
        self.predict_taken = predict_taken

    def predict(self, pc: int = 0) -> bool:
        return self.predict_taken

    def update(self, pc: int, taken: bool) -> None:  # noqa: ARG002
        return None


class OneBitPredictor:
    """Last-outcome predictor, per PC entry."""

    def __init__(self, initial_taken: bool = False):
        self._table: Dict[int, bool] = {}
        self._initial = initial_taken

    def predict(self, pc: int = 0) -> bool:
        return self._table.get(pc, self._initial)

    def update(self, pc: int, taken: bool) -> None:
        self._table[pc] = taken


class TwoBitPredictor:
    """2-bit saturating counter per PC entry.

    Counter values 0-3; predict taken for 2 and 3.  Starts at ``initial``
    (default 1 = weakly not-taken, the usual exam convention).
    """

    def __init__(self, initial: int = 1):
        if not 0 <= initial <= 3:
            raise ValueError("counter must be in 0..3")
        self._table: Dict[int, int] = {}
        self._initial = initial

    def counter(self, pc: int = 0) -> int:
        return self._table.get(pc, self._initial)

    def predict(self, pc: int = 0) -> bool:
        return self.counter(pc) >= 2

    def update(self, pc: int, taken: bool) -> None:
        value = self.counter(pc)
        value = min(3, value + 1) if taken else max(0, value - 1)
        self._table[pc] = value


class GsharePredictor:
    """Global-history predictor: PC xor GHR indexes a 2-bit counter table."""

    def __init__(self, history_bits: int = 4, initial: int = 1):
        if history_bits < 1:
            raise ValueError("need at least one history bit")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._ghr = 0
        self._table: Dict[int, int] = {}
        self._initial = initial

    def _index(self, pc: int) -> int:
        return (pc ^ self._ghr) & self._mask

    def predict(self, pc: int = 0) -> bool:
        return self._table.get(self._index(pc), self._initial) >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        value = self._table.get(index, self._initial)
        value = min(3, value + 1) if taken else max(0, value - 1)
        self._table[index] = value
        self._ghr = ((self._ghr << 1) | int(taken)) & self._mask


def run_predictor(predictor, outcomes: Sequence[bool],
                  pc: int = 0) -> Tuple[int, List[bool]]:
    """Feed outcomes for a single branch; returns (correct count, per-step)."""
    correct_flags: List[bool] = []
    for taken in outcomes:
        prediction = predictor.predict(pc)
        correct_flags.append(prediction == taken)
        predictor.update(pc, taken)
    return sum(correct_flags), correct_flags


def loop_branch_outcomes(iterations: int, trips: int = 1) -> List[bool]:
    """Outcome stream of a backward loop branch: taken (n-1) times then
    not-taken, repeated ``trips`` times."""
    if iterations < 1 or trips < 1:
        raise ValueError("iterations and trips must be >= 1")
    single = [True] * (iterations - 1) + [False]
    return single * trips


def accuracy(predictor, outcomes: Sequence[bool], pc: int = 0) -> float:
    """Prediction accuracy of ``predictor`` over an outcome stream."""
    correct, _ = run_predictor(predictor, outcomes, pc)
    return correct / len(outcomes) if outcomes else 0.0


def mispredict_penalty_cpi(base_cpi: float, branch_fraction: float,
                           mispredict_rate: float, penalty: int) -> float:
    """CPI including branch mispredict bubbles."""
    if not 0 <= branch_fraction <= 1 or not 0 <= mispredict_rate <= 1:
        raise ValueError("fractions must be probabilities")
    return base_cpi + branch_fraction * mispredict_rate * penalty
