"""Architecture substrate: pipeline timing, caches, coherence, branch
prediction, virtual memory, NoC topologies, vector machines, out-of-order
execution, and the 20 Architecture ChipVQA questions built on them."""

from repro.arch import (
    branch,
    cache,
    coherence,
    ooo,
    pipeline,
    topology,
    vector,
    vm,
)
from repro.arch.questions import (
    generate_architecture_questions,
    generate_architecture_questions_scaled,
)

__all__ = [
    "branch",
    "cache",
    "coherence",
    "ooo",
    "pipeline",
    "topology",
    "vector",
    "vm",
    "generate_architecture_questions",
    "generate_architecture_questions_scaled",
]
