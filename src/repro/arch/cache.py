"""Set-associative cache model: address decomposition and hit/miss simulation.

Provides the address-breakdown arithmetic (tag / index / offset widths) that
exam questions drill, plus a trace-driven simulator with LRU/FIFO
replacement and AMAT (average memory access time) arithmetic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Size parameters of a set-associative cache."""

    capacity_bytes: int
    block_bytes: int
    associativity: int
    address_bits: int = 32

    def __post_init__(self) -> None:
        _log2_exact(self.capacity_bytes, "capacity")
        _log2_exact(self.block_bytes, "block size")
        _log2_exact(self.associativity, "associativity")
        if self.block_bytes > self.capacity_bytes:
            raise ValueError("block larger than cache")
        if self.associativity * self.block_bytes > self.capacity_bytes:
            raise ValueError("associativity too high for capacity")

    @property
    def num_blocks(self) -> int:
        return self.capacity_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity

    @property
    def offset_bits(self) -> int:
        return _log2_exact(self.block_bytes, "block size")

    @property
    def index_bits(self) -> int:
        return _log2_exact(self.num_sets, "set count")

    @property
    def tag_bits(self) -> int:
        return self.address_bits - self.index_bits - self.offset_bits

    def decompose(self, address: int) -> Tuple[int, int, int]:
        """(tag, index, offset) of a byte address."""
        offset = address & (self.block_bytes - 1)
        index = (address >> self.offset_bits) & (self.num_sets - 1)
        tag = address >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def field_layout(self) -> List[Tuple[str, int, int]]:
        """(name, hi bit, lo bit) triples for figure rendering."""
        hi = self.address_bits - 1
        layout = [("TAG", hi, hi - self.tag_bits + 1)]
        hi -= self.tag_bits
        if self.index_bits:
            layout.append(("INDEX", hi, hi - self.index_bits + 1))
            hi -= self.index_bits
        layout.append(("OFFSET", hi, 0))
        return layout


class Cache:
    """Trace-driven set-associative cache with LRU or FIFO replacement."""

    def __init__(self, geometry: CacheGeometry, policy: str = "LRU"):
        policy = policy.upper()
        if policy not in ("LRU", "FIFO"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.geometry = geometry
        self.policy = policy
        # each set: OrderedDict tag -> None, least-recent first
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access a byte address; returns ``True`` on hit."""
        tag, index, _ = self.geometry.decompose(address)
        ways = self._sets[index]
        if tag in ways:
            self.hits += 1
            if self.policy == "LRU":
                ways.move_to_end(tag)
            return True
        self.misses += 1
        if len(ways) >= self.geometry.associativity:
            ways.popitem(last=False)  # evict least-recent / oldest
        ways[tag] = None
        return False

    def run(self, addresses: Sequence[int]) -> List[bool]:
        return [self.access(a) for a in addresses]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            raise ValueError("no accesses yet")
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate


def amat(hit_time: float, miss_rate: float, miss_penalty: float) -> float:
    """Average memory access time = hit time + miss rate * penalty."""
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError("miss rate must be a probability")
    if hit_time < 0 or miss_penalty < 0:
        raise ValueError("times must be non-negative")
    return hit_time + miss_rate * miss_penalty


def amat_two_level(l1_hit: float, l1_miss_rate: float, l2_hit: float,
                   l2_miss_rate: float, memory_time: float) -> float:
    """AMAT of a two-level hierarchy (local miss rates)."""
    l2_amat = amat(l2_hit, l2_miss_rate, memory_time)
    return amat(l1_hit, l1_miss_rate, l2_amat)


def classify_misses(geometry: CacheGeometry,
                    addresses: Sequence[int]) -> Dict[str, int]:
    """Three-C classification: compulsory / capacity / conflict.

    Compulsory = first touch of the block.  Conflict = misses in the real
    cache that a fully associative LRU cache of the same capacity would
    have hit.  The remainder are capacity misses.
    """
    real = Cache(geometry)
    fully = Cache(CacheGeometry(
        geometry.capacity_bytes, geometry.block_bytes,
        geometry.num_blocks, geometry.address_bits))
    seen: set = set()
    counts = {"compulsory": 0, "capacity": 0, "conflict": 0}
    for address in addresses:
        block = address // geometry.block_bytes
        hit = real.access(address)
        fa_hit = fully.access(address)
        if hit:
            continue
        if block not in seen:
            counts["compulsory"] += 1
        elif fa_hit:
            counts["conflict"] += 1
        else:
            counts["capacity"] += 1
        seen.add(block)
    return counts
