"""Simulated LLM backbone: text ability plus answer surface generation.

The backbone carries the text-processing capability that — per the paper's
LLaVA case study — dominates VQA performance, and it is responsible for
*how* answers are phrased: correct answers come out as paraphrases of the
gold (letter answers, re-worded phrases, unit changes, re-ordered boolean
terms), incorrect answers as plausible distractors.  That phrasing matters:
it is what exercises the judge pipeline end to end.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from repro.core.question import AnswerKind, Question
from repro.judge.normalize import numbers_in


def _stable_choice(options: List[str], *keys: str) -> str:
    """Deterministically pick one option from string keys (process-stable)."""
    digest = hashlib.sha256("|".join(keys).encode("utf-8")).digest()
    return options[digest[0] % len(options)]


@dataclass(frozen=True)
class LlmBackbone:
    """A language model with a scalar text-capability score."""

    name: str
    params_billion: float
    text_ability: float  # in (0, 1]; calibrated against public LLM evals

    def __post_init__(self) -> None:
        if self.params_billion <= 0:
            raise ValueError("parameter count must be positive")
        if not 0.0 < self.text_ability <= 1.0:
            raise ValueError("text ability must be in (0, 1]")

    # -- answer phrasing ------------------------------------------------------

    def phrase_correct(self, question: Question, seed: str = "") -> str:
        """A correct response, paraphrased the way a model would write it."""
        if question.is_multiple_choice:
            letter = question.gold_letter
            text = question.gold_text
            return _stable_choice(
                [letter,
                 f"{letter})",
                 f"({letter.lower()})",
                 f"The answer is {letter}.",
                 f"{letter}) {text}"],
                self.name, question.qid, "correct", seed)
        gold = question.answer.text
        variants = [gold, f"The answer is {gold}.", f"{gold}."]
        if question.answer.kind is AnswerKind.NUMERIC and question.answer.unit:
            numbers = numbers_in(gold)
            if numbers:
                value = numbers[0]
                variants.append(f"{value:g} {question.answer.unit}")
                variants.append(f"approximately {gold}")
        if question.answer.aliases:
            variants.extend(question.answer.aliases[:2])
        return _stable_choice(variants, self.name, question.qid,
                              "correct", seed)

    def phrase_incorrect(self, question: Question, seed: str = "") -> str:
        """A plausible wrong response."""
        if question.is_multiple_choice:
            wrong = [
                "ABCD"[i] for i in range(4) if i != question.correct_choice
            ]
            letter = _stable_choice(wrong, self.name, question.qid,
                                    "wrong", seed)
            return _stable_choice(
                [letter, f"{letter})", f"The answer is {letter}."],
                self.name, question.qid, "wrong-phrase", seed)
        gold = question.answer.text
        numbers = numbers_in(gold)
        if numbers and question.answer.kind is AnswerKind.NUMERIC:
            value = numbers[0]
            factor = _stable_choice(["2", "0.5", "10", "0.1"],
                                    self.name, question.qid, "wrong", seed)
            wrong_value = value * float(factor)
            unit = question.answer.unit
            return f"{wrong_value:g} {unit}".strip()
        return _stable_choice(
            ["I am not certain from the figure.",
             "It cannot be determined from the information given.",
             "The figure does not show this clearly."],
            self.name, question.qid, "wrong", seed)

    def refuses(self, question: Question) -> bool:
        """Very weak models occasionally emit empty/non-answers."""
        if self.text_ability >= 0.3:
            return False
        digest = hashlib.sha256(
            f"{self.name}|{question.qid}|refuse".encode()).digest()
        return digest[0] < 16  # ~6% of questions
