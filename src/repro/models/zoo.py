"""The model zoo: the twelve VLMs of Table II, plus the agent's components.

Each entry couples the architectural metadata of the real model (backbone,
parameter count, encoder input resolution, system-prompt support — from the
models' public cards) with the per-discipline calibration rates measured in
Table II of the paper.  Rates are (Digital, Analog, Architecture,
Manufacture, Physical) in that order, for the with-choice and no-choice
settings respectively.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.question import Category
from repro.models.encoder import VisualEncoder
from repro.models.llm import LlmBackbone
from repro.models.projector import Projector
from repro.models.providers import LocalProvider, ModelProvider, \
    default_registry
from repro.models.vlm import CalibrationTable, SimulatedVLM

_CATS = (Category.DIGITAL, Category.ANALOG, Category.ARCHITECTURE,
         Category.MANUFACTURING, Category.PHYSICAL)


def _rates(values: Tuple[float, ...]) -> Dict[Category, float]:
    if len(values) != 5:
        raise ValueError("need exactly five per-category rates")
    return dict(zip(_CATS, values))


#: name -> (backbone name, params B, text ability, encoder px, sysprompt,
#:          with-choice rates, no-choice rates)   [Table II]
_ZOO_SPECS = {
    "llava-7b": (
        "vicuna-7b", 7.0, 0.42, 336, True,
        (0.37, 0.20, 0.20, 0.05, 0.22), (0.03, 0.00, 0.10, 0.05, 0.09)),
    "llava-13b": (
        "vicuna-13b", 13.0, 0.48, 336, True,
        (0.23, 0.16, 0.25, 0.10, 0.17), (0.00, 0.02, 0.20, 0.15, 0.04)),
    "llava-34b": (
        "yi-34b", 34.0, 0.62, 336, True,
        (0.26, 0.32, 0.20, 0.15, 0.22), (0.06, 0.05, 0.10, 0.15, 0.17)),
    "llava-llama-3": (
        "llama-3-8b", 8.0, 0.58, 336, True,
        (0.37, 0.18, 0.30, 0.20, 0.22), (0.03, 0.00, 0.15, 0.05, 0.13)),
    "neva-22b": (
        "nemo-22b", 22.0, 0.52, 336, True,
        (0.37, 0.23, 0.15, 0.05, 0.22), (0.03, 0.07, 0.10, 0.20, 0.04)),
    "fuyu-8b": (
        "fuyu-8b", 8.0, 0.38, 300, True,
        (0.11, 0.30, 0.10, 0.05, 0.13), (0.00, 0.00, 0.05, 0.05, 0.13)),
    "paligemma": (
        "gemma-2b", 2.9, 0.30, 224, False,
        (0.03, 0.07, 0.15, 0.20, 0.04), (0.03, 0.00, 0.05, 0.05, 0.04)),
    "kosmos-2": (
        "kosmos-1.6b", 1.6, 0.22, 224, False,
        (0.06, 0.00, 0.05, 0.05, 0.00), (0.03, 0.02, 0.00, 0.05, 0.09)),
    "phi3-vision": (
        "phi-3-mini", 4.2, 0.55, 336, True,
        (0.29, 0.18, 0.10, 0.10, 0.30), (0.09, 0.05, 0.00, 0.15, 0.17)),
    "vila-yi-34b": (
        "yi-34b", 34.0, 0.64, 336, True,
        (0.43, 0.36, 0.30, 0.05, 0.17), (0.06, 0.02, 0.25, 0.00, 0.22)),
    "llama-3.2-90b": (
        "llama-3.2-90b", 90.0, 0.74, 560, True,
        (0.37, 0.25, 0.15, 0.35, 0.48), (0.06, 0.09, 0.10, 0.35, 0.39)),
    "gpt-4o": (
        "gpt-4o", 200.0, 0.85, 768, True,
        (0.49, 0.51, 0.30, 0.20, 0.61), (0.17, 0.09, 0.15, 0.30, 0.48)),
}

#: Display order and labels of Table II rows.
TABLE2_ROW_ORDER = [
    ("llava-7b", "LLaVA-7b"),
    ("llava-13b", "LLaVA-13b"),
    ("llava-34b", "LLaVA-34b"),
    ("llava-llama-3", "LLaVA-LLaMa-3"),
    ("neva-22b", "NeVA-22b"),
    ("fuyu-8b", "fuyu-8b"),
    ("paligemma", "paligemma"),
    ("kosmos-2", "kosmos-2"),
    ("phi3-vision", "phi3-vision"),
    ("vila-yi-34b", "VILA-Yi-34B"),
    ("llama-3.2-90b", "LLaMA-3.2-90B"),
    ("gpt-4o", "GPT4o"),
]

#: The LLaVA backbone case study of Section IV-A.
LLAVA_BACKBONE_STUDY = [
    ("llava-7b", "Mistral/Vicuna-7b"),
    ("llava-13b", "Vicuna-13b"),
    ("llava-llama-3", "LLaMa-3-8b"),
    ("llava-34b", "Yi-34b"),
]


def model_names() -> List[str]:
    """Zoo model names in Table II display order."""
    return [name for name, _ in TABLE2_ROW_ORDER]


def build_vlm(name: str) -> SimulatedVLM:
    """Instantiate one calibrated raw :class:`SimulatedVLM` by zoo name."""
    try:
        spec = _ZOO_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(_ZOO_SPECS)}") from None
    (backbone_name, params_b, ability, encoder_px, sysprompt,
     with_choice, no_choice) = spec
    encoder = VisualEncoder(name=f"{name}-encoder",
                            input_resolution=encoder_px,
                            quality=min(1.0, 0.6 + ability / 2))
    projector = Projector(name=f"{name}-proj",
                          alignment=min(1.0, 0.7 + ability / 3))
    backbone = LlmBackbone(name=backbone_name, params_billion=params_b,
                           text_ability=ability)
    calibration = CalibrationTable(with_choice=_rates(with_choice),
                                   no_choice=_rates(no_choice))
    return SimulatedVLM(name=name, encoder=encoder, projector=projector,
                        backbone=backbone, calibration=calibration,
                        supports_system_prompt=sysprompt)


def build_model(name: str) -> LocalProvider:
    """One calibrated zoo model as a registry-backed provider.

    The returned :class:`~repro.models.providers.LocalProvider` serves
    the simulated VLM byte-identically to the raw object while
    satisfying the :class:`~repro.models.providers.ModelProvider`
    protocol every evaluation layer speaks; it proxies attribute access
    to the wrapped :class:`SimulatedVLM`, so model-level analysis code
    (``plan``, ``encoder``, ``calibration``, …) keeps working.  Use
    :func:`build_vlm` when the raw simulated model is needed.
    """
    return LocalProvider(build_vlm(name))


def build_zoo() -> List[LocalProvider]:
    """All twelve Table II models (as providers) in display order."""
    return [build_model(name) for name, _ in TABLE2_ROW_ORDER]


def _build_agent_provider() -> ModelProvider:
    from repro.agent.designer import ChipDesignerAgent

    return LocalProvider(ChipDesignerAgent())


def _register_zoo() -> None:
    """Expose the zoo (and the agent system) through the provider
    registry, so work units and the CLI can reference models by name."""
    for zoo_name in _ZOO_SPECS:
        if zoo_name not in default_registry:
            default_registry.register(
                zoo_name,
                lambda n=zoo_name: build_model(n))
    agent_name = "agent-gpt4turbo+gpt4o"
    if agent_name not in default_registry:
        default_registry.register(agent_name, _build_agent_provider)


_register_zoo()


def paper_rates(name: str, setting: str) -> Dict[Category, float]:
    """The Table II calibration rates for a model (for tests/benches)."""
    spec = _ZOO_SPECS[name]
    values = spec[5] if setting == "with_choice" else spec[6]
    return _rates(values)
