"""Quota-IRT calibration: deterministic outcome realisation per category.

Real model weights are unobtainable offline, so the zero-shot numbers of
Table II are reproduced by *calibrated replay*: each simulated model
carries the per-discipline pass rates the paper measured, and outcomes are
realised deterministically so that the aggregate matches the calibration
while *which* questions are answered correctly still depends on real
question difficulty and real image legibility:

1. every (model, question) pair gets an **aptitude score**
   ``sigmoid(ability - difficulty) * perception + jitter``;
2. within each category the model answers correctly exactly the
   ``round(rate * n)`` questions of highest aptitude (the *quota*);
3. degraded perception (the resolution study) scales the quota down via
   :func:`repro.models.encoder.rate_scaling` and re-ranks by the degraded
   aptitude, so hard-to-see figures flip first.

See DESIGN.md section 4 for the rationale.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.core.question import Category, Question


def sigmoid(x: float) -> float:
    """The logistic function."""
    return 1.0 / (1.0 + math.exp(-x))


def jitter(model_name: str, qid: str, scale: float = 0.05) -> float:
    """Deterministic per-(model, question) noise in [0, scale)."""
    digest = hashlib.sha256(f"{model_name}|{qid}".encode("utf-8")).digest()
    return scale * int.from_bytes(digest[:4], "big") / 2 ** 32


def aptitude(model_name: str, ability: float, question: Question,
             perception: float, discrimination: float = 4.0) -> float:
    """Latent probability-like score that this model solves this question."""
    if not 0.0 <= perception <= 1.0:
        raise ValueError("perception must be in [0, 1]")
    base = sigmoid(discrimination * (ability - question.difficulty))
    return base * perception + jitter(model_name, question.qid)


def quota(rate: float, n: int) -> int:
    """Number of correct answers realising ``rate`` over ``n`` questions."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be a probability")
    if n < 0:
        raise ValueError("n must be non-negative")
    return min(n, int(round(rate * n)))


@dataclass(frozen=True)
class OutcomePlan:
    """Planned correctness per question id."""

    correct_qids: frozenset

    def is_correct(self, qid: str) -> bool:
        return qid in self.correct_qids


def plan_outcomes(
    model_name: str,
    abilities: Mapping[Category, float],
    rates: Mapping[Category, float],
    questions: Sequence[Question],
    perceptions: Mapping[str, float],
    rate_multiplier: Mapping[Category, float] = None,
) -> OutcomePlan:
    """Realise per-category quotas over a question set.

    ``perceptions`` maps qid -> perception score in [0, 1];
    ``rate_multiplier`` optionally scales each category's calibrated rate
    (the resolution study passes the perception-derived multiplier here).
    """
    correct: set = set()
    by_category: Dict[Category, List[Question]] = {}
    for question in questions:
        by_category.setdefault(question.category, []).append(question)
    for category, members in by_category.items():
        rate = rates.get(category, 0.0)
        if rate_multiplier:
            rate = rate * rate_multiplier.get(category, 1.0)
        k = quota(rate, len(members))
        if k == 0:
            continue
        ability = abilities.get(category, 0.5)
        scored = sorted(
            members,
            key=lambda q: (
                -aptitude(model_name, ability, q,
                          perceptions.get(q.qid, 1.0)),
                q.qid,
            ),
        )
        correct.update(q.qid for q in scored[:k])
    return OutcomePlan(correct_qids=frozenset(correct))


def abilities_from_rates(rates: Mapping[Category, float],
                         floor: float = 0.15) -> Dict[Category, float]:
    """Latent abilities implied by observed pass rates.

    A monotone map placing ability near the rate (plus a floor) — only the
    *ordering* of aptitudes matters for quota realisation, so any monotone
    map works; this one keeps abilities interpretable.
    """
    return {
        category: max(floor, min(1.0, rate))
        for category, rate in rates.items()
    }
