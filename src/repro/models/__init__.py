"""VLM substrate: simulated encoder/projector/LLM pipeline and the
calibrated twelve-model zoo replaying Table II."""

from repro.models import finetune
from repro.models.encoder import VisualEncoder, rate_scaling
from repro.models.irt import OutcomePlan, aptitude, plan_outcomes, quota
from repro.models.llm import LlmBackbone
from repro.models.projector import Projector
from repro.models.providers import (
    AsyncCallScheduler,
    AsyncModelProvider,
    AsyncProviderAdapter,
    BatchingProvider,
    ContinuousBatcher,
    HedgePolicy,
    LocalProvider,
    ModelProvider,
    ProviderRegistry,
    RemoteStubProvider,
    TokenBucket,
    as_async_provider,
    as_provider,
    create_provider,
    default_registry,
    provider_names,
    register_provider,
)
from repro.models.vlm import (
    NO_CHOICE,
    WITH_CHOICE,
    CalibrationTable,
    ModelAnswer,
    SimulatedVLM,
)
from repro.models.zoo import (
    LLAVA_BACKBONE_STUDY,
    TABLE2_ROW_ORDER,
    build_model,
    build_vlm,
    build_zoo,
    model_names,
    paper_rates,
)

__all__ = [
    "VisualEncoder",
    "ModelProvider",
    "AsyncModelProvider",
    "AsyncProviderAdapter",
    "AsyncCallScheduler",
    "ContinuousBatcher",
    "HedgePolicy",
    "TokenBucket",
    "LocalProvider",
    "RemoteStubProvider",
    "BatchingProvider",
    "ProviderRegistry",
    "as_async_provider",
    "as_provider",
    "create_provider",
    "default_registry",
    "provider_names",
    "register_provider",
    "finetune",
    "Projector",
    "LlmBackbone",
    "SimulatedVLM",
    "CalibrationTable",
    "ModelAnswer",
    "OutcomePlan",
    "WITH_CHOICE",
    "NO_CHOICE",
    "aptitude",
    "plan_outcomes",
    "quota",
    "rate_scaling",
    "build_model",
    "build_vlm",
    "build_zoo",
    "model_names",
    "paper_rates",
    "TABLE2_ROW_ORDER",
    "LLAVA_BACKBONE_STUDY",
]
