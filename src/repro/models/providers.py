"""Model providers: the serving seam between the evaluation stack and models.

The paper evaluated twelve VLMs across three heterogeneous serving paths
(local Ollama containers, NVIDIA NIM endpoints, Azure OpenAI), and every
production benchmark pipeline ends up treating the model endpoint as a
swappable, latency-bearing *service* rather than an in-process object.
This module is that seam: a :class:`ModelProvider` protocol every layer
of the stack (harness, runner, agent vision tool, CLI) speaks, a
registry resolving providers by name (so work units, checkpoints and
manifests stay serializable), and three implementations:

* :class:`LocalProvider` — wraps the in-process simulated zoo with
  byte-identical behaviour; the default for every reproduction path;
* :class:`RemoteStubProvider` — models an HTTP endpoint: configurable
  per-call latency, deterministic jitter and transient/permanent
  failure injection, so the resilience layer (retry, breakers,
  deadlines, quarantine) exercises realistic fault profiles;
* :class:`BatchingProvider` — a decorator coalescing per-question calls
  into batches under a max-batch-size / max-wait policy, amortising
  per-call overhead (see ``benchmarks/bench_batched_inference.py``).

Provider identity is content-addressed: :meth:`config_fingerprint`
digests everything answer behaviour depends on, and the run cache folds
it into its keys so two differently-configured providers can never
alias each other's entries.  See ``docs/PROVIDERS.md``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import (
    Callable, Dict, List, Protocol, Sequence, runtime_checkable,
)

from repro.core.faults import PermanentError, TransientModelError
from repro.core.question import Question
from repro.models.vlm import ModelAnswer, SimulatedVLM


def _fingerprint(payload: object) -> str:
    """Canonical sha256 digest of a JSON-serialisable config payload."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":"),
                   default=str).encode("utf-8")).hexdigest()


@runtime_checkable
class ModelProvider(Protocol):
    """What the evaluation stack requires of a model serving path.

    A provider answers a batch of questions under one evaluation setting
    and identifies itself two ways: ``name`` (display/checkpoint
    identity — what artifacts are keyed by) and
    :meth:`config_fingerprint` (cache identity — a digest of everything
    answer behaviour depends on, so two providers sharing a display
    name but differing in configuration never alias cache entries).

    ``answer_batch`` must return exactly one :class:`ModelAnswer` per
    question, in question order, and must be deterministic for a fixed
    configuration (retries and re-runs replay byte-identically).
    Transport-level faults are reported by raising
    :class:`~repro.core.faults.TransientModelError` (retryable) or
    :class:`~repro.core.faults.PermanentError` (not).
    """

    name: str

    def config_fingerprint(self) -> str:
        """Digest of everything answer behaviour depends on."""
        ...  # pragma: no cover - protocol stub

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        """Answer every question; one answer per question, in order."""
        ...  # pragma: no cover - protocol stub


def _model_config_payload(model: object) -> Dict[str, object]:
    """A JSON-serialisable description of a wrapped model's behaviour.

    A model may define its own ``config_payload()`` (the chip-designer
    agent does, covering its designer backbone and vision-tool backend);
    for :class:`SimulatedVLM` the payload covers the full architecture
    and calibration (two zoo builds of the same name fingerprint
    identically; a fine-tuned variant does not).  Anything else falls
    back to class plus name, which is exact for singletons with fixed
    configuration.
    """
    payload_hook = getattr(model, "config_payload", None)
    if callable(payload_hook):
        return payload_hook()
    if isinstance(model, SimulatedVLM):
        return {
            "kind": "simulated-vlm",
            "name": model.name,
            "encoder": list(model.encoder.config_key()),
            "projector": [model.projector.name, model.projector.tokens_out,
                          model.projector.alignment],
            "backbone": [model.backbone.name, model.backbone.params_billion,
                         model.backbone.text_ability],
            "calibration": {
                setting: {cat.value: rate for cat, rate in sorted(
                    table.items(), key=lambda item: item[0].value)}
                for setting, table in (
                    ("with_choice", model.calibration.with_choice),
                    ("no_choice", model.calibration.no_choice))
            },
            "supports_system_prompt": model.supports_system_prompt,
            "temperature": model.temperature,
        }
    return {
        "kind": type(model).__name__,
        "name": getattr(model, "name", repr(model)),
    }


class LocalProvider:
    """In-process serving of any ``answer_all``-compatible model.

    Wraps the simulated zoo (or the chip-designer agent) with
    byte-identical behaviour: ``answer_batch`` is a direct delegation to
    the model's ``answer_all``, so artifacts produced through a
    ``LocalProvider`` match the pre-provider evaluation path exactly
    (pinned in ``tests/test_provider_contract.py``).

    The wrapper is a transparent proxy: attributes not defined here
    (``plan``, ``answer_all``, ``encoder``, ``calibration``, …) resolve
    against the wrapped model, so analysis code written against
    :class:`SimulatedVLM` keeps working on zoo entries.
    """

    def __init__(self, model: object):
        if not callable(getattr(model, "answer_all", None)):
            raise TypeError(
                f"LocalProvider needs an answer_all-compatible model, "
                f"got {type(model).__name__}")
        self.model = model

    @property
    def name(self) -> str:
        return self.model.name  # type: ignore[attr-defined]

    def config_fingerprint(self) -> str:
        return _fingerprint({
            "provider": "local",
            "model": _model_config_payload(self.model),
        })

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        return self.model.answer_all(  # type: ignore[attr-defined]
            questions, setting, resolution_factor, use_raster=use_raster)

    def __getattr__(self, attribute: str):
        # transparent proxy: anything not defined on the provider is
        # served by the wrapped model (guarded against recursion while
        # unpickling, when ``model`` itself is not yet set)
        if attribute == "model":
            raise AttributeError(attribute)
        return getattr(self.model, attribute)

    def __setattr__(self, attribute: str, value: object) -> None:
        # writes go to the wrapped model as well (instrumentation like
        # swapping in a counting encoder must reach the real object);
        # only ``model`` itself lives on the provider
        if attribute == "model" or "model" not in self.__dict__:
            object.__setattr__(self, attribute, value)
        else:
            setattr(self.model, attribute, value)

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: hand over the instance dict explicitly so the
        transparent ``__getattr__`` proxy can never answer a pickle
        protocol probe with the wrapped model's attributes."""
        return self.__dict__

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore the instance dict directly (bypassing the
        write-through ``__setattr__`` proxy)."""
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"LocalProvider({self.model!r})"


def as_provider(model: object) -> ModelProvider:
    """Coerce a model-or-provider into a :class:`ModelProvider`.

    Providers pass through untouched; anything exposing ``answer_all``
    (a raw :class:`SimulatedVLM`, a fine-tuned variant, the agent) is
    wrapped in a :class:`LocalProvider`.  This is the compatibility
    shim that lets every refactored consumer keep accepting the
    pre-provider model objects.
    """
    if callable(getattr(model, "answer_batch", None)) and callable(
            getattr(model, "config_fingerprint", None)):
        return model  # type: ignore[return-value]
    return LocalProvider(model)


class RemoteStubProvider:
    """A simulated HTTP model endpoint wrapping an inner provider.

    Models the serving path the paper actually ran (Ollama / NIM /
    Azure endpoints) without a network: every ``answer_batch`` call
    pays a base latency plus deterministic jitter, and a configurable
    fraction of calls fails — transiently (rate limits, resets; the
    runner's retry/backoff path absorbs these, and each flaky call key
    recovers after ``transient_failures`` attempts) or permanently
    (content filters, revoked credentials; these never succeed and are
    what circuit breakers and quarantine exist for).

    All behaviour is a pure function of ``seed`` and the call key
    (setting, resolution, question ids), so runs replay
    deterministically regardless of thread scheduling — the property
    the chaos/convergence tests rely on.  ``sleep`` is injectable so
    tests and benchmarks measure policy, not wall-clock.
    """

    def __init__(
        self,
        inner: ModelProvider,
        base_latency_s: float = 0.0,
        jitter_s: float = 0.0,
        transient_rate: float = 0.0,
        permanent_rate: float = 0.0,
        transient_failures: int = 1,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if base_latency_s < 0 or jitter_s < 0:
            raise ValueError("latency and jitter must be >= 0")
        for label, rate in (("transient_rate", transient_rate),
                            ("permanent_rate", permanent_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        if transient_failures < 1:
            raise ValueError("transient_failures must be >= 1")
        self.inner = as_provider(inner)
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self.transient_rate = transient_rate
        self.permanent_rate = permanent_rate
        self.transient_failures = transient_failures
        self.seed = seed
        self._sleep = sleep
        self._lock = threading.Lock()
        self._crossings: Dict[str, int] = {}
        #: telemetry: completed calls, injected faults, simulated latency
        self.calls = 0
        self.faults_injected = 0
        self.simulated_latency_s = 0.0

    @property
    def name(self) -> str:
        return self.inner.name

    def config_fingerprint(self) -> str:
        return _fingerprint({
            "provider": "remote-stub",
            "inner": self.inner.config_fingerprint(),
            "base_latency_s": self.base_latency_s,
            "jitter_s": self.jitter_s,
            "transient_rate": self.transient_rate,
            "permanent_rate": self.permanent_rate,
            "transient_failures": self.transient_failures,
            "seed": self.seed,
        })

    def _call_key(self, questions: Sequence[Question], setting: str,
                  resolution_factor: int) -> str:
        qids = ",".join(q.qid for q in questions)
        return f"{setting}|r{resolution_factor}|{qids}"

    def _unit_draw(self, key: str, salt: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}|{salt}|{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") / 2 ** 32

    def _simulate_transport(self, key: str) -> None:
        latency = self.base_latency_s
        if self.jitter_s:
            latency += self.jitter_s * self._unit_draw(key, "jitter")
        if latency:
            with self._lock:
                self.simulated_latency_s += latency
            self._sleep(latency)
        if self._unit_draw(key, "permanent") < self.permanent_rate:
            with self._lock:
                self.faults_injected += 1
            raise PermanentError(
                f"{self.name}: endpoint rejected request {key[:40]!r}")
        if self._unit_draw(key, "transient") < self.transient_rate:
            with self._lock:
                crossing = self._crossings.get(key, 0)
                self._crossings[key] = crossing + 1
            if crossing < self.transient_failures:
                with self._lock:
                    self.faults_injected += 1
                raise TransientModelError(
                    f"{self.name}: simulated 429 "
                    f"({crossing + 1}/{self.transient_failures}) "
                    f"for {key[:40]!r}")

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        key = self._call_key(questions, setting, resolution_factor)
        self._simulate_transport(key)
        answers = self.inner.answer_batch(questions, setting,
                                          resolution_factor,
                                          use_raster=use_raster)
        with self._lock:
            self.calls += 1
        return answers

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: the telemetry lock is process-local state and
        is dropped; behaviour (seed-keyed draws, crossing counts) ships
        so a worker process replays the endpoint deterministically."""
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Rebuild the dropped lock in the destination process."""
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (f"RemoteStubProvider({self.inner!r}, "
                f"latency={self.base_latency_s}, "
                f"transient_rate={self.transient_rate})")


class BatchingProvider:
    """Coalesce per-question calls into batches on an inner provider.

    Remote endpoints charge a per-call overhead (connection setup,
    queueing, scheduling) that per-question submission pays N times; a
    coalesced request pays it once per batch.  This decorator
    implements the standard dynamic-batching policy:

    * :meth:`submit` is the coalescing path: concurrent callers (agent
      sessions, interactive tools, per-question services) hand in
      single questions, which block until either ``max_batch_size``
      submissions have accumulated or ``max_wait_s`` has elapsed since
      the batch opened — then *one* inner call serves the whole batch
      and every submitter is woken with its own answer;
    * ``answer_batch`` — an already-batched request — passes through
      as a single inner call untouched.  Batching never *splits* a
      batch: for quota-calibrated simulated models outcome planning is
      cohort-dependent, so forwarding a work unit's full question list
      in one call is what keeps Table II artifacts byte-identical.

    Coalescing changes transport granularity only; the inner
    provider's answer semantics apply per dispatched batch.  See
    ``docs/PROVIDERS.md`` and ``benchmarks/bench_batched_inference.py``
    for the throughput model.
    """

    def __init__(self, inner: ModelProvider, max_batch_size: int = 16,
                 max_wait_s: float = 0.01,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.inner = as_provider(inner)
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._queue: List[Dict[str, object]] = []
        self._batch_opened = 0.0
        self._draining = False
        #: telemetry: inner calls issued and questions they carried
        self.batches = 0
        self.batched_questions = 0

    @property
    def name(self) -> str:
        return self.inner.name

    def config_fingerprint(self) -> str:
        # max_wait_s is pure scheduling and excluded; the coalescing
        # bound participates because it shapes what a dispatched batch
        # can contain on the submit() path
        return _fingerprint({
            "provider": "batching",
            "inner": self.inner.config_fingerprint(),
            "max_batch_size": self.max_batch_size,
        })

    def _dispatch(self, questions: Sequence[Question], setting: str,
                  resolution_factor: int,
                  use_raster: bool) -> List[ModelAnswer]:
        answers = self.inner.answer_batch(questions, setting,
                                          resolution_factor,
                                          use_raster=use_raster)
        with self._lock:
            self.batches += 1
            self.batched_questions += len(questions)
        return answers

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        return self._dispatch(list(questions), setting, resolution_factor,
                              use_raster)

    # -- concurrent per-question coalescing --------------------------------

    def submit(self, question: Question, setting: str,
               resolution_factor: int = 1,
               use_raster: bool = True) -> ModelAnswer:
        """Submit one question; blocks until its batch is served.

        Submissions sharing (setting, resolution, raster mode) coalesce;
        a mismatched submission flushes the open batch first so a batch
        is always homogeneous.  The submitter that fills the batch — or
        the earliest waiter once ``max_wait_s`` has elapsed — drains it
        with a single inner call and wakes the rest.
        """
        context = (setting, resolution_factor, use_raster)
        entry: Dict[str, object] = {"question": question,
                                    "context": context,
                                    "answer": None, "error": None,
                                    "done": False}
        with self._condition:
            while self._queue and self._queue[0]["context"] != context:
                self._drain_locked()
            if not self._queue:
                self._batch_opened = self._clock()
            self._queue.append(entry)
            if len(self._queue) >= self.max_batch_size:
                self._drain_locked()
            while not entry["done"]:
                if self._draining:
                    self._condition.wait(timeout=0.001)
                    continue
                elapsed = self._clock() - self._batch_opened
                if elapsed >= self.max_wait_s:
                    self._drain_locked()
                else:
                    self._condition.wait(timeout=self.max_wait_s - elapsed)
        if entry["error"] is not None:
            raise entry["error"]  # type: ignore[misc]
        return entry["answer"]  # type: ignore[return-value]

    def flush(self) -> None:
        """Serve any open batch immediately (end-of-stream)."""
        with self._condition:
            while self._queue:
                self._drain_locked()

    def _drain_locked(self) -> None:
        """Serve up to ``max_batch_size`` queued entries; caller holds
        the lock.  The bound is strict: a queue grown past it while a
        prior dispatch was in flight drains in capped slices, and any
        leftover re-opens the batch clock."""
        batch = self._queue[: self.max_batch_size]
        self._queue = self._queue[self.max_batch_size:]
        if not batch:
            return
        if self._queue:
            self._batch_opened = self._clock()
        self._draining = True
        setting, resolution_factor, use_raster = batch[0]["context"]
        questions = [entry["question"] for entry in batch]
        self._lock.release()
        try:
            try:
                answers = self._dispatch(questions, setting,
                                         resolution_factor, use_raster)
                for entry, answer in zip(batch, answers):
                    entry["answer"] = answer
            except Exception as exc:  # propagate to every waiter
                for entry in batch:
                    entry["error"] = exc
        finally:
            self._lock.acquire()
            self._draining = False
            for entry in batch:
                entry["done"] = True
            self._condition.notify_all()

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: the lock/condition pair is process-local and
        dropped, along with any in-flight queue (waiters cannot cross a
        process boundary — the destination starts with an empty batch)."""
        state = dict(self.__dict__)
        for key in ("_lock", "_condition", "_queue", "_draining"):
            del state[key]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Rebuild synchronisation primitives and an empty queue."""
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._queue = []
        self._draining = False

    def __repr__(self) -> str:
        return (f"BatchingProvider({self.inner!r}, "
                f"max_batch_size={self.max_batch_size})")


# -- registry ---------------------------------------------------------------


class ProviderRegistry:
    """Name -> provider-factory mapping; the serializable identity layer.

    Work units, checkpoints and manifests reference providers by
    registry name; resolving the name on any process reproduces the
    provider, which is what keeps run artifacts portable across
    launches.  Factories are invoked per :meth:`create` call (providers
    may carry per-run state such as failure-injection counters).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._factories: Dict[str, Callable[[], ModelProvider]] = {}

    def register(self, name: str, factory: Callable[[], ModelProvider],
                 replace: bool = False) -> None:
        with self._lock:
            if not replace and name in self._factories:
                raise ValueError(f"provider {name!r} already registered")
            self._factories[name] = factory

    def unregister(self, name: str) -> None:
        with self._lock:
            self._factories.pop(name, None)

    def create(self, name: str) -> ModelProvider:
        with self._lock:
            factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"unknown provider {name!r}; known: {self.names()}")
        provider = as_provider(factory())
        if provider.name != name:
            raise ValueError(
                f"provider factory for {name!r} produced a provider "
                f"named {provider.name!r}")
        return provider

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._factories

    def __len__(self) -> int:
        with self._lock:
            return len(self._factories)


#: The process-wide registry; the zoo registers its twelve models (and
#: the chip-designer agent) here at import time, and the CLI/runner
#: resolve ``model="<name>"`` work units against it.
default_registry = ProviderRegistry()


def register_provider(name: str, factory: Callable[[], ModelProvider],
                      replace: bool = False) -> None:
    """Register a provider factory in the default registry."""
    default_registry.register(name, factory, replace=replace)


def provider_names() -> List[str]:
    """All names registered in the default registry (sorted)."""
    _ensure_zoo_registered()
    return default_registry.names()


def create_provider(name: str) -> ModelProvider:
    """Resolve a provider by name from the default registry."""
    _ensure_zoo_registered()
    return default_registry.create(name)


def _ensure_zoo_registered() -> None:
    # the zoo registers itself at import; importing it here makes the
    # registry usable without requiring callers to know that detail
    import repro.models.zoo  # noqa: F401
