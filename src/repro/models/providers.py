"""Model providers: the serving seam between the evaluation stack and models.

The paper evaluated twelve VLMs across three heterogeneous serving paths
(local Ollama containers, NVIDIA NIM endpoints, Azure OpenAI), and every
production benchmark pipeline ends up treating the model endpoint as a
swappable, latency-bearing *service* rather than an in-process object.
This module is that seam: a :class:`ModelProvider` protocol every layer
of the stack (harness, runner, agent vision tool, CLI) speaks, a
registry resolving providers by name (so work units, checkpoints and
manifests stay serializable), and three implementations:

* :class:`LocalProvider` — wraps the in-process simulated zoo with
  byte-identical behaviour; the default for every reproduction path;
* :class:`RemoteStubProvider` — models an HTTP endpoint: configurable
  per-call latency, deterministic jitter, seeded transient/permanent
  failure injection and an optional server-side rate limit, so the
  resilience layer (retry, breakers, deadlines, quarantine) exercises
  realistic fault profiles;
* :class:`BatchingProvider` — a decorator coalescing per-question calls
  into batches under a max-batch-size / max-wait policy, amortising
  per-call overhead (see ``benchmarks/bench_batched_inference.py``).

The API-bound regime (remote endpoints) additionally gets an **async
seam**: an :class:`AsyncModelProvider` protocol (``answer_batch_async``)
with :func:`as_async_provider` adapting any sync provider, a
:class:`TokenBucket` rate limiter, an :class:`AsyncCallScheduler`
(per-provider pacing plus :class:`HedgePolicy` request hedging), and a
:class:`ContinuousBatcher` that keeps a rolling in-flight window full —
refilling batches the moment slots drain instead of
:class:`BatchingProvider`'s coalesce-then-drain (see
``benchmarks/bench_continuous_batching.py``).  The executor's
``AsyncBackend`` is built on these pieces.

Provider identity is content-addressed: :meth:`config_fingerprint`
digests everything answer behaviour depends on, and the run cache folds
it into its keys so two differently-configured providers can never
alias each other's entries.  See ``docs/PROVIDERS.md``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from collections import deque
from typing import (
    Awaitable, Callable, Deque, Dict, List, Optional, Protocol,
    Sequence, Set, runtime_checkable,
)

from repro.core import perfstats
from repro.core.faults import PermanentError, TransientModelError
from repro.core.question import Question
from repro.models.vlm import ModelAnswer, SimulatedVLM


def _fingerprint(payload: object) -> str:
    """Canonical sha256 digest of a JSON-serialisable config payload."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":"),
                   default=str).encode("utf-8")).hexdigest()


@runtime_checkable
class ModelProvider(Protocol):
    """What the evaluation stack requires of a model serving path.

    A provider answers a batch of questions under one evaluation setting
    and identifies itself two ways: ``name`` (display/checkpoint
    identity — what artifacts are keyed by) and
    :meth:`config_fingerprint` (cache identity — a digest of everything
    answer behaviour depends on, so two providers sharing a display
    name but differing in configuration never alias cache entries).

    ``answer_batch`` must return exactly one :class:`ModelAnswer` per
    question, in question order, and must be deterministic for a fixed
    configuration (retries and re-runs replay byte-identically).
    Transport-level faults are reported by raising
    :class:`~repro.core.faults.TransientModelError` (retryable) or
    :class:`~repro.core.faults.PermanentError` (not).
    """

    name: str

    def config_fingerprint(self) -> str:
        """Digest of everything answer behaviour depends on."""
        ...  # pragma: no cover - protocol stub

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        """Answer every question; one answer per question, in order."""
        ...  # pragma: no cover - protocol stub


def _model_config_payload(model: object) -> Dict[str, object]:
    """A JSON-serialisable description of a wrapped model's behaviour.

    A model may define its own ``config_payload()`` (the chip-designer
    agent does, covering its designer backbone and vision-tool backend);
    for :class:`SimulatedVLM` the payload covers the full architecture
    and calibration (two zoo builds of the same name fingerprint
    identically; a fine-tuned variant does not).  Anything else falls
    back to class plus name, which is exact for singletons with fixed
    configuration.
    """
    payload_hook = getattr(model, "config_payload", None)
    if callable(payload_hook):
        return payload_hook()
    if isinstance(model, SimulatedVLM):
        return {
            "kind": "simulated-vlm",
            "name": model.name,
            "encoder": list(model.encoder.config_key()),
            "projector": [model.projector.name, model.projector.tokens_out,
                          model.projector.alignment],
            "backbone": [model.backbone.name, model.backbone.params_billion,
                         model.backbone.text_ability],
            "calibration": {
                setting: {cat.value: rate for cat, rate in sorted(
                    table.items(), key=lambda item: item[0].value)}
                for setting, table in (
                    ("with_choice", model.calibration.with_choice),
                    ("no_choice", model.calibration.no_choice))
            },
            "supports_system_prompt": model.supports_system_prompt,
            "temperature": model.temperature,
        }
    return {
        "kind": type(model).__name__,
        "name": getattr(model, "name", repr(model)),
    }


class LocalProvider:
    """In-process serving of any ``answer_all``-compatible model.

    Wraps the simulated zoo (or the chip-designer agent) with
    byte-identical behaviour: ``answer_batch`` is a direct delegation to
    the model's ``answer_all``, so artifacts produced through a
    ``LocalProvider`` match the pre-provider evaluation path exactly
    (pinned in ``tests/test_provider_contract.py``).

    The wrapper is a transparent proxy: attributes not defined here
    (``plan``, ``answer_all``, ``encoder``, ``calibration``, …) resolve
    against the wrapped model, so analysis code written against
    :class:`SimulatedVLM` keeps working on zoo entries.
    """

    def __init__(self, model: object):
        if not callable(getattr(model, "answer_all", None)):
            raise TypeError(
                f"LocalProvider needs an answer_all-compatible model, "
                f"got {type(model).__name__}")
        self.model = model

    @property
    def name(self) -> str:
        return self.model.name  # type: ignore[attr-defined]

    def config_fingerprint(self) -> str:
        return _fingerprint({
            "provider": "local",
            "model": _model_config_payload(self.model),
        })

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        return self.model.answer_all(  # type: ignore[attr-defined]
            questions, setting, resolution_factor, use_raster=use_raster)

    def __getattr__(self, attribute: str):
        # transparent proxy: anything not defined on the provider is
        # served by the wrapped model (guarded against recursion while
        # unpickling, when ``model`` itself is not yet set)
        if attribute == "model":
            raise AttributeError(attribute)
        return getattr(self.model, attribute)

    def __setattr__(self, attribute: str, value: object) -> None:
        # writes go to the wrapped model as well (instrumentation like
        # swapping in a counting encoder must reach the real object);
        # only ``model`` itself lives on the provider
        if attribute == "model" or "model" not in self.__dict__:
            object.__setattr__(self, attribute, value)
        else:
            setattr(self.model, attribute, value)

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: hand over the instance dict explicitly so the
        transparent ``__getattr__`` proxy can never answer a pickle
        protocol probe with the wrapped model's attributes."""
        return self.__dict__

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore the instance dict directly (bypassing the
        write-through ``__setattr__`` proxy)."""
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"LocalProvider({self.model!r})"


def as_provider(model: object) -> ModelProvider:
    """Coerce a model-or-provider into a :class:`ModelProvider`.

    Providers pass through untouched; anything exposing ``answer_all``
    (a raw :class:`SimulatedVLM`, a fine-tuned variant, the agent) is
    wrapped in a :class:`LocalProvider`.  This is the compatibility
    shim that lets every refactored consumer keep accepting the
    pre-provider model objects.
    """
    if callable(getattr(model, "answer_batch", None)) and callable(
            getattr(model, "config_fingerprint", None)):
        return model  # type: ignore[return-value]
    return LocalProvider(model)


class RemoteStubProvider:
    """A simulated HTTP model endpoint wrapping an inner provider.

    Models the serving path the paper actually ran (Ollama / NIM /
    Azure endpoints) without a network: every ``answer_batch`` call
    pays a base latency plus deterministic jitter, and a configurable
    fraction of calls fails — transiently (rate limits, resets; the
    runner's retry/backoff path absorbs these, and each flaky call key
    recovers after ``transient_failures`` attempts) or permanently
    (content filters, revoked credentials; these never succeed and are
    what circuit breakers and quarantine exist for).

    All behaviour is a pure function of ``seed`` and the call key
    (setting, resolution, question ids), so runs replay
    deterministically regardless of thread scheduling — the property
    the chaos/convergence tests rely on.  ``sleep`` is injectable so
    tests and benchmarks measure policy, not wall-clock.

    Two transport knobs exist for the async/scheduling layer and are
    deliberately *excluded* from the fingerprint (like
    ``BatchingProvider.max_wait_s``, they shape timing, never answers):

    * ``rate_limit_per_s`` / ``rate_limit_burst`` — server-side request
      budget; a call arriving with the bucket empty is rejected with a
      simulated 429 (:class:`TransientModelError`) instead of served.
      ``rate_clock`` is injectable so tests script the refill timeline.
    * ``jitter_per_call`` — draw latency jitter from a per-call sequence
      instead of the call key, so two copies of the *same* call (a
      hedged duplicate) see independent latencies.  Answers stay
      key-deterministic either way.
    """

    def __init__(
        self,
        inner: ModelProvider,
        base_latency_s: float = 0.0,
        jitter_s: float = 0.0,
        transient_rate: float = 0.0,
        permanent_rate: float = 0.0,
        transient_failures: int = 1,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        rate_limit_per_s: Optional[float] = None,
        rate_limit_burst: Optional[int] = None,
        rate_clock: Callable[[], float] = time.monotonic,
        jitter_per_call: bool = False,
        async_sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ):
        if base_latency_s < 0 or jitter_s < 0:
            raise ValueError("latency and jitter must be >= 0")
        for label, rate in (("transient_rate", transient_rate),
                            ("permanent_rate", permanent_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")
        if transient_failures < 1:
            raise ValueError("transient_failures must be >= 1")
        if rate_limit_per_s is not None and rate_limit_per_s <= 0:
            raise ValueError("rate_limit_per_s must be > 0")
        self.inner = as_provider(inner)
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self.transient_rate = transient_rate
        self.permanent_rate = permanent_rate
        self.transient_failures = transient_failures
        self.seed = seed
        self.rate_limit_per_s = rate_limit_per_s
        self.rate_limit_burst = rate_limit_burst
        self.jitter_per_call = jitter_per_call
        self._sleep = sleep
        self._async_sleep = async_sleep
        self._rate_clock = rate_clock
        self._rate_bucket = self._build_bucket()
        self._jitter_seq = 0
        self._lock = threading.Lock()
        self._crossings: Dict[str, int] = {}
        #: telemetry: completed calls, injected faults, simulated
        #: latency, and calls bounced by the simulated rate limiter
        self.calls = 0
        self.faults_injected = 0
        self.rate_limited = 0
        self.simulated_latency_s = 0.0

    def _build_bucket(self) -> Optional["TokenBucket"]:
        if self.rate_limit_per_s is None:
            return None
        return TokenBucket(self.rate_limit_per_s,
                           burst=self.rate_limit_burst,
                           clock=self._rate_clock)

    @property
    def name(self) -> str:
        return self.inner.name

    def config_fingerprint(self) -> str:
        return _fingerprint({
            "provider": "remote-stub",
            "inner": self.inner.config_fingerprint(),
            "base_latency_s": self.base_latency_s,
            "jitter_s": self.jitter_s,
            "transient_rate": self.transient_rate,
            "permanent_rate": self.permanent_rate,
            "transient_failures": self.transient_failures,
            "seed": self.seed,
        })

    def _call_key(self, questions: Sequence[Question], setting: str,
                  resolution_factor: int) -> str:
        qids = ",".join(q.qid for q in questions)
        return f"{setting}|r{resolution_factor}|{qids}"

    def _unit_draw(self, key: str, salt: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}|{salt}|{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") / 2 ** 32

    def _check_rate_limit(self, key: str) -> None:
        """Server-side admission: reject with a simulated 429 when the
        request budget is exhausted (retryable; the client's retry or
        scheduler-side pacing absorbs it)."""
        if self._rate_bucket is None or self._rate_bucket.try_acquire():
            return
        with self._lock:
            self.rate_limited += 1
            self.faults_injected += 1
        raise TransientModelError(
            f"{self.name}: simulated 429 rate limit "
            f"({self.rate_limit_per_s}/s) for {key[:40]!r}")

    def _draw_latency(self, key: str) -> float:
        latency = self.base_latency_s
        if self.jitter_s:
            salt = "jitter"
            if self.jitter_per_call:
                with self._lock:
                    self._jitter_seq += 1
                    salt = f"jitter#{self._jitter_seq}"
            latency += self.jitter_s * self._unit_draw(key, salt)
        return latency

    def _inject_faults(self, key: str) -> None:
        if self._unit_draw(key, "permanent") < self.permanent_rate:
            with self._lock:
                self.faults_injected += 1
            raise PermanentError(
                f"{self.name}: endpoint rejected request {key[:40]!r}")
        if self._unit_draw(key, "transient") < self.transient_rate:
            with self._lock:
                crossing = self._crossings.get(key, 0)
                self._crossings[key] = crossing + 1
            if crossing < self.transient_failures:
                with self._lock:
                    self.faults_injected += 1
                raise TransientModelError(
                    f"{self.name}: simulated 429 "
                    f"({crossing + 1}/{self.transient_failures}) "
                    f"for {key[:40]!r}")

    def _simulate_transport(self, key: str) -> None:
        self._check_rate_limit(key)
        latency = self._draw_latency(key)
        if latency:
            with self._lock:
                self.simulated_latency_s += latency
            # the wait is dead air on this thread: publish it as an
            # idle window so background builders can schedule their
            # CPU bursts inside it (see perfstats.idle_window)
            with perfstats.idle_window():
                self._sleep(latency)
        self._inject_faults(key)

    async def _simulate_transport_async(self, key: str) -> None:
        # same admission/fault pipeline as the sync path, but latency
        # suspends the coroutine so concurrent calls overlap on one loop
        self._check_rate_limit(key)
        latency = self._draw_latency(key)
        if latency:
            with self._lock:
                self.simulated_latency_s += latency
            with perfstats.idle_window():
                await self._async_sleep(latency)
        self._inject_faults(key)

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        key = self._call_key(questions, setting, resolution_factor)
        self._simulate_transport(key)
        answers = self.inner.answer_batch(questions, setting,
                                          resolution_factor,
                                          use_raster=use_raster)
        with self._lock:
            self.calls += 1
        return answers

    async def answer_batch_async(
            self, questions: Sequence[Question], setting: str,
            resolution_factor: int = 1,
            use_raster: bool = True) -> List[ModelAnswer]:
        """Async twin of :meth:`answer_batch`: identical answers and
        fault draws for a given call key, but simulated latency awaits
        on the event loop, so many endpoint calls run concurrently
        without threads.  The wrapped model's (simulated) compute runs
        inline — latency, not compute, is what this stub models."""
        key = self._call_key(questions, setting, resolution_factor)
        await self._simulate_transport_async(key)
        answers = self.inner.answer_batch(questions, setting,
                                          resolution_factor,
                                          use_raster=use_raster)
        with self._lock:
            self.calls += 1
        return answers

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: the telemetry lock is process-local state and
        is dropped (as is the rate bucket, which owns a lock — a worker
        process starts with a freshly-filled budget); behaviour
        (seed-keyed draws, crossing counts) ships so a worker process
        replays the endpoint deterministically."""
        state = dict(self.__dict__)
        del state["_lock"]
        state.pop("_rate_bucket", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Rebuild the dropped lock and rate bucket in the destination
        process."""
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._rate_bucket = self._build_bucket()

    def __repr__(self) -> str:
        return (f"RemoteStubProvider({self.inner!r}, "
                f"latency={self.base_latency_s}, "
                f"transient_rate={self.transient_rate})")


class BatchingProvider:
    """Coalesce per-question calls into batches on an inner provider.

    Remote endpoints charge a per-call overhead (connection setup,
    queueing, scheduling) that per-question submission pays N times; a
    coalesced request pays it once per batch.  This decorator
    implements the standard dynamic-batching policy:

    * :meth:`submit` is the coalescing path: concurrent callers (agent
      sessions, interactive tools, per-question services) hand in
      single questions, which block until either ``max_batch_size``
      submissions have accumulated or ``max_wait_s`` has elapsed since
      the batch opened — then *one* inner call serves the whole batch
      and every submitter is woken with its own answer;
    * ``answer_batch`` — an already-batched request — passes through
      as a single inner call untouched.  Batching never *splits* a
      batch: for quota-calibrated simulated models outcome planning is
      cohort-dependent, so forwarding a work unit's full question list
      in one call is what keeps Table II artifacts byte-identical.

    Coalescing changes transport granularity only; the inner
    provider's answer semantics apply per dispatched batch.  See
    ``docs/PROVIDERS.md`` and ``benchmarks/bench_batched_inference.py``
    for the throughput model.
    """

    def __init__(self, inner: ModelProvider, max_batch_size: int = 16,
                 max_wait_s: float = 0.01,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.inner = as_provider(inner)
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._queue: List[Dict[str, object]] = []
        self._batch_opened = 0.0
        # count of in-flight drains, not a flag: full-batch triggers may
        # start a second drain while an earlier dispatch is still out,
        # and a flag would read "idle" the moment either one finishes
        self._draining = 0
        #: telemetry: inner calls issued and questions they carried
        self.batches = 0
        self.batched_questions = 0

    @property
    def name(self) -> str:
        return self.inner.name

    def config_fingerprint(self) -> str:
        # max_wait_s is pure scheduling and excluded; the coalescing
        # bound participates because it shapes what a dispatched batch
        # can contain on the submit() path
        return _fingerprint({
            "provider": "batching",
            "inner": self.inner.config_fingerprint(),
            "max_batch_size": self.max_batch_size,
        })

    def _dispatch(self, questions: Sequence[Question], setting: str,
                  resolution_factor: int,
                  use_raster: bool) -> List[ModelAnswer]:
        answers = self.inner.answer_batch(questions, setting,
                                          resolution_factor,
                                          use_raster=use_raster)
        with self._lock:
            self.batches += 1
            self.batched_questions += len(questions)
        return answers

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        return self._dispatch(list(questions), setting, resolution_factor,
                              use_raster)

    # -- concurrent per-question coalescing --------------------------------

    def submit(self, question: Question, setting: str,
               resolution_factor: int = 1,
               use_raster: bool = True) -> ModelAnswer:
        """Submit one question; blocks until its batch is served.

        Submissions sharing (setting, resolution, raster mode) coalesce;
        a mismatched submission flushes the open batch first so a batch
        is always homogeneous.  The submitter that fills the batch — or
        the earliest waiter once ``max_wait_s`` has elapsed — drains it
        with a single inner call and wakes the rest.
        """
        context = (setting, resolution_factor, use_raster)
        entry: Dict[str, object] = {"question": question,
                                    "context": context,
                                    "answer": None, "error": None,
                                    "done": False}
        with self._condition:
            while self._queue and self._queue[0]["context"] != context:
                self._drain_locked()
            if not self._queue:
                self._batch_opened = self._clock()
            self._queue.append(entry)
            if len(self._queue) >= self.max_batch_size:
                self._drain_locked()
            while not entry["done"]:
                if self._draining:
                    self._condition.wait(timeout=0.001)
                    continue
                elapsed = self._clock() - self._batch_opened
                if elapsed >= self.max_wait_s:
                    self._drain_locked()
                else:
                    self._condition.wait(timeout=self.max_wait_s - elapsed)
        if entry["error"] is not None:
            raise entry["error"]  # type: ignore[misc]
        return entry["answer"]  # type: ignore[return-value]

    def flush(self) -> None:
        """Serve any open batch immediately (end-of-stream)."""
        with self._condition:
            while self._queue:
                self._drain_locked()

    def _drain_locked(self) -> None:
        """Serve up to ``max_batch_size`` queued entries; caller holds
        the lock.  The bound is strict: a queue grown past it while a
        prior dispatch was in flight drains in capped slices, and any
        leftover re-opens the batch clock.

        Exception safety is part of the contract: once entries are
        sliced off the queue they are no longer reachable by any other
        drainer, so *this* call must mark every one of them done — with
        a stored error when dispatch produced no answers — before
        letting anything propagate.  The drainer is just whichever
        submitter triggered the drain; if it dies between slicing and
        completion (a ``KeyboardInterrupt`` landing in the dispatch, an
        injected clock raising) without that bookkeeping, its
        co-batched waiters spin on ``entry["done"]`` forever (or —
        worse — are woken with ``answer=None`` and silently corrupt
        results).  Regression: ``tests/test_provider_contract.py::
        TestBatchingProviderDrainSafety``.
        """
        batch = self._queue[: self.max_batch_size]
        self._queue = self._queue[self.max_batch_size:]
        if not batch:
            return
        self._draining += 1
        try:
            if self._queue:
                self._batch_opened = self._clock()
            setting, resolution_factor, use_raster = batch[0]["context"]
            questions = [entry["question"] for entry in batch]
            self._lock.release()
            try:
                try:
                    answers = self._dispatch(questions, setting,
                                             resolution_factor, use_raster)
                    for entry, answer in zip(batch, answers):
                        entry["answer"] = answer
                except Exception as exc:  # propagate to every waiter
                    for entry in batch:
                        entry["error"] = exc
            finally:
                self._lock.acquire()
        except BaseException as exc:
            # a drain that dies outside the dispatch handler must still
            # complete the sliced entries: waiters get a terminal error,
            # the drainer re-raises the original
            for entry in batch:
                if entry["answer"] is None and entry["error"] is None:
                    entry["error"] = RuntimeError(
                        f"batch dispatch aborted: "
                        f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self._draining -= 1
            for entry in batch:
                entry["done"] = True
            self._condition.notify_all()

    def __getstate__(self) -> Dict[str, object]:
        """Pickle support: the lock/condition pair is process-local and
        dropped, along with any in-flight queue (waiters cannot cross a
        process boundary — the destination starts with an empty batch)."""
        state = dict(self.__dict__)
        for key in ("_lock", "_condition", "_queue", "_draining"):
            del state[key]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Rebuild synchronisation primitives and an empty queue."""
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._queue = []
        self._draining = 0

    def __repr__(self) -> str:
        return (f"BatchingProvider({self.inner!r}, "
                f"max_batch_size={self.max_batch_size})")


# -- async seam ---------------------------------------------------------------


@runtime_checkable
class AsyncModelProvider(Protocol):
    """What the asyncio evaluation path requires of a serving path.

    The async twin of :class:`ModelProvider`: same identity pair
    (``name`` plus :meth:`config_fingerprint`), same one-answer-per-
    question-in-order contract, but ``answer_batch_async`` is awaitable
    so one event loop can hold many endpoint calls in flight at once —
    the substrate for continuous batching, hedging and token-bucket
    pacing.  Sync providers are coerced via :func:`as_async_provider`;
    because the adapter preserves fingerprints, cache and checkpoint
    identity never depends on which seam served a call.
    """

    name: str

    def config_fingerprint(self) -> str:
        """Digest of everything answer behaviour depends on."""
        ...  # pragma: no cover - protocol stub

    async def answer_batch_async(
            self, questions: Sequence[Question], setting: str,
            resolution_factor: int = 1,
            use_raster: bool = True) -> List[ModelAnswer]:
        """Answer every question; one answer per question, in order."""
        ...  # pragma: no cover - protocol stub


class AsyncProviderAdapter:
    """Async façade over a synchronous provider.

    ``answer_batch_async`` runs the wrapped provider's blocking
    ``answer_batch`` on a worker thread (``asyncio.to_thread``), so a
    blocking transport overlaps with other in-flight calls instead of
    stalling the event loop.  The adapter is transport-only: ``name``
    and :meth:`config_fingerprint` delegate unchanged — which is what
    keeps run-cache keys and golden checkpoints byte-identical whichever
    seam served the call — and the sync ``answer_batch`` passes through,
    so an adapted provider still satisfies :class:`ModelProvider`.
    """

    def __init__(self, inner: object):
        self.inner = as_provider(inner)

    @property
    def name(self) -> str:
        return self.inner.name

    def config_fingerprint(self) -> str:
        return self.inner.config_fingerprint()

    def answer_batch(self, questions: Sequence[Question], setting: str,
                     resolution_factor: int = 1,
                     use_raster: bool = True) -> List[ModelAnswer]:
        return self.inner.answer_batch(questions, setting,
                                       resolution_factor,
                                       use_raster=use_raster)

    async def answer_batch_async(
            self, questions: Sequence[Question], setting: str,
            resolution_factor: int = 1,
            use_raster: bool = True) -> List[ModelAnswer]:
        return await asyncio.to_thread(
            self.inner.answer_batch, questions, setting,
            resolution_factor, use_raster=use_raster)

    def __repr__(self) -> str:
        return f"AsyncProviderAdapter({self.inner!r})"


def as_async_provider(model: object) -> AsyncModelProvider:
    """Coerce a model-or-provider into an :class:`AsyncModelProvider`.

    Natively async providers (anything exposing ``answer_batch_async``
    plus ``config_fingerprint`` — e.g. :class:`RemoteStubProvider`)
    pass through untouched; everything else is first coerced through
    :func:`as_provider` and wrapped in an :class:`AsyncProviderAdapter`.
    """
    if callable(getattr(model, "answer_batch_async", None)) and callable(
            getattr(model, "config_fingerprint", None)):
        return model  # type: ignore[return-value]
    return AsyncProviderAdapter(as_provider(model))


class TokenBucket:
    """Thread-safe token-bucket rate limiter with sync and async edges.

    Standard semantics: the bucket holds up to ``burst`` tokens and
    refills continuously at ``rate_per_s``.  Two consumption styles
    serve the two sides of the rate-limit story:

    * :meth:`try_acquire` — non-blocking; the *server* side
      (:class:`RemoteStubProvider`) uses it to decide whether to reject
      a request with a simulated 429;
    * :meth:`acquire` — awaits until tokens are available; the *client*
      side (:class:`AsyncCallScheduler`) uses it to pace dispatches
      under a provider's published budget instead of burning retries.

    ``clock`` is injectable so tests script the refill timeline
    deterministically.
    """

    def __init__(self, rate_per_s: float, burst: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if burst is None:
            burst = max(1, int(rate_per_s))
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_s = float(rate_per_s)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(self.burst)
        self._updated = clock()
        self._lock = threading.Lock()
        #: telemetry: grants, non-blocking rejections, async pacing time
        self.granted = 0
        self.rejected = 0
        self.waited_s = 0.0

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate_per_s)
        self._updated = now

    def try_acquire(self, tokens: int = 1) -> bool:
        """Take ``tokens`` if available right now; never blocks."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.granted += 1
                return True
            self.rejected += 1
            return False

    def wait_time(self, tokens: int = 1) -> float:
        """Seconds until ``tokens`` would be available (0 if they are)."""
        with self._lock:
            self._refill_locked()
            deficit = tokens - self._tokens
            return max(0.0, deficit / self.rate_per_s)

    async def acquire(
            self, tokens: int = 1,
            sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        """Await until ``tokens`` are taken (client-side pacing)."""
        while True:
            with self._lock:
                self._refill_locked()
                if self._tokens >= tokens:
                    self._tokens -= tokens
                    self.granted += 1
                    return
                delay = (tokens - self._tokens) / self.rate_per_s
            self.waited_s += delay
            await sleep(delay)

    def __repr__(self) -> str:
        return (f"TokenBucket(rate_per_s={self.rate_per_s}, "
                f"burst={self.burst})")


class HedgePolicy:
    """When and how to duplicate a straggling provider call.

    Tail latency at remote endpoints is dominated by a few slow
    stragglers; hedging launches a duplicate of a call that has been in
    flight longer than ``after_s`` and takes whichever copy succeeds
    first (losers are cancelled).  At most ``max_hedges`` duplicates are
    launched per call.  Providers are deterministic per call key, so the
    copies are interchangeable: hedging shapes *latency* only, never
    answers — which is why it is safe under the golden-digest pin.
    """

    def __init__(self, after_s: float, max_hedges: int = 1):
        if after_s < 0:
            raise ValueError("after_s must be >= 0")
        if max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")
        self.after_s = after_s
        self.max_hedges = max_hedges

    def __repr__(self) -> str:
        return (f"HedgePolicy(after_s={self.after_s}, "
                f"max_hedges={self.max_hedges})")


class AsyncCallScheduler:
    """Rate-limit-aware, optionally hedged dispatcher for provider calls.

    The scheduling seam shared by :class:`ContinuousBatcher` and the
    executor's ``AsyncBackend``: every provider call funnels through
    :meth:`call`, which

    1. coerces the provider to the async protocol,
    2. awaits a per-provider :class:`TokenBucket` when ``rate_limit_per_s``
       is configured — client-side pacing that keeps a sweep under a
       provider's request budget instead of burning retries on 429s
       (hedged duplicates pay for their own tokens), and
    3. applies the :class:`HedgePolicy`, if any: a duplicate launches
       once the call has been in flight ``after_s`` seconds, the first
       *successful* copy wins and the rest are cancelled.  A copy routed
       through ``asyncio.to_thread`` cannot be interrupted mid-call; its
       result is simply discarded when cancellation lands.

    Errors keep unhedged semantics: only when every copy fails does the
    first copy's exception propagate, so retry/breaker classification
    upstream is unchanged.
    """

    def __init__(self, rate_limit_per_s: Optional[float] = None,
                 rate_burst: Optional[int] = None,
                 hedge: Optional[HedgePolicy] = None,
                 clock: Callable[[], float] = time.monotonic,
                 async_sleep: Callable[
                     [float], Awaitable[None]] = asyncio.sleep):
        if rate_limit_per_s is not None and rate_limit_per_s <= 0:
            raise ValueError("rate_limit_per_s must be > 0")
        self.rate_limit_per_s = rate_limit_per_s
        self.rate_burst = rate_burst
        self.hedge = hedge
        self._clock = clock
        self._async_sleep = async_sleep
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        #: telemetry: calls dispatched, hedges launched, hedge wins
        self.calls = 0
        self.hedges_launched = 0
        self.hedge_wins = 0

    def bucket_for(self, provider_name: str) -> Optional[TokenBucket]:
        """The (lazily created) pacing bucket for one provider name."""
        if self.rate_limit_per_s is None:
            return None
        with self._buckets_lock:
            bucket = self._buckets.get(provider_name)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit_per_s,
                                     burst=self.rate_burst,
                                     clock=self._clock)
                self._buckets[provider_name] = bucket
            return bucket

    async def call(self, provider: object, questions: Sequence[Question],
                   setting: str, resolution_factor: int = 1,
                   use_raster: bool = True) -> List[ModelAnswer]:
        """Dispatch one (possibly hedged, rate-paced) provider call."""
        async_provider = as_async_provider(provider)
        bucket = self.bucket_for(async_provider.name)

        async def attempt() -> List[ModelAnswer]:
            if bucket is not None:
                await bucket.acquire(sleep=self._async_sleep)
            return await async_provider.answer_batch_async(
                questions, setting, resolution_factor,
                use_raster=use_raster)

        self.calls += 1
        if self.hedge is None:
            return await attempt()
        return await self._race(attempt)

    async def _race(
            self,
            attempt: Callable[[], Awaitable[List[ModelAnswer]]],
    ) -> List[ModelAnswer]:
        tasks: List["asyncio.Task[List[ModelAnswer]]"] = [
            asyncio.ensure_future(attempt())]
        assert self.hedge is not None
        hedges_left = self.hedge.max_hedges
        errors: List[BaseException] = []
        try:
            pending: Set["asyncio.Task[List[ModelAnswer]]"] = set(tasks)
            while pending:
                timeout = self.hedge.after_s if hedges_left > 0 else None
                done, pending = await asyncio.wait(
                    pending, timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    if task.cancelled():
                        continue
                    exc = task.exception()
                    if exc is None:
                        if task is not tasks[0]:
                            self.hedge_wins += 1
                        return task.result()
                    errors.append(exc)
                if not done and hedges_left > 0:
                    hedges_left -= 1
                    self.hedges_launched += 1
                    hedge_task = asyncio.ensure_future(attempt())
                    tasks.append(hedge_task)
                    pending.add(hedge_task)
            raise errors[0]
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()


class ContinuousBatcher:
    """Continuous (rolling-refill) batching over async providers.

    :class:`BatchingProvider` coalesces-then-drains: a batch fills (or
    times out), one inner call serves it, and everything behind it
    waits for that call to return before the next batch even opens —
    at high endpoint latency the pipeline idles a full round-trip per
    batch.  This is the vLLM-style serve/route alternative for the
    asyncio path: up to ``max_in_flight`` inner calls run concurrently
    and the moment one completes its slot is refilled from the pending
    queue, so the in-flight window never drains to empty while work
    remains (``benchmarks/bench_continuous_batching.py`` quantifies the
    gap).

    Submissions are grouped by (provider, setting, resolution, raster
    mode): a dispatched batch is always homogeneous — one provider, one
    evaluation context — and never exceeds ``max_batch_size``
    questions.  Both invariants, plus exactly-once completion of every
    submission, are property-tested under arbitrary arrival/drain
    interleavings in ``tests/test_continuous_batching.py``.  An
    optional :class:`AsyncCallScheduler` routes dispatches through
    per-provider token buckets and hedging.

    Single-loop discipline: all state is touched only from the event
    loop that owns the batcher (no locks); ``submit`` must be awaited
    on that loop.
    """

    def __init__(self, max_batch_size: int = 16, max_in_flight: int = 4,
                 scheduler: Optional[AsyncCallScheduler] = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_in_flight = max_in_flight
        self.scheduler = scheduler
        self._pending: Deque[Dict[str, object]] = deque()
        self._in_flight = 0
        self._tasks: Set["asyncio.Task[None]"] = set()
        #: telemetry: batches dispatched, questions they carried, the
        #: concurrency high-water mark, and how many batches launched
        #: from a completion slot (the continuous refills a
        #: coalesce-then-drain design never gets)
        self.batches = 0
        self.batched_questions = 0
        self.peak_in_flight = 0
        self.refills = 0

    @property
    def in_flight(self) -> int:
        """Inner calls currently out."""
        return self._in_flight

    def pending_count(self) -> int:
        """Submissions queued but not yet dispatched."""
        return len(self._pending)

    async def submit(self, provider: object, question: Question,
                     setting: str, resolution_factor: int = 1,
                     use_raster: bool = True) -> ModelAnswer:
        """Submit one question; resolves when its batch's call returns.

        The submission joins the pending queue and is swept into the
        next homogeneous batch with a free in-flight slot — immediately
        if one is free now, otherwise the moment a completing call
        refills.
        """
        loop = asyncio.get_running_loop()
        entry: Dict[str, object] = {
            "provider": provider,
            "question": question,
            "key": (id(provider), setting, resolution_factor, use_raster),
            "future": loop.create_future(),
        }
        self._pending.append(entry)
        self._pump()
        return await entry["future"]  # type: ignore[misc]

    def _pump(self, refill: bool = False) -> None:
        """Launch homogeneous batches while slots and work remain."""
        while self._in_flight < self.max_in_flight and self._pending:
            key = self._pending[0]["key"]
            batch: List[Dict[str, object]] = []
            rest: Deque[Dict[str, object]] = deque()
            for entry in self._pending:
                if entry["key"] == key and len(batch) < self.max_batch_size:
                    batch.append(entry)
                else:
                    rest.append(entry)
            self._pending = rest
            self._in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)
            self.batches += 1
            self.batched_questions += len(batch)
            if refill:
                self.refills += 1
            task = asyncio.ensure_future(self._dispatch(batch))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _dispatch(self, batch: List[Dict[str, object]]) -> None:
        provider = batch[0]["provider"]
        _, setting, resolution_factor, use_raster = batch[0]["key"]
        questions = [entry["question"] for entry in batch]
        try:
            if self.scheduler is not None:
                answers = await self.scheduler.call(
                    provider, questions, setting, resolution_factor,
                    use_raster=use_raster)
            else:
                answers = await as_async_provider(
                    provider).answer_batch_async(
                        questions, setting, resolution_factor,
                        use_raster=use_raster)
            for entry, answer in zip(batch, answers):
                future = entry["future"]
                if not future.done():  # type: ignore[union-attr]
                    future.set_result(answer)  # type: ignore[union-attr]
        except asyncio.CancelledError:
            for entry in batch:
                future = entry["future"]
                if not future.done():  # type: ignore[union-attr]
                    future.cancel()  # type: ignore[union-attr]
            raise
        except Exception as exc:  # propagate to every waiter
            for entry in batch:
                future = entry["future"]
                if not future.done():  # type: ignore[union-attr]
                    future.set_exception(exc)  # type: ignore[union-attr]
        finally:
            self._in_flight -= 1
            self._pump(refill=True)

    def __repr__(self) -> str:
        return (f"ContinuousBatcher(max_batch_size={self.max_batch_size}, "
                f"max_in_flight={self.max_in_flight})")


# -- registry ---------------------------------------------------------------


class ProviderRegistry:
    """Name -> provider-factory mapping; the serializable identity layer.

    Work units, checkpoints and manifests reference providers by
    registry name; resolving the name on any process reproduces the
    provider, which is what keeps run artifacts portable across
    launches.  Factories are invoked per :meth:`create` call (providers
    may carry per-run state such as failure-injection counters).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._factories: Dict[str, Callable[[], ModelProvider]] = {}

    def register(self, name: str, factory: Callable[[], ModelProvider],
                 replace: bool = False) -> None:
        with self._lock:
            if not replace and name in self._factories:
                raise ValueError(f"provider {name!r} already registered")
            self._factories[name] = factory

    def unregister(self, name: str) -> None:
        with self._lock:
            self._factories.pop(name, None)

    def create(self, name: str) -> ModelProvider:
        with self._lock:
            factory = self._factories.get(name)
        if factory is None:
            raise KeyError(
                f"unknown provider {name!r}; known: {self.names()}")
        provider = as_provider(factory())
        if provider.name != name:
            raise ValueError(
                f"provider factory for {name!r} produced a provider "
                f"named {provider.name!r}")
        return provider

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._factories

    def __len__(self) -> int:
        with self._lock:
            return len(self._factories)


#: The process-wide registry; the zoo registers its twelve models (and
#: the chip-designer agent) here at import time, and the CLI/runner
#: resolve ``model="<name>"`` work units against it.
default_registry = ProviderRegistry()


def register_provider(name: str, factory: Callable[[], ModelProvider],
                      replace: bool = False) -> None:
    """Register a provider factory in the default registry."""
    default_registry.register(name, factory, replace=replace)


def provider_names() -> List[str]:
    """All names registered in the default registry (sorted)."""
    _ensure_zoo_registered()
    return default_registry.names()


def create_provider(name: str) -> ModelProvider:
    """Resolve a provider by name from the default registry."""
    _ensure_zoo_registered()
    return default_registry.create(name)


def _ensure_zoo_registered() -> None:
    # the zoo registers itself at import; importing it here makes the
    # registry usable without requiring callers to know that detail
    import repro.models.zoo  # noqa: F401
