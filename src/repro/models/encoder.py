"""Simulated visual encoder: resolution-limited perception of figures.

The encoder mirrors the front end of Fig. 2 in the paper: it ingests the
question's raster(s), tiles them into patches, and produces a *perception
score* in [0, 1] — how much of the figure's task-relevant information
survives the encoder's input resolution and any external downsampling.
Perception is grounded in the actual rendered pixels (edge-energy
retention) multiplied by the analytic stroke-legibility model, so the
Section IV-B resolution study measures a real image-processing pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.perfstats import JSON_VALUE_CODEC, LruCache
from repro.core.question import Question, VisualContent
from repro.visual.resolution import stroke_legibility, visual_legibility

#: Content-keyed memo of perception scores: one entry per (encoder
#: configuration, figure content, factor, raster mode).  Models sharing
#: an encoder configuration share entries, so a 12-model sweep computes
#: each figure's perception once per distinct encoder, not 12x.
_PERCEPTION_CACHE = LruCache(capacity=32768, name="perception",
                             spill_codec=JSON_VALUE_CODEC)

#: Exponent translating mean perception loss into pass-rate loss.
PERCEPTION_TO_RATE_GAMMA = 1.0

#: Fraction of a question that remains answerable with a destroyed image:
#: the prompt text, the answer options and the model's prior knowledge are
#: a non-visual channel.  Calibrated jointly with the legibility metric so
#: that 8x downsampling preserves the Digital pass rate while 16x drops it
#: from 0.49 to 0.37, as the paper measures (see EXPERIMENTS.md, E4).
PRIOR_FLOOR = 0.7


@dataclass(frozen=True)
class VisualEncoder:
    """Patch-based encoder with a square input resolution."""

    name: str = "vit-l"
    input_resolution: int = 336
    patch_size: int = 14
    quality: float = 1.0  # relative encoder strength in [0, 1]

    def __post_init__(self) -> None:
        if self.input_resolution <= 0 or self.patch_size <= 0:
            raise ValueError("resolution and patch size must be positive")
        if not 0.0 < self.quality <= 1.0:
            raise ValueError("quality must be in (0, 1]")

    @property
    def tokens_per_image(self) -> int:
        side = self.input_resolution // self.patch_size
        return side * side

    def intrinsic_factor(self, visual: VisualContent) -> float:
        """Downsampling the encoder itself applies to fit its input size."""
        longest = max(visual.width, visual.height)
        return max(1.0, longest / self.input_resolution)

    def config_key(self) -> Tuple[str, int, int, float]:
        """Everything about the encoder a perception score depends on."""
        return (self.name, self.input_resolution, self.patch_size,
                self.quality)

    def perceive(self, visual: VisualContent,
                 external_factor: int = 1, use_raster: bool = True) -> float:
        """Perception score of one visual at an external downsample factor.

        The external factor (the Section IV-B experiment) composes with the
        encoder's intrinsic resize; the rendered raster contributes via the
        edge-retention legibility metric when available.  Scores are
        memoized content-addressed (see :data:`_PERCEPTION_CACHE`): the
        score is a pure function of the encoder configuration, the
        visual's content and the factor, so cached and uncached paths are
        bit-identical.
        """
        if external_factor < 1:
            raise ValueError("factor must be >= 1")
        from repro.visual import content_key  # local import avoids a cycle

        key = (self.config_key(), content_key(visual),
               external_factor, bool(use_raster))
        score = _PERCEPTION_CACHE.get(key)
        if score is None:
            score = self._perceive_uncached(visual, external_factor,
                                            use_raster)
            _PERCEPTION_CACHE.put(key, score)
        return score

    def _perceive_uncached(self, visual: VisualContent,
                           external_factor: int,
                           use_raster: bool) -> float:
        combined = int(round(
            external_factor * self.intrinsic_factor(visual)))
        combined = max(combined, 1)
        if use_raster and visual.render_spec:
            score = visual_legibility(visual, external_factor)
            # intrinsic resize applies analytically on top
            score *= stroke_legibility(visual, combined) \
                / max(stroke_legibility(visual, external_factor), 1e-9)
        else:
            score = stroke_legibility(visual, combined)
        score = max(0.0, min(1.0, score * self.quality))
        return PRIOR_FLOOR + (1.0 - PRIOR_FLOOR) * score

    def perceive_question(self, question: Question,
                          external_factor: int = 1,
                          use_raster: bool = True) -> float:
        """Mean perception over all of a question's visuals."""
        scores = [
            self.perceive(v, external_factor, use_raster)
            for v in question.all_visuals
        ]
        return sum(scores) / len(scores)


def rate_scaling(mean_perception: float,
                 gamma: float = PERCEPTION_TO_RATE_GAMMA) -> float:
    """Pass-rate multiplier implied by a mean perception score."""
    if not 0.0 <= mean_perception <= 1.0:
        raise ValueError("perception must be in [0, 1]")
    return mean_perception ** gamma
