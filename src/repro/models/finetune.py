"""Simulated domain fine-tuning — the paper's stated future work.

Section V targets "ChipVQA-oriented dataset collection, VLM training and
development, targeting a low-cost yet effective open-source foundation
model".  This module lets the harness explore that direction offline: a
:class:`FinetuneRecipe` (domain-example budget per discipline, epochs)
produces a new calibrated model whose per-category rates improve with
diminishing returns and cross-discipline transfer, saturating below a
configurable headroom ceiling.

The learning-curve form is the standard log-linear data-scaling rule
(accuracy gain ~ log of example count), with a transfer matrix that sends
a fraction of each discipline's gain to the others — chip-design skills
overlap (e.g. Digital helps Architecture).  It is a *model of training*,
not training: results are labelled as extension studies, never as paper
reproductions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.core.question import Category
from repro.models.vlm import CalibrationTable, SimulatedVLM

#: Fraction of a discipline's gain that leaks to each other discipline.
TRANSFER = {
    (Category.DIGITAL, Category.ARCHITECTURE): 0.30,
    (Category.ARCHITECTURE, Category.DIGITAL): 0.30,
    (Category.ANALOG, Category.PHYSICAL): 0.15,
    (Category.PHYSICAL, Category.ANALOG): 0.15,
    (Category.MANUFACTURING, Category.PHYSICAL): 0.20,
    (Category.PHYSICAL, Category.MANUFACTURING): 0.20,
}

#: Examples that buy one "unit" of learning (log base point).
EXAMPLES_PER_UNIT = 500.0

#: Gain per learning unit, in absolute pass-rate points.
GAIN_PER_UNIT = 0.06

#: No amount of fine-tuning closes more than this fraction of the gap to
#: perfect accuracy (data quality / model capacity ceiling).
MAX_HEADROOM_FRACTION = 0.6


@dataclass(frozen=True)
class FinetuneRecipe:
    """A domain-adaptation training budget."""

    examples_per_category: Mapping[Category, int]
    epochs: int = 1
    sa_gain_fraction: float = 0.7  # SA improves less than MC per unit

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not 0.0 <= self.sa_gain_fraction <= 1.0:
            raise ValueError("sa_gain_fraction must be in [0, 1]")
        for category, count in self.examples_per_category.items():
            if count < 0:
                raise ValueError(f"negative examples for {category}")

    @classmethod
    def uniform(cls, examples: int, epochs: int = 1) -> "FinetuneRecipe":
        return cls({c: examples for c in Category}, epochs=epochs)

    def learning_units(self, category: Category) -> float:
        """Diminishing-returns units earned for one discipline."""
        examples = self.examples_per_category.get(category, 0)
        effective = examples * math.sqrt(self.epochs)
        return math.log1p(effective / EXAMPLES_PER_UNIT)


def _direct_gains(recipe: FinetuneRecipe) -> Dict[Category, float]:
    return {
        category: GAIN_PER_UNIT * recipe.learning_units(category)
        for category in Category
    }


def projected_rates(base: Mapping[Category, float],
                    recipe: FinetuneRecipe,
                    sa: bool = False) -> Dict[Category, float]:
    """Post-fine-tuning pass rates for one evaluation setting."""
    direct = _direct_gains(recipe)
    rates: Dict[Category, float] = {}
    for category, base_rate in base.items():
        gain = direct[category]
        for (src, dst), fraction in TRANSFER.items():
            if dst is category:
                gain += fraction * direct[src]
        if sa:
            gain *= recipe.sa_gain_fraction
        ceiling = base_rate + MAX_HEADROOM_FRACTION * (1.0 - base_rate)
        rates[category] = min(ceiling, base_rate + gain)
    return rates


def finetune(model: SimulatedVLM, recipe: FinetuneRecipe,
             suffix: str = "chip-ft") -> SimulatedVLM:
    """A new calibrated model reflecting the recipe's projected effect.

    The returned model shares the base model's encoder/projector/backbone
    (fine-tuning here is instruction/alignment tuning, not architecture
    change) under a derived name, with a recomputed calibration table.
    """
    calibration = CalibrationTable(
        with_choice=projected_rates(model.calibration.with_choice, recipe,
                                    sa=False),
        no_choice=projected_rates(model.calibration.no_choice, recipe,
                                  sa=True),
    )
    return SimulatedVLM(
        name=f"{model.name}-{suffix}",
        encoder=model.encoder,
        projector=model.projector,
        backbone=model.backbone,
        calibration=calibration,
        supports_system_prompt=model.supports_system_prompt,
        temperature=model.temperature,
    )


def data_budget_sweep(model: SimulatedVLM,
                      budgets: Mapping[str, int]) -> Dict[str, SimulatedVLM]:
    """Fine-tuned variants for several uniform example budgets."""
    return {
        label: finetune(model, FinetuneRecipe.uniform(examples),
                        suffix=f"ft{label}")
        for label, examples in budgets.items()
    }
