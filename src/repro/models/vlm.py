"""The simulated vision-language model: Fig. 2's pipeline end to end.

A :class:`SimulatedVLM` composes a visual encoder, a projector and an LLM
backbone, carries the calibration table that replays Table II, and answers
questions with actual response *text* (paraphrases of the gold when
correct, plausible distractors when wrong) so the judge pipeline is
exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.question import Category, Question, QuestionType
from repro.core.prompts import PromptBundle, build_prompt
from repro.models.encoder import VisualEncoder, rate_scaling
from repro.models.irt import OutcomePlan, abilities_from_rates, plan_outcomes
from repro.models.llm import LlmBackbone
from repro.models.projector import Projector

#: Evaluation settings matching the two halves of Table II.
WITH_CHOICE = "with_choice"
NO_CHOICE = "no_choice"


@dataclass(frozen=True)
class CalibrationTable:
    """Per-discipline pass rates in both settings (from Table II)."""

    with_choice: Mapping[Category, float]
    no_choice: Mapping[Category, float]

    def rates(self, setting: str) -> Mapping[Category, float]:
        if setting == WITH_CHOICE:
            return self.with_choice
        if setting == NO_CHOICE:
            return self.no_choice
        raise ValueError(f"unknown setting {setting!r}")


@dataclass(frozen=True)
class ModelAnswer:
    """One model response plus simulation internals (for analysis)."""

    qid: str
    text: str
    planned_correct: bool
    perception: float
    prompt: PromptBundle


class SimulatedVLM:
    """A calibrated stand-in for one of the paper's evaluated VLMs."""

    def __init__(
        self,
        name: str,
        encoder: VisualEncoder,
        projector: Projector,
        backbone: LlmBackbone,
        calibration: CalibrationTable,
        supports_system_prompt: bool = True,
        temperature: float = 0.1,
    ):
        self.name = name
        self.encoder = encoder
        self.projector = projector
        self.backbone = backbone
        self.calibration = calibration
        self.supports_system_prompt = supports_system_prompt
        self.temperature = temperature

    def __repr__(self) -> str:
        return (f"SimulatedVLM({self.name!r}, "
                f"backbone={self.backbone.name!r})")

    # -- perception ------------------------------------------------------------

    def perceive(self, question: Question,
                 resolution_factor: int = 1,
                 use_raster: bool = True) -> float:
        raw = self.encoder.perceive_question(
            question, resolution_factor, use_raster=use_raster)
        return self.projector.project(raw)

    def _perceptions(self, questions: Sequence[Question],
                     resolution_factor: int,
                     use_raster: bool) -> Dict[str, float]:
        return {
            q.qid: self.perceive(q, resolution_factor, use_raster)
            for q in questions
        }

    # -- answering ----------------------------------------------------------------

    def plan(self, questions: Sequence[Question], setting: str,
             resolution_factor: int = 1,
             use_raster: bool = True,
             perceptions: Optional[Dict[str, float]] = None) -> OutcomePlan:
        """Quota-IRT outcome plan for an evaluation run.

        At native resolution the calibrated rates apply unchanged; at a
        degraded resolution each category's rate is scaled by the mean
        perception penalty (computed from the real rasters), so the plan
        *derives* the resolution study rather than hard-coding it.

        ``perceptions`` (qid -> projected perception at
        ``resolution_factor``) lets :meth:`answer_all` share one
        perception pass between planning and answering; omitted, the map
        is computed here.
        """
        rates = self.calibration.rates(setting)
        if perceptions is None:
            perceptions = self._perceptions(questions, resolution_factor,
                                            use_raster)
        multiplier: Optional[Dict[Category, float]] = None
        if resolution_factor > 1:
            native = self._perceptions(questions, 1, use_raster)
            multiplier = {}
            by_cat: Dict[Category, List[Question]] = {}
            for question in questions:
                by_cat.setdefault(question.category, []).append(question)
            for category, members in by_cat.items():
                degraded = sum(perceptions[q.qid] for q in members)
                baseline = sum(native[q.qid] for q in members)
                ratio = degraded / baseline if baseline > 0 else 1.0
                multiplier[category] = rate_scaling(min(1.0, ratio))
        abilities = abilities_from_rates(rates)
        return plan_outcomes(self.name, abilities, rates, questions,
                             perceptions, multiplier)

    def answer_all(self, questions: Sequence[Question], setting: str,
                   resolution_factor: int = 1,
                   use_raster: bool = True) -> List[ModelAnswer]:
        """Answer every question under one evaluation setting.

        Perception is a single pass: the per-question map is computed
        once, threaded into the outcome plan and reused for every
        answer, so the encoder perceives each (question, factor) exactly
        once per run.  (A degraded-resolution run additionally perceives
        each question once at native resolution inside :meth:`plan` —
        a different factor, hence a separate pass.)
        """
        perceptions = self._perceptions(questions, resolution_factor,
                                        use_raster)
        plan = self.plan(questions, setting, resolution_factor, use_raster,
                         perceptions=perceptions)
        return [
            self._answer_one(question, plan, perceptions[question.qid])
            for question in questions
        ]

    def _answer_one(self, question: Question, plan: OutcomePlan,
                    perception: float) -> ModelAnswer:
        prompt = build_prompt(question, self.supports_system_prompt)
        correct = plan.is_correct(question.qid)
        if not correct and self.backbone.refuses(question):
            text = ""
        elif correct:
            text = self.backbone.phrase_correct(question, seed=self.name)
        else:
            text = self.backbone.phrase_incorrect(question, seed=self.name)
        return ModelAnswer(qid=question.qid, text=text,
                           planned_correct=correct,
                           perception=perception, prompt=prompt)


def setting_for(dataset_questions: Sequence[Question]) -> str:
    """Infer the Table II setting from a dataset's composition."""
    if any(q.question_type is QuestionType.MULTIPLE_CHOICE
           for q in dataset_questions):
        return WITH_CHOICE
    return NO_CHOICE
