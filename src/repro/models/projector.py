"""Projection unit: visual embedding -> LLM token space (Fig. 2, middle).

In a real VLM the projector is an MLP mapping encoder features into the
language model's embedding space.  In the simulation it is the component
that fixes how many visual tokens reach the LLM and applies an alignment
quality factor (poorly aligned projectors lose information even when the
encoder saw the figure clearly).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Projector:
    """Linear/MLP projection with an alignment-quality factor."""

    name: str = "mlp2x"
    tokens_out: int = 576
    alignment: float = 1.0  # visual-text alignment quality in (0, 1]

    def __post_init__(self) -> None:
        if self.tokens_out <= 0:
            raise ValueError("token count must be positive")
        if not 0.0 < self.alignment <= 1.0:
            raise ValueError("alignment must be in (0, 1]")

    def project(self, perception: float) -> float:
        """Effective visual information handed to the LLM."""
        if not 0.0 <= perception <= 1.0:
            raise ValueError("perception must be in [0, 1]")
        return perception * self.alignment

    def token_budget(self, image_count: int) -> int:
        """Visual tokens consumed by a question's images."""
        if image_count < 0:
            raise ValueError("image count must be non-negative")
        return self.tokens_out * image_count
