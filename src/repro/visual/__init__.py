"""Visual substrate: raster rendering of question figures.

The public entry point is :func:`render`, which turns a
:class:`~repro.core.question.VisualContent` into a grayscale numpy image.
Figures are described declaratively as *scenes* (see
:mod:`repro.visual.scene`); questions without a scene render as a labelled
placeholder so every question always has pixels for the encoder.

Renders are memoized **content-addressed**: the cache key is a digest of
everything that determines the pixels (:func:`content_key`), not the
object identity, so equal-content visuals share one raster across dataset
rebuilds and worker threads, and a recycled ``id()`` can never alias two
different figures.  Cached rasters are returned read-only; call
``.copy()`` to mutate one.
"""

from __future__ import annotations

import base64
import hashlib
import json

import numpy as np

from repro.core.perfstats import LruCache
from repro.core.question import VisualContent
from repro.visual.canvas import Canvas
from repro.visual.resolution import (
    downsample,
    edge_energy,
    legibility_score,
    raster_legibility,
    stroke_legibility,
    visual_legibility,
)
from repro.visual.scene import Scene, draw_scene, render_scene

__all__ = [
    "Canvas",
    "Scene",
    "content_key",
    "render",
    "render_scene",
    "draw_scene",
    "downsample",
    "edge_energy",
    "legibility_score",
    "raster_legibility",
    "stroke_legibility",
    "visual_legibility",
]

def _encode_raster(image: np.ndarray) -> dict:
    """Spill codec: a grayscale raster as a JSON-safe payload."""
    return {
        "shape": list(image.shape),
        "dtype": str(image.dtype),
        "data": base64.b64encode(image.tobytes()).decode("ascii"),
    }


def _decode_raster(payload: dict) -> np.ndarray:
    """Spill codec inverse: rebuild a read-only raster from JSON."""
    image = np.frombuffer(
        base64.b64decode(payload["data"]), dtype=payload["dtype"]
    ).reshape(payload["shape"])
    image.setflags(write=False)
    return image


#: Content-keyed raster cache; 142 questions carry 144 distinct visuals,
#: so the standard collection (and its challenge twin, which shares the
#: same visuals and therefore the same keys) fits with room to spare.
#: Spill-capable: rasters round-trip through base64 for the optional
#: cross-process on-disk tier (see ``repro.core.perfstats``).
_RENDER_CACHE = LruCache(capacity=256, name="render",
                         spill_codec=(_encode_raster, _decode_raster))


def _jsonable(value):
    """JSON encoder fallback for numpy scalars/arrays inside scenes."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"unserialisable scene value: {value!r}")


def content_key(visual: VisualContent) -> str:
    """Stable digest of everything that determines a visual's raster
    and legibility: the render spec, dimensions, type, description and
    declared legibility scale.  Equal-content visuals — however and
    whenever constructed — share one key."""
    payload = json.dumps(
        (
            visual.visual_type.value,
            visual.description,
            visual.render_spec,
            visual.width,
            visual.height,
            visual.legibility_scale,
        ),
        sort_keys=True,
        default=_jsonable,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def render(visual: VisualContent, use_cache: bool = True) -> np.ndarray:
    """Rasterise ``visual`` at its native resolution.

    ``render_spec`` must be empty or ``("scene", [primitives...])``.
    Cached renders are keyed by :func:`content_key` and marked read-only
    so a shared raster cannot be corrupted in place; pass
    ``use_cache=False`` for a private writable copy.
    """
    if not use_cache:
        return _render_uncached(visual)
    key = content_key(visual)
    image = _RENDER_CACHE.get(key)
    if image is None:
        image = _render_uncached(visual)
        image.setflags(write=False)
        _RENDER_CACHE.put(key, image)
    return image


def _render_uncached(visual: VisualContent) -> np.ndarray:
    if visual.render_spec:
        kind = visual.render_spec[0]
        if kind != "scene":
            raise ValueError(f"unknown render spec kind: {kind!r}")
        return render_scene(visual.render_spec[1], visual.width,
                            visual.height)
    return _placeholder(visual)


def _placeholder(visual: VisualContent) -> np.ndarray:
    """A framed placeholder showing the visual type and description."""
    canvas = Canvas(visual.width, visual.height)
    canvas.rect(4, 4, visual.width - 9, visual.height - 9, thickness=2)
    canvas.text(14, 14, visual.visual_type.value.upper())
    # wrap the description into short lines
    words = visual.description.split()
    line, y = "", 40
    for word in words:
        if len(line) + len(word) + 1 > 38:
            canvas.text(14, y, line)
            y += 12
            line = word
            if y > visual.height - 20:
                break
        else:
            line = f"{line} {word}".strip()
    if line and y <= visual.height - 20:
        canvas.text(14, y, line)
    return canvas.pixels
