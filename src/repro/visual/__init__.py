"""Visual substrate: raster rendering of question figures.

The public entry point is :func:`render`, which turns a
:class:`~repro.core.question.VisualContent` into a grayscale numpy image.
Figures are described declaratively as *scenes* (see
:mod:`repro.visual.scene`); questions without a scene render as a labelled
placeholder so every question always has pixels for the encoder.
"""

from __future__ import annotations

import numpy as np

from repro.core.question import VisualContent
from repro.visual.canvas import Canvas
from repro.visual.resolution import (
    downsample,
    edge_energy,
    legibility_score,
    stroke_legibility,
    visual_legibility,
)
from repro.visual.scene import Scene, draw_scene, render_scene

__all__ = [
    "Canvas",
    "Scene",
    "render",
    "render_scene",
    "draw_scene",
    "downsample",
    "edge_energy",
    "legibility_score",
    "stroke_legibility",
    "visual_legibility",
]

_CACHE: dict = {}
_CACHE_LIMIT = 256


def render(visual: VisualContent, use_cache: bool = True) -> np.ndarray:
    """Rasterise ``visual`` at its native resolution.

    ``render_spec`` must be empty or ``("scene", [primitives...])``.  Renders
    are cached by object identity because :class:`VisualContent` is immutable
    and questions are long-lived.
    """
    key = id(visual)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    if visual.render_spec:
        kind = visual.render_spec[0]
        if kind != "scene":
            raise ValueError(f"unknown render spec kind: {kind!r}")
        image = render_scene(visual.render_spec[1], visual.width, visual.height)
    else:
        image = _placeholder(visual)
    if use_cache:
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = image
    return image


def _placeholder(visual: VisualContent) -> np.ndarray:
    """A framed placeholder showing the visual type and description."""
    canvas = Canvas(visual.width, visual.height)
    canvas.rect(4, 4, visual.width - 9, visual.height - 9, thickness=2)
    canvas.text(14, 14, visual.visual_type.value.upper())
    # wrap the description into short lines
    words = visual.description.split()
    line, y = "", 40
    for word in words:
        if len(line) + len(word) + 1 > 38:
            canvas.text(14, y, line)
            y += 12
            line = word
            if y > visual.height - 20:
                break
        else:
            line = f"{line} {word}".strip()
    if line and y <= visual.height - 20:
        canvas.text(14, y, line)
    return canvas.pixels
