"""Image downsampling and legibility measurement for the resolution study.

Section IV-B of the paper downsamples question images 8x and 16x and
measures the pass-rate impact (GPT-4o on the Digital category: 0.49 at
native and 8x, 0.37 at 16x).  We reproduce the mechanism: figures are
rasterised at native resolution, reduced by block averaging, and a
*legibility score* is computed from how much fine-feature contrast survives.
The simulated visual encoder consumes that score.
"""

from __future__ import annotations

import numpy as np

from repro.core.perfstats import JSON_VALUE_CODEC, LruCache
from repro.core.question import VisualContent
from repro.visual.scene import min_stroke_scale

#: Content-keyed memo of raster legibility scores: one entry per
#: (figure content, downsample factor), shared by every encoder and
#: every model in a sweep.  144 visuals x a handful of factors.
_LEGIBILITY_CACHE = LruCache(capacity=4096, name="legibility",
                             spill_codec=JSON_VALUE_CODEC)


def downsample(image: np.ndarray, factor: int) -> np.ndarray:
    """Reduce ``image`` by block-averaging ``factor`` x ``factor`` tiles.

    The image is edge-padded so dimensions need not divide evenly, matching
    what a bilinear resize would do at the borders.
    """
    if factor < 1:
        raise ValueError("downsample factor must be >= 1")
    if factor == 1:
        return image.copy()
    height, width = image.shape[:2]
    pad_h = (-height) % factor
    pad_w = (-width) % factor
    padded = np.pad(image, ((0, pad_h), (0, pad_w)), mode="edge")
    h2, w2 = padded.shape[0] // factor, padded.shape[1] // factor
    blocks = padded.reshape(h2, factor, w2, factor).astype(np.float64)
    return blocks.mean(axis=(1, 3)).round().astype(np.uint8)


def upsample_nearest(image: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upsample (what a model 'sees' after a resize)."""
    if factor < 1:
        raise ValueError("upsample factor must be >= 1")
    return np.repeat(np.repeat(image, factor, axis=0), factor, axis=1)


def edge_energy(image: np.ndarray) -> float:
    """Mean absolute gradient magnitude — a proxy for fine detail."""
    pixels = image.astype(np.float64)
    gx = np.abs(np.diff(pixels, axis=1)).mean() if pixels.shape[1] > 1 else 0.0
    gy = np.abs(np.diff(pixels, axis=0)).mean() if pixels.shape[0] > 1 else 0.0
    return float(gx + gy)


def contrast(image: np.ndarray) -> float:
    """Peak-to-peak intensity range normalised to [0, 1]."""
    pixels = image.astype(np.float64)
    return float((pixels.max() - pixels.min()) / 255.0)


#: Pixels darker than this count as ink in the native raster.
INK_THRESHOLD = 128
#: Reconstructed pixels must stay darker than this to remain visible.
VISIBILITY_THRESHOLD = 230


def legibility_score(image: np.ndarray, factor: int) -> float:
    """Fraction of the native image's ink that stays visible after
    ``factor`` x downsampling, in [0, 1].

    The image is block-averaged down and restored to native size; an ink
    pixel "survives" if its restored block is still visibly darker than
    the background.  Thin strokes wash towards white as the block grows —
    a 1 px line inside a 16 x 16 block averages to near-invisible grey —
    which is exactly the failure mode the paper's 16x experiment hits.
    A blank image scores 1.0 by convention (nothing to lose).
    """
    if factor == 1:
        return 1.0
    ink_rows, ink_cols = np.nonzero(image < INK_THRESHOLD)
    if ink_rows.size == 0:
        return 1.0
    reduced = downsample(image, factor)
    # Index the reduced blocks straight from the ink coordinates: the
    # nearest-neighbour reconstruction of pixel (y, x) is exactly
    # reduced[y // factor, x // factor], so there is no need to
    # materialise a native-size upsampled array.
    visible = reduced[ink_rows // factor, ink_cols // factor] \
        < VISIBILITY_THRESHOLD
    return float(visible.mean())


def stroke_legibility(visual: VisualContent, factor: int) -> float:
    """Analytic legibility from the figure's declared finest feature size.

    ``visual.legibility_scale`` is the smallest semantically-essential
    feature in native pixels (a glyph stroke is ~1 px x its text scale).
    After ``factor`` x downsampling that feature spans
    ``legibility_scale / factor`` pixels; legibility falls off smoothly once
    it drops below one pixel.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    effective = visual.legibility_scale / factor
    if effective >= 1.0:
        return 1.0
    # Smooth roll-off: at half a pixel, half the information is gone.
    return float(max(0.0, effective))


def raster_legibility(visual: VisualContent, factor: int) -> float:
    """Memoized :func:`legibility_score` of a visual's rendered raster.

    Keyed by ``(content_key(visual), factor)``, so twelve models sweeping
    the same 142 figures score each (figure, factor) pair once — the
    score depends only on the pixels and the factor, never on which
    encoder or model asked.
    """
    from repro.visual import content_key, render  # local: avoids a cycle

    key = (content_key(visual), factor)
    score = _LEGIBILITY_CACHE.get(key)
    if score is None:
        score = legibility_score(render(visual), factor)
        _LEGIBILITY_CACHE.put(key, score)
    return score


def visual_legibility(visual: VisualContent, factor: int) -> float:
    """Legibility of a question visual at a downsampling factor.

    Uses the rendered raster when a scene is available (slower, grounded in
    pixels) and the analytic stroke model otherwise; the combined score is
    their product, so *either* vanishing strokes or vanishing image contrast
    degrades perception.
    """
    analytic = stroke_legibility(visual, factor)
    if visual.render_spec:
        return float(raster_legibility(visual, factor) * analytic)
    return analytic


def infer_legibility_scale(scene, text_scale_px: float = 8.0) -> float:
    """Declare a figure's finest feature from its scene description.

    Text glyphs at scale 1 are 5x7 px — call the essential feature the
    glyph body (~8 px per scale unit, tuned so 8x downsampling keeps labels
    readable and 16x does not, matching the paper's observation).
    """
    return float(min_stroke_scale(scene) * text_scale_px)
