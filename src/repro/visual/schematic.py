"""Scene builders for circuit schematics.

These helpers lay out classic schematic idioms — resistor ladders, op-amp
stages, MOS transistor stages, logic-gate networks — as declarative scenes
(see :mod:`repro.visual.scene`).  Geometry is deliberately simple: the goal
is a raster that carries the same information a textbook figure would
(component symbols, values, node labels), not publication-quality art.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.visual.scene import Scene


def _resistor(x: int, y: int, horizontal: bool = True, length: int = 40) -> Scene:
    """A zig-zag resistor symbol starting at ``(x, y)``."""
    scene: Scene = []
    teeth = 6
    amplitude = 6
    points: List[Tuple[int, int]] = [(x, y)]
    step = length / (teeth + 1)
    for i in range(1, teeth + 1):
        offset = amplitude if i % 2 else -amplitude
        if horizontal:
            points.append((int(x + i * step), y + offset))
        else:
            points.append((x + offset, int(y + i * step)))
    if horizontal:
        points.append((x + length, y))
    else:
        points.append((x, y + length))
    scene.append({"op": "polyline", "points": [list(p) for p in points]})
    return scene


def _capacitor(x: int, y: int, horizontal: bool = True, gap: int = 6) -> Scene:
    """A two-plate capacitor symbol centred at ``(x, y)``."""
    plate = 14
    if horizontal:
        return [
            {"op": "line", "p0": [x - gap, y - plate // 2],
             "p1": [x - gap, y + plate // 2], "thickness": 2},
            {"op": "line", "p0": [x + gap, y - plate // 2],
             "p1": [x + gap, y + plate // 2], "thickness": 2},
        ]
    return [
        {"op": "line", "p0": [x - plate // 2, y - gap],
         "p1": [x + plate // 2, y - gap], "thickness": 2},
        {"op": "line", "p0": [x - plate // 2, y + gap],
         "p1": [x + plate // 2, y + gap], "thickness": 2},
    ]


def _ground(x: int, y: int) -> Scene:
    return [
        {"op": "line", "p0": [x, y], "p1": [x, y + 8]},
        {"op": "line", "p0": [x - 10, y + 8], "p1": [x + 10, y + 8]},
        {"op": "line", "p0": [x - 6, y + 12], "p1": [x + 6, y + 12]},
        {"op": "line", "p0": [x - 2, y + 16], "p1": [x + 2, y + 16]},
    ]


def _source(x: int, y: int, label: str) -> Scene:
    return [
        {"op": "circle", "center": [x, y], "radius": 12},
        {"op": "text_centered", "xy": [x, y], "s": label},
    ]


def _opamp(x: int, y: int, size: int = 48) -> Scene:
    """Op-amp triangle with inputs on the left, output at the right apex."""
    half = size // 2
    return [
        {"op": "polyline", "points": [
            [x, y - half], [x, y + half], [x + size, y], [x, y - half]]},
        {"op": "text", "xy": [x + 4, y - half + 8], "s": "-"},
        {"op": "text", "xy": [x + 4, y + half - 14], "s": "+"},
    ]


def _nmos(x: int, y: int, label: str = "") -> Scene:
    """Simplified NMOS symbol: gate at left, drain top, source bottom."""
    scene: Scene = [
        {"op": "line", "p0": [x - 18, y], "p1": [x - 6, y]},           # gate lead
        {"op": "line", "p0": [x - 6, y - 10], "p1": [x - 6, y + 10],
         "thickness": 2},                                              # gate plate
        {"op": "line", "p0": [x, y - 12], "p1": [x, y + 12],
         "thickness": 2},                                              # channel
        {"op": "line", "p0": [x, y - 12], "p1": [x + 14, y - 12]},     # drain arm
        {"op": "line", "p0": [x + 14, y - 12], "p1": [x + 14, y - 22]},
        {"op": "line", "p0": [x, y + 12], "p1": [x + 14, y + 12]},     # source arm
        {"op": "line", "p0": [x + 14, y + 12], "p1": [x + 14, y + 22]},
        {"op": "arrow", "p0": [x + 10, y + 12], "p1": [x + 2, y + 12],
         "head": 4},
    ]
    if label:
        scene.append({"op": "text", "xy": [x - 18, y - 24], "s": label})
    return scene


def resistor_network_scene(
    resistors: Sequence[Tuple[str, str]],
    source_label: str = "VS",
) -> Scene:
    """A series/parallel resistor network drawn as a ladder.

    ``resistors`` is a list of ``(name, value_text)`` pairs.  The first
    resistor is drawn in series with the source; subsequent resistors
    alternate series (horizontal, along the top rail) and shunt (vertical,
    to the bottom rail) positions — the classic ladder topology used in the
    paper's MathVista-style example (Fig. 3).
    """
    scene: Scene = []
    top_y = 90
    bottom_y = 250
    x = 70
    scene += _source(x, (top_y + bottom_y) // 2, source_label)
    scene.append({"op": "line", "p0": [x, top_y + 68],
                  "p1": [x, top_y], "thickness": 1})
    scene.append({"op": "line", "p0": [x, bottom_y - 68],
                  "p1": [x, bottom_y]})
    x += 20
    scene.append({"op": "line", "p0": [x - 20, top_y], "p1": [x, top_y]})
    scene.append({"op": "line", "p0": [x - 20, bottom_y],
                  "p1": [x + 360, bottom_y]})
    for index, (name, value) in enumerate(resistors):
        series = index % 2 == 0
        if series:
            scene += _resistor(x, top_y, horizontal=True)
            scene.append({"op": "text", "xy": [x + 6, top_y - 22],
                          "s": f"{name}={value}"})
            x += 40
        else:
            scene.append({"op": "line", "p0": [x, top_y], "p1": [x + 24, top_y]})
            x += 24
            scene += _resistor(x, top_y, horizontal=False, length=bottom_y - top_y)
            scene.append({"op": "text", "xy": [x + 12, (top_y + bottom_y) // 2],
                          "s": f"{name}={value}"})
    scene.append({"op": "line", "p0": [x, top_y], "p1": [x + 40, top_y]})
    scene += _ground(x + 40, bottom_y)
    return scene


def opamp_stage_scene(
    topology: str,
    r_in_label: str,
    r_f_label: str,
) -> Scene:
    """An inverting or non-inverting op-amp stage with labelled resistors."""
    if topology not in ("inverting", "noninverting"):
        raise ValueError(f"unknown op-amp topology: {topology}")
    scene: Scene = []
    ax, ay = 230, 180
    scene += _opamp(ax, ay)
    # input resistor into the inverting pin
    scene += _resistor(90, ay - 12, horizontal=True, length=60)
    scene.append({"op": "line", "p0": [150, ay - 12], "p1": [ax, ay - 12]})
    scene.append({"op": "text", "xy": [92, ay - 36], "s": r_in_label})
    # feedback resistor over the top
    scene.append({"op": "line", "p0": [ax - 40, ay - 12], "p1": [ax - 40, ay - 70]})
    scene += _resistor(ax - 40, ay - 70, horizontal=True, length=120)
    scene.append({"op": "line", "p0": [ax + 80, ay - 70], "p1": [ax + 80, ay]})
    scene.append({"op": "line", "p0": [ax + 48, ay], "p1": [ax + 110, ay]})
    scene.append({"op": "text", "xy": [ax - 30, ay - 94], "s": r_f_label})
    scene.append({"op": "text", "xy": [ax + 96, ay - 16], "s": "VOUT"})
    if topology == "inverting":
        scene += _ground(ax - 16, ay + 30)
        scene.append({"op": "line", "p0": [ax, ay + 12], "p1": [ax - 16, ay + 12]})
        scene.append({"op": "line", "p0": [ax - 16, ay + 12], "p1": [ax - 16, ay + 30]})
        scene.append({"op": "text", "xy": [54, ay - 18], "s": "VIN"})
    else:
        scene.append({"op": "text", "xy": [ax - 60, ay + 20], "s": "VIN"})
        scene.append({"op": "line", "p0": [ax - 30, ay + 12], "p1": [ax, ay + 12]})
    return scene


def common_source_scene(
    gm_label: str,
    load_label: str,
    with_degeneration: bool = False,
    rs_label: str = "RS",
) -> Scene:
    """A common-source MOS amplifier with a resistive load."""
    scene: Scene = []
    mx, my = 250, 210
    scene += _nmos(mx, my, "M1")
    scene.append({"op": "text", "xy": [mx + 24, my - 6], "s": gm_label})
    # drain load up to VDD
    scene.append({"op": "line", "p0": [mx + 14, my - 22], "p1": [mx + 14, my - 50]})
    scene += _resistor(mx + 14, my - 110, horizontal=False, length=60)
    scene.append({"op": "text", "xy": [mx + 30, my - 90], "s": load_label})
    scene.append({"op": "line", "p0": [mx + 14, my - 110], "p1": [mx + 14, my - 130]})
    scene.append({"op": "text", "xy": [mx + 2, my - 146], "s": "VDD"})
    scene.append({"op": "text", "xy": [mx + 34, my - 40], "s": "VOUT"})
    scene.append({"op": "line", "p0": [mx + 14, my - 36], "p1": [mx + 50, my - 36]})
    # gate drive
    scene.append({"op": "text", "xy": [mx - 70, my - 6], "s": "VIN"})
    scene.append({"op": "line", "p0": [mx - 40, my], "p1": [mx - 18, my]})
    if with_degeneration:
        scene.append({"op": "line", "p0": [mx + 14, my + 22], "p1": [mx + 14, my + 40]})
        scene += _resistor(mx + 14, my + 40, horizontal=False, length=50)
        scene.append({"op": "text", "xy": [mx + 30, my + 60], "s": rs_label})
        scene += _ground(mx + 14, my + 96)
    else:
        scene += _ground(mx + 14, my + 26)
    return scene


def differential_pair_scene(tail_label: str = "ISS") -> Scene:
    """A five-transistor differential pair with a tail current source."""
    scene: Scene = []
    lx, rx, y = 190, 330, 190
    scene += _nmos(lx, y, "M1")
    scene += _nmos(rx, y, "M2")
    # shared source node and tail source
    mid = (lx + rx) // 2 + 14
    scene.append({"op": "line", "p0": [lx + 14, y + 22], "p1": [lx + 14, y + 40]})
    scene.append({"op": "line", "p0": [rx + 14, y + 22], "p1": [rx + 14, y + 40]})
    scene.append({"op": "line", "p0": [lx + 14, y + 40], "p1": [rx + 14, y + 40]})
    scene.append({"op": "circle", "center": [mid, y + 64], "radius": 12})
    scene.append({"op": "arrow", "p0": [mid, y + 56], "p1": [mid, y + 72],
                  "head": 4})
    scene.append({"op": "text", "xy": [mid + 18, y + 58], "s": tail_label})
    scene.append({"op": "line", "p0": [mid, y + 40], "p1": [mid, y + 52]})
    scene += _ground(mid, y + 78)
    # loads
    for x in (lx, rx):
        scene.append({"op": "line", "p0": [x + 14, y - 22], "p1": [x + 14, y - 40]})
        scene += _resistor(x + 14, y - 90, horizontal=False, length=50)
        scene.append({"op": "line", "p0": [x + 14, y - 90], "p1": [x + 14, y - 104]})
    scene.append({"op": "text", "xy": [lx + 30, y - 74], "s": "RD"})
    scene.append({"op": "text", "xy": [rx + 30, y - 74], "s": "RD"})
    scene.append({"op": "line", "p0": [lx + 14, y - 104], "p1": [rx + 14, y - 104]})
    scene.append({"op": "text", "xy": [mid - 12, y - 120], "s": "VDD"})
    scene.append({"op": "text", "xy": [lx - 66, y - 6], "s": "VIN+"})
    scene.append({"op": "text", "xy": [rx - 66, y - 6], "s": "VIN-"})
    return scene


def logic_network_scene(
    gates: Sequence[Tuple[str, str, Sequence[str]]],
    output_label: str = "F",
) -> Scene:
    """A small combinational network drawn left-to-right.

    ``gates`` is a list of ``(gate_type, gate_name, input_labels)``; gates
    are placed in columns of two and the last gate drives the output.
    """
    scene: Scene = []
    x0, y0 = 90, 80
    positions: Dict[str, Tuple[int, int]] = {}
    for index, (gate_type, name, inputs) in enumerate(gates):
        col, row = divmod(index, 2)
        gx = x0 + col * 130
        gy = y0 + row * 110
        positions[name] = (gx, gy)
        scene += _gate_symbol(gate_type, gx, gy, name)
        for j, label in enumerate(inputs):
            iy = gy + 10 + j * 16
            scene.append({"op": "line", "p0": [gx - 30, iy], "p1": [gx, iy]})
            if label in positions:
                px, py = positions[label]
                scene.append({"op": "polyline", "points": [
                    [px + 64, py + 20], [gx - 30, iy]]})
            else:
                scene.append({"op": "text", "xy": [gx - 58, iy - 4], "s": label})
    last_name = gates[-1][1]
    lx, ly = positions[last_name]
    scene.append({"op": "line", "p0": [lx + 64, ly + 20], "p1": [lx + 100, ly + 20]})
    scene.append({"op": "text", "xy": [lx + 106, ly + 14], "s": output_label})
    return scene


def _gate_symbol(gate_type: str, x: int, y: int, name: str) -> Scene:
    """A rectangular IEC-style gate body labelled with its function."""
    label = {
        "AND": "&", "OR": ">1", "NOT": "1", "NAND": "&", "NOR": ">1",
        "XOR": "=1", "XNOR": "=1", "BUF": "1",
    }.get(gate_type.upper(), gate_type.upper())
    scene: Scene = [
        {"op": "rect", "xy": [x, y], "size": [56, 40]},
        {"op": "text_centered", "xy": [x + 28, y + 14], "s": label},
        {"op": "text", "xy": [x + 6, y + 44], "s": name},
    ]
    if gate_type.upper() in ("NAND", "NOR", "XNOR", "NOT"):
        scene.append({"op": "circle", "center": [x + 60, y + 20], "radius": 4})
        scene.append({"op": "line", "p0": [x + 64, y + 20], "p1": [x + 64, y + 20]})
    return scene


def flash_adc_scene(bits: int) -> Scene:
    """A flash ADC: resistor ladder plus a comparator bank and encoder."""
    scene: Scene = []
    levels = 2 ** bits - 1
    ladder_x = 110
    top, bottom = 50, 320
    scene.append({"op": "text", "xy": [ladder_x - 30, top - 18], "s": "VREF"})
    span = bottom - top
    for i in range(levels):
        y = top + int(span * i / levels)
        scene += _resistor(ladder_x, y, horizontal=False,
                           length=max(16, span // levels - 4))
    scene += _ground(ladder_x, bottom + 4)
    # comparators
    for i in range(min(levels, 7)):
        cy = top + 20 + int((span - 40) * i / max(1, min(levels, 7) - 1))
        scene += _opamp(ladder_x + 80, cy, size=32)
        scene.append({"op": "line", "p0": [ladder_x, cy - 8],
                      "p1": [ladder_x + 80, cy - 8]})
        scene.append({"op": "line", "p0": [ladder_x + 112, cy],
                      "p1": [ladder_x + 150, cy]})
    scene.append({"op": "rect", "xy": [ladder_x + 150, top + 10],
                  "size": [80, span - 20]})
    scene.append({"op": "text_centered",
                  "xy": [ladder_x + 190, (top + bottom) // 2 - 10],
                  "s": "ENC"})
    scene.append({"op": "text", "xy": [ladder_x + 240, (top + bottom) // 2 - 4],
                  "s": f"{bits}B"})
    scene.append({"op": "text", "xy": [ladder_x + 40, bottom + 26], "s": "VIN"})
    return scene


def bode_plot_scene(
    corner_decades: Sequence[float],
    slopes_db_per_dec: Sequence[float],
    start_db: float = 40.0,
) -> Scene:
    """A piecewise-linear Bode magnitude asymptote plot.

    ``corner_decades`` are the log10 corner frequencies; ``slopes_db_per_dec``
    has one more entry than corners (slope of each segment).
    """
    if len(slopes_db_per_dec) != len(corner_decades) + 1:
        raise ValueError("need one more slope than corner")
    scene: Scene = []
    x0, y0, x1, y1 = 70, 40, 460, 300
    scene.append({"op": "line", "p0": [x0, y1], "p1": [x1, y1]})  # freq axis
    scene.append({"op": "line", "p0": [x0, y0], "p1": [x0, y1]})  # dB axis
    scene.append({"op": "text", "xy": [x1 - 60, y1 + 10], "s": "LOG F HZ"})
    scene.append({"op": "text", "xy": [x0 - 58, y0 - 4], "s": "DB"})
    decades = [0.0] + list(corner_decades) + [8.0]
    px_per_dec = (x1 - x0) / 8.0
    px_per_db = 2.2
    points: List[List[float]] = []
    db = start_db
    for seg in range(len(decades) - 1):
        x_start = x0 + decades[seg] * px_per_dec
        x_end = x0 + decades[seg + 1] * px_per_dec
        points.append([x_start, y1 - (db - 0) * px_per_db - 20])
        db += slopes_db_per_dec[seg] * (decades[seg + 1] - decades[seg])
        points.append([x_end, y1 - db * px_per_db - 20])
    scene.append({"op": "polyline", "points": points, "thickness": 2})
    for corner in corner_decades:
        cx = x0 + corner * px_per_dec
        scene.append({"op": "line", "p0": [cx, y1], "p1": [cx, y1 - 6]})
        scene.append({"op": "text", "xy": [cx - 14, y1 + 10],
                      "s": f"1E{int(corner)}"})
    return scene
