"""A numpy raster canvas with the drawing primitives renderers need.

Images are single-channel ``uint8`` arrays with white (255) background and
dark ink; renderers draw in "ink levels" so layouts can distinguish layers by
grey value.  Coordinates are ``(x, y)`` with the origin at the top-left, as
in conventional raster graphics.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.visual.glyphs import (
    GLYPH_HEIGHT,
    GLYPH_WIDTH,
    glyph_bitmap,
    text_width,
)

WHITE = 255
BLACK = 0

#: Boolean glyph masks memoized per ``(character, scale)``.  Scaling is
#: nearest-neighbour (``np.repeat`` on both axes), which reproduces the
#: per-bit ``fill_rect`` tiling of the original scalar renderer exactly.
_GLYPH_MASKS: dict = {}


def _glyph_mask(character: str, scale: int) -> np.ndarray:
    """The glyph as a read-only boolean mask upscaled by ``scale``."""
    cached = _GLYPH_MASKS.get((character, scale))
    if cached is None:
        mask = np.array(glyph_bitmap(character), dtype=bool)
        if scale != 1:
            mask = np.repeat(np.repeat(mask, scale, axis=0), scale, axis=1)
        mask.setflags(write=False)
        _GLYPH_MASKS[(character, scale)] = cached = mask
    return cached


class Canvas:
    """A mutable grayscale raster with vector-ish drawing primitives."""

    def __init__(self, width: int, height: int, background: int = WHITE):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self.pixels = np.full((height, width), background, dtype=np.uint8)

    # -- low-level ---------------------------------------------------------

    def set_pixel(self, x: int, y: int, ink: int = BLACK) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self.pixels[y, x] = ink

    def _stroke_point(self, x: int, y: int, ink: int, thickness: int) -> None:
        if thickness <= 1:
            self.set_pixel(x, y, ink)
            return
        radius = thickness // 2
        x0 = max(0, x - radius)
        x1 = min(self.width, x + radius + 1)
        y0 = max(0, y - radius)
        y1 = min(self.height, y + radius + 1)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = ink

    def _paint_points(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ink: int,
        thickness: int = 1,
    ) -> None:
        """Vectorized equivalent of ``_stroke_point`` over many points.

        Single-pixel strokes become one clipped fancy-index assignment;
        thick strokes expand each point into its ``thickness // 2``
        square of offsets first.  Because every point writes the same
        ink, the unordered union is byte-identical to the scalar loop.
        """
        if xs.size == 0:
            return
        if thickness > 1:
            radius = thickness // 2
            offsets = np.arange(-radius, radius + 1)
            grid_x = xs[:, None, None] + offsets[None, None, :]
            grid_y = ys[:, None, None] + offsets[None, :, None]
            grid_x, grid_y = np.broadcast_arrays(grid_x, grid_y)
            xs, ys = grid_x.ravel(), grid_y.ravel()
        keep = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        self.pixels[ys[keep], xs[keep]] = ink

    def _blit_mask(
        self, x: int, y: int, mask: np.ndarray, ink: int
    ) -> None:
        """Paint ``ink`` through a boolean ``mask`` whose top-left corner
        lands at ``(x, y)``, clipping against the canvas bounds the same
        way ``set_pixel``/``fill_rect`` do."""
        height, width = mask.shape
        x0, y0 = max(0, x), max(0, y)
        x1 = min(self.width, x + width)
        y1 = min(self.height, y + height)
        if x0 >= x1 or y0 >= y1:
            return
        window = mask[y0 - y:y1 - y, x0 - x:x1 - x]
        self.pixels[y0:y1, x0:x1][window] = ink

    # -- primitives ----------------------------------------------------------

    def line(
        self,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
        ink: int = BLACK,
        thickness: int = 1,
    ) -> None:
        """Bresenham line from ``(x0, y0)`` to ``(x1, y1)``."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            self._stroke_point(x, y, ink, thickness)
            if x == x1 and y == y1:
                break
            err2 = 2 * err
            if err2 >= dy:
                err += dy
                x += sx
            if err2 <= dx:
                err += dx
                y += sy

    def polyline(
        self,
        points: Sequence[Tuple[int, int]],
        ink: int = BLACK,
        thickness: int = 1,
    ) -> None:
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            self.line(x0, y0, x1, y1, ink, thickness)

    def rect(
        self,
        x: int,
        y: int,
        width: int,
        height: int,
        ink: int = BLACK,
        thickness: int = 1,
    ) -> None:
        """Rectangle outline with top-left corner ``(x, y)``."""
        self.line(x, y, x + width, y, ink, thickness)
        self.line(x + width, y, x + width, y + height, ink, thickness)
        self.line(x + width, y + height, x, y + height, ink, thickness)
        self.line(x, y + height, x, y, ink, thickness)

    def fill_rect(
        self, x: int, y: int, width: int, height: int, ink: int = BLACK
    ) -> None:
        x0 = max(0, x)
        y0 = max(0, y)
        x1 = min(self.width, x + width)
        y1 = min(self.height, y + height)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = ink

    def hatch_rect(
        self,
        x: int,
        y: int,
        width: int,
        height: int,
        ink: int = BLACK,
        pitch: int = 6,
    ) -> None:
        """Rectangle outline filled with diagonal hatching (layout layers)."""
        self.rect(x, y, width, height, ink)
        # A slope-1 Bresenham line from (x0, y0) to (x0+n, y0+n) is exactly
        # the pixel run (x0+i, y0+i) for i = 0..n, so the diagonals can be
        # generated arithmetically and painted in one masked assignment.
        columns = []
        rows = []
        for offset in range(-height, width, pitch):
            x0 = x + max(0, offset)
            y0 = y + max(0, -offset)
            length = min(width - max(0, offset), height - max(0, -offset))
            if length > 0:
                steps = np.arange(length + 1)
                columns.append(x0 + steps)
                rows.append(y0 + steps)
        if columns:
            self._paint_points(np.concatenate(columns),
                               np.concatenate(rows), ink)

    def circle(
        self, cx: int, cy: int, radius: int, ink: int = BLACK, thickness: int = 1
    ) -> None:
        """Midpoint circle outline."""
        # The integer midpoint recurrence picks the pixels; painting them
        # is deferred to one vectorized masked assignment.
        x, y = radius, 0
        err = 1 - radius
        columns = []
        rows = []
        while x >= y:
            columns.extend((cx + x, cx - x, cx + x, cx - x,
                            cx + y, cx - y, cx + y, cx - y))
            rows.extend((cy + y, cy + y, cy - y, cy - y,
                         cy + x, cy + x, cy - x, cy - x))
            y += 1
            if err < 0:
                err += 2 * y + 1
            else:
                x -= 1
                err += 2 * (y - x) + 1
        self._paint_points(np.asarray(columns), np.asarray(rows),
                           ink, thickness)

    def fill_circle(self, cx: int, cy: int, radius: int, ink: int = BLACK) -> None:
        for dy in range(-radius, radius + 1):
            span = int(math.isqrt(radius * radius - dy * dy))
            self.fill_rect(cx - span, cy + dy, 2 * span + 1, 1, ink)

    def arrow(
        self,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
        ink: int = BLACK,
        head: int = 5,
        thickness: int = 1,
    ) -> None:
        """A line with an arrowhead at ``(x1, y1)``."""
        self.line(x0, y0, x1, y1, ink, thickness)
        angle = math.atan2(y1 - y0, x1 - x0)
        for side in (-1, 1):
            theta = angle + side * (math.pi - math.pi / 6)
            hx = int(round(x1 + head * math.cos(theta)))
            hy = int(round(y1 + head * math.sin(theta)))
            self.line(x1, y1, hx, hy, ink, thickness)

    def text(
        self,
        x: int,
        y: int,
        message: str,
        ink: int = BLACK,
        scale: int = 1,
    ) -> None:
        """Draw ``message`` with its top-left corner at ``(x, y)``."""
        cursor = x
        for character in message:
            self._blit_mask(cursor, y, _glyph_mask(character, scale), ink)
            cursor += (GLYPH_WIDTH + 1) * scale

    def text_centered(
        self,
        cx: int,
        cy: int,
        message: str,
        ink: int = BLACK,
        scale: int = 1,
    ) -> None:
        """Draw ``message`` centred on ``(cx, cy)``."""
        x = cx - text_width(message, scale) // 2
        y = cy - (GLYPH_HEIGHT * scale) // 2
        self.text(x, y, message, ink, scale)

    # -- statistics ------------------------------------------------------------

    def ink_fraction(self) -> float:
        """Fraction of non-background pixels (used in renderer tests)."""
        return float(np.count_nonzero(self.pixels != WHITE)) / self.pixels.size

    def copy(self) -> "Canvas":
        clone = Canvas(self.width, self.height)
        clone.pixels = self.pixels.copy()
        return clone
