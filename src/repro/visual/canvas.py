"""A numpy raster canvas with the drawing primitives renderers need.

Images are single-channel ``uint8`` arrays with white (255) background and
dark ink; renderers draw in "ink levels" so layouts can distinguish layers by
grey value.  Coordinates are ``(x, y)`` with the origin at the top-left, as
in conventional raster graphics.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.visual.glyphs import (
    GLYPH_HEIGHT,
    GLYPH_WIDTH,
    glyph_bitmap,
    text_width,
)

WHITE = 255
BLACK = 0


class Canvas:
    """A mutable grayscale raster with vector-ish drawing primitives."""

    def __init__(self, width: int, height: int, background: int = WHITE):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self.pixels = np.full((height, width), background, dtype=np.uint8)

    # -- low-level ---------------------------------------------------------

    def set_pixel(self, x: int, y: int, ink: int = BLACK) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self.pixels[y, x] = ink

    def _stroke_point(self, x: int, y: int, ink: int, thickness: int) -> None:
        if thickness <= 1:
            self.set_pixel(x, y, ink)
            return
        radius = thickness // 2
        x0 = max(0, x - radius)
        x1 = min(self.width, x + radius + 1)
        y0 = max(0, y - radius)
        y1 = min(self.height, y + radius + 1)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = ink

    # -- primitives ----------------------------------------------------------

    def line(
        self,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
        ink: int = BLACK,
        thickness: int = 1,
    ) -> None:
        """Bresenham line from ``(x0, y0)`` to ``(x1, y1)``."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            self._stroke_point(x, y, ink, thickness)
            if x == x1 and y == y1:
                break
            err2 = 2 * err
            if err2 >= dy:
                err += dy
                x += sx
            if err2 <= dx:
                err += dx
                y += sy

    def polyline(
        self,
        points: Sequence[Tuple[int, int]],
        ink: int = BLACK,
        thickness: int = 1,
    ) -> None:
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            self.line(x0, y0, x1, y1, ink, thickness)

    def rect(
        self,
        x: int,
        y: int,
        width: int,
        height: int,
        ink: int = BLACK,
        thickness: int = 1,
    ) -> None:
        """Rectangle outline with top-left corner ``(x, y)``."""
        self.line(x, y, x + width, y, ink, thickness)
        self.line(x + width, y, x + width, y + height, ink, thickness)
        self.line(x + width, y + height, x, y + height, ink, thickness)
        self.line(x, y + height, x, y, ink, thickness)

    def fill_rect(
        self, x: int, y: int, width: int, height: int, ink: int = BLACK
    ) -> None:
        x0 = max(0, x)
        y0 = max(0, y)
        x1 = min(self.width, x + width)
        y1 = min(self.height, y + height)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = ink

    def hatch_rect(
        self,
        x: int,
        y: int,
        width: int,
        height: int,
        ink: int = BLACK,
        pitch: int = 6,
    ) -> None:
        """Rectangle outline filled with diagonal hatching (layout layers)."""
        self.rect(x, y, width, height, ink)
        for offset in range(-height, width, pitch):
            x0 = x + max(0, offset)
            y0 = y + max(0, -offset)
            length = min(width - max(0, offset), height - max(0, -offset))
            if length > 0:
                self.line(x0, y0, x0 + length, y0 + length, ink)

    def circle(
        self, cx: int, cy: int, radius: int, ink: int = BLACK, thickness: int = 1
    ) -> None:
        """Midpoint circle outline."""
        x, y = radius, 0
        err = 1 - radius
        while x >= y:
            for px, py in (
                (cx + x, cy + y), (cx - x, cy + y),
                (cx + x, cy - y), (cx - x, cy - y),
                (cx + y, cy + x), (cx - y, cy + x),
                (cx + y, cy - x), (cx - y, cy - x),
            ):
                self._stroke_point(px, py, ink, thickness)
            y += 1
            if err < 0:
                err += 2 * y + 1
            else:
                x -= 1
                err += 2 * (y - x) + 1

    def fill_circle(self, cx: int, cy: int, radius: int, ink: int = BLACK) -> None:
        for dy in range(-radius, radius + 1):
            span = int(math.isqrt(radius * radius - dy * dy))
            self.fill_rect(cx - span, cy + dy, 2 * span + 1, 1, ink)

    def arrow(
        self,
        x0: int,
        y0: int,
        x1: int,
        y1: int,
        ink: int = BLACK,
        head: int = 5,
        thickness: int = 1,
    ) -> None:
        """A line with an arrowhead at ``(x1, y1)``."""
        self.line(x0, y0, x1, y1, ink, thickness)
        angle = math.atan2(y1 - y0, x1 - x0)
        for side in (-1, 1):
            theta = angle + side * (math.pi - math.pi / 6)
            hx = int(round(x1 + head * math.cos(theta)))
            hy = int(round(y1 + head * math.sin(theta)))
            self.line(x1, y1, hx, hy, ink, thickness)

    def text(
        self,
        x: int,
        y: int,
        message: str,
        ink: int = BLACK,
        scale: int = 1,
    ) -> None:
        """Draw ``message`` with its top-left corner at ``(x, y)``."""
        cursor = x
        for character in message:
            bitmap = glyph_bitmap(character)
            for row, bits in enumerate(bitmap):
                for col, bit in enumerate(bits):
                    if bit:
                        if scale == 1:
                            self.set_pixel(cursor + col, y + row, ink)
                        else:
                            self.fill_rect(
                                cursor + col * scale,
                                y + row * scale,
                                scale,
                                scale,
                                ink,
                            )
            cursor += (GLYPH_WIDTH + 1) * scale

    def text_centered(
        self,
        cx: int,
        cy: int,
        message: str,
        ink: int = BLACK,
        scale: int = 1,
    ) -> None:
        """Draw ``message`` centred on ``(cx, cy)``."""
        x = cx - text_width(message, scale) // 2
        y = cy - (GLYPH_HEIGHT * scale) // 2
        self.text(x, y, message, ink, scale)

    # -- statistics ------------------------------------------------------------

    def ink_fraction(self) -> float:
        """Fraction of non-background pixels (used in renderer tests)."""
        return float(np.count_nonzero(self.pixels != WHITE)) / self.pixels.size

    def copy(self) -> "Canvas":
        clone = Canvas(self.width, self.height)
        clone.pixels = self.pixels.copy()
        return clone
