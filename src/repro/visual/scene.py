"""Declarative scene description and the interpreter that rasterises it.

Question generators do not draw pixels; they build *scenes* — lists of
primitive dictionaries — via the builder helpers in the sibling modules
(:mod:`repro.visual.schematic`, :mod:`repro.visual.diagram`, ...).  A scene
is JSON-like and cheap to store inside a
:class:`~repro.core.question.VisualContent`; the raster is produced lazily by
:func:`render_scene` when a model actually looks at the image.

Supported primitive ops::

    {"op": "line", "p0": [x, y], "p1": [x, y], "thickness": 1, "ink": 0}
    {"op": "polyline", "points": [[x, y], ...], "thickness": 1}
    {"op": "rect", "xy": [x, y], "size": [w, h], "thickness": 1}
    {"op": "fill_rect", "xy": [x, y], "size": [w, h], "ink": 0}
    {"op": "hatch_rect", "xy": [x, y], "size": [w, h], "pitch": 6}
    {"op": "circle", "center": [x, y], "radius": r}
    {"op": "fill_circle", "center": [x, y], "radius": r}
    {"op": "arrow", "p0": [x, y], "p1": [x, y], "head": 5}
    {"op": "text", "xy": [x, y], "s": "label", "scale": 1}
    {"op": "text_centered", "xy": [x, y], "s": "label", "scale": 1}

Coordinates are native-resolution pixels (the canvas default is 512x384).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.visual.canvas import BLACK, Canvas

Scene = List[Dict]


def _point(value) -> tuple:
    x, y = value
    return int(round(x)), int(round(y))


def render_scene(scene: Sequence[Dict], width: int, height: int) -> np.ndarray:
    """Rasterise ``scene`` onto a fresh white canvas and return the pixels."""
    canvas = Canvas(width, height)
    draw_scene(canvas, scene)
    return canvas.pixels


def draw_scene(canvas: Canvas, scene: Sequence[Dict]) -> None:
    """Draw every primitive of ``scene`` onto ``canvas`` in order."""
    for element in scene:
        op = element.get("op")
        ink = int(element.get("ink", BLACK))
        if op == "line":
            x0, y0 = _point(element["p0"])
            x1, y1 = _point(element["p1"])
            canvas.line(x0, y0, x1, y1, ink, int(element.get("thickness", 1)))
        elif op == "polyline":
            points = [_point(p) for p in element["points"]]
            canvas.polyline(points, ink, int(element.get("thickness", 1)))
        elif op == "rect":
            x, y = _point(element["xy"])
            w, h = _point(element["size"])
            canvas.rect(x, y, w, h, ink, int(element.get("thickness", 1)))
        elif op == "fill_rect":
            x, y = _point(element["xy"])
            w, h = _point(element["size"])
            canvas.fill_rect(x, y, w, h, ink)
        elif op == "hatch_rect":
            x, y = _point(element["xy"])
            w, h = _point(element["size"])
            canvas.hatch_rect(x, y, w, h, ink, int(element.get("pitch", 6)))
        elif op == "circle":
            cx, cy = _point(element["center"])
            canvas.circle(cx, cy, int(element["radius"]), ink,
                          int(element.get("thickness", 1)))
        elif op == "fill_circle":
            cx, cy = _point(element["center"])
            canvas.fill_circle(cx, cy, int(element["radius"]), ink)
        elif op == "arrow":
            x0, y0 = _point(element["p0"])
            x1, y1 = _point(element["p1"])
            canvas.arrow(x0, y0, x1, y1, ink, int(element.get("head", 5)),
                         int(element.get("thickness", 1)))
        elif op == "text":
            x, y = _point(element["xy"])
            canvas.text(x, y, str(element["s"]), ink, int(element.get("scale", 1)))
        elif op == "text_centered":
            x, y = _point(element["xy"])
            canvas.text_centered(x, y, str(element["s"]), ink,
                                 int(element.get("scale", 1)))
        else:
            raise ValueError(f"unknown scene op: {op!r}")


def translate(scene: Sequence[Dict], dx: float, dy: float) -> Scene:
    """A copy of ``scene`` with every coordinate shifted by ``(dx, dy)``."""
    shifted: Scene = []
    for element in scene:
        clone = dict(element)
        for key in ("p0", "p1", "xy", "center"):
            if key in clone:
                x, y = clone[key]
                clone[key] = [x + dx, y + dy]
        if "points" in clone:
            clone["points"] = [[x + dx, y + dy] for x, y in clone["points"]]
        shifted.append(clone)
    return shifted


def scene_bounds(scene: Sequence[Dict]) -> tuple:
    """Bounding box ``(x0, y0, x1, y1)`` of all scene coordinates."""
    xs: List[float] = []
    ys: List[float] = []
    for element in scene:
        for key in ("p0", "p1", "xy", "center"):
            if key in element:
                x, y = element[key]
                xs.append(x)
                ys.append(y)
        if "points" in element:
            for x, y in element["points"]:
                xs.append(x)
                ys.append(y)
        if "size" in element and "xy" in element:
            x, y = element["xy"]
            w, h = element["size"]
            xs.append(x + w)
            ys.append(y + h)
    if not xs:
        return (0.0, 0.0, 0.0, 0.0)
    return (min(xs), min(ys), max(xs), max(ys))


def min_stroke_scale(scene: Sequence[Dict]) -> float:
    """Smallest semantically-meaningful feature size in the scene, in pixels.

    Text glyph strokes are the finest features (1 px per glyph pixel at
    ``scale`` 1); line thicknesses come next.  The resolution study uses
    this to estimate at which downsampling factor a figure stops being
    legible.
    """
    finest = float("inf")
    for element in scene:
        op = element.get("op")
        if op in ("text", "text_centered"):
            finest = min(finest, float(element.get("scale", 1)))
        elif op in ("line", "polyline", "rect", "arrow", "circle"):
            finest = min(finest, float(element.get("thickness", 1)))
    if finest == float("inf"):
        finest = 1.0
    return finest
