"""Scene builders for waveforms and x-y curves."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.visual.scene import Scene


def waveform_scene(
    signals: Sequence[Tuple[str, Sequence[int]]],
    cycle_px: int = 36,
) -> Scene:
    """Digital timing waveforms: one row per signal, values 0/1 per cycle."""
    scene: Scene = []
    ox, oy = 80, 60
    high, low = 0, 24
    for row, (name, values) in enumerate(signals):
        base = oy + row * 56
        scene.append({"op": "text", "xy": [20, base + 8], "s": name})
        points: List[List[int]] = []
        x = ox
        previous = None
        for value in values:
            y = base + (high if value else low)
            if previous is not None and previous != value:
                points.append([x, base + (high if previous else low)])
                points.append([x, y])
            elif not points:
                points.append([x, y])
            x += cycle_px
            points.append([x, y])
            previous = value
        scene.append({"op": "polyline", "points": points, "thickness": 2})
    # cycle ruler
    n_cycles = max((len(v) for _, v in signals), default=0)
    ruler_y = oy + len(signals) * 56
    for cycle in range(n_cycles + 1):
        x = ox + cycle * cycle_px
        scene.append({"op": "line", "p0": [x, ruler_y], "p1": [x, ruler_y + 6]})
        if cycle < n_cycles:
            scene.append({"op": "text", "xy": [x + cycle_px // 2 - 3,
                                               ruler_y + 10],
                          "s": str(cycle)})
    return scene


def curve_scene(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    x_label: str = "X",
    y_label: str = "Y",
    log_x: bool = False,
) -> Scene:
    """One or more x-y curves on shared axes, auto-scaled to the canvas."""
    scene: Scene = []
    x0, y0, x1, y1 = 70, 40, 460, 300

    def tx(v: float) -> float:
        return math.log10(v) if log_x and v > 0 else v

    all_x = [tx(x) for _, pts in series for x, _ in pts]
    all_y = [y for _, pts in series for _, y in pts]
    if not all_x:
        raise ValueError("curve_scene needs at least one point")
    min_x, max_x = min(all_x), max(all_x)
    min_y, max_y = min(all_y), max(all_y)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    def to_px(x: float, y: float) -> List[float]:
        px = x0 + (tx(x) - min_x) / span_x * (x1 - x0)
        py = y1 - (y - min_y) / span_y * (y1 - y0 - 20)
        return [px, py]

    scene.append({"op": "arrow", "p0": [x0, y1], "p1": [x1, y1], "head": 6})
    scene.append({"op": "arrow", "p0": [x0, y1], "p1": [x0, y0], "head": 6})
    scene.append({"op": "text", "xy": [x1 - 30, y1 + 10], "s": x_label})
    scene.append({"op": "text", "xy": [x0 - 50, y0], "s": y_label})
    for index, (name, pts) in enumerate(series):
        points = [to_px(x, y) for x, y in pts]
        scene.append({"op": "polyline", "points": points,
                      "thickness": 1 + index})
        if points:
            scene.append({"op": "text",
                          "xy": [points[-1][0] - 30,
                                 points[-1][1] - 14 - 10 * index],
                          "s": name})
    return scene


def step_response_scene(
    settling_value: float,
    overshoot_percent: float,
    label: str = "VOUT",
) -> Scene:
    """A second-order step response with visible overshoot and ringing."""
    points: List[Tuple[float, float]] = []
    zeta = max(0.05, 1.0 / (1.0 + overshoot_percent / 10.0))
    wn = 2.0
    for i in range(160):
        t = i * 0.1
        wd = wn * math.sqrt(max(1e-9, 1 - zeta * zeta))
        y = settling_value * (
            1 - math.exp(-zeta * wn * t)
            * math.cos(wd * t)
        )
        points.append((t, y))
    scene = curve_scene([(label, points)], x_label="T", y_label="V")
    return scene


def shmoo_scene(
    pass_grid: Sequence[Sequence[bool]],
    x_label: str = "VDD",
    y_label: str = "FREQ",
) -> Scene:
    """A shmoo plot: pass (filled) / fail (empty) cells over two axes."""
    scene: Scene = []
    ox, oy = 80, 60
    cell = 24
    for r, row in enumerate(pass_grid):
        for c, passed in enumerate(row):
            x = ox + c * cell
            y = oy + r * cell
            if passed:
                scene.append({"op": "fill_rect", "xy": [x, y],
                              "size": [cell - 2, cell - 2], "ink": 80})
            else:
                scene.append({"op": "rect", "xy": [x, y],
                              "size": [cell - 2, cell - 2]})
    rows = len(pass_grid)
    cols = len(pass_grid[0]) if pass_grid else 0
    scene.append({"op": "text", "xy": [ox + cols * cell + 10,
                                       oy + rows * cell // 2], "s": y_label})
    scene.append({"op": "text", "xy": [ox + cols * cell // 2,
                                       oy + rows * cell + 12], "s": x_label})
    return scene
