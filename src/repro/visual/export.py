"""Image export: PGM/PPM writers and benchmark contact sheets.

The repository has no imaging dependencies, so figures are exported as
portable graymaps (PGM, one byte per pixel) — viewable by practically any
image tool — plus a contact-sheet builder that tiles many question figures
into one overview raster.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.question import Question
from repro.visual import render
from repro.visual.canvas import Canvas


def save_pgm(path: "Path | str", image: np.ndarray) -> Path:
    """Write a grayscale uint8 image as a binary PGM (P5)."""
    if image.ndim != 2:
        raise ValueError("PGM export needs a 2-D grayscale image")
    if image.dtype != np.uint8:
        raise ValueError("image must be uint8")
    path = Path(path)
    with open(path, "wb") as f:
        f.write(f"P5 {image.shape[1]} {image.shape[0]} 255\n".encode())
        f.write(image.tobytes())
    return path


def load_pgm(path: "Path | str") -> np.ndarray:
    """Read back a binary PGM written by :func:`save_pgm`."""
    data = Path(path).read_bytes()
    header, _, rest = data.partition(b"\n")
    fields = header.split()
    if fields[0] != b"P5":
        raise ValueError("not a binary PGM file")
    width, height, maxval = (int(v) for v in fields[1:4])
    if maxval != 255:
        raise ValueError("only 8-bit PGM supported")
    pixels = np.frombuffer(rest, dtype=np.uint8, count=width * height)
    return pixels.reshape(height, width).copy()


def side_by_side(images: Sequence[np.ndarray], gap: int = 8,
                 background: int = 255) -> np.ndarray:
    """Concatenate images horizontally, padding heights to match."""
    if not images:
        raise ValueError("no images")
    height = max(im.shape[0] for im in images)
    padded: List[np.ndarray] = []
    for index, image in enumerate(images):
        pad_rows = height - image.shape[0]
        block = np.pad(image, ((0, pad_rows), (0, 0)), mode="constant",
                       constant_values=background)
        padded.append(block)
        if index != len(images) - 1:
            padded.append(np.full((height, gap), background,
                                  dtype=np.uint8))
    return np.concatenate(padded, axis=1)


def contact_sheet(questions: Sequence[Question], columns: int = 4,
                  thumb_width: int = 192, label: bool = True) -> np.ndarray:
    """Tile question figures into one labelled overview raster."""
    if not questions:
        raise ValueError("no questions")
    if columns < 1:
        raise ValueError("columns must be positive")
    thumbs: List[np.ndarray] = []
    thumb_height = 0
    for question in questions:
        image = render(question.visual)
        step = max(1, image.shape[1] // thumb_width)
        thumb = image[::step, ::step]
        thumbs.append(thumb)
        thumb_height = max(thumb_height, thumb.shape[0])
    label_band = 12 if label else 0
    cell_h = thumb_height + label_band + 4
    cell_w = max(t.shape[1] for t in thumbs) + 4
    rows = math.ceil(len(thumbs) / columns)
    canvas = Canvas(columns * cell_w, rows * cell_h)
    for index, (question, thumb) in enumerate(zip(questions, thumbs)):
        row, col = divmod(index, columns)
        y0 = row * cell_h + label_band
        x0 = col * cell_w + 2
        h, w = thumb.shape
        canvas.pixels[y0:y0 + h, x0:x0 + w] = thumb
        if label:
            canvas.text(x0, row * cell_h + 2, question.qid.upper())
        canvas.rect(col * cell_w, row * cell_h, cell_w - 1, cell_h - 1,
                    ink=200)
    return canvas.pixels


def render_question_card(question: Question,
                         width: int = 560) -> np.ndarray:
    """A Fig.-3-style card: qid, wrapped prompt, figure, options.

    Useful for reviewing authored questions and for contact sheets of the
    benchmark itself.
    """
    figure = render(question.visual)
    prompt_lines = _wrap(question.prompt, width // 6 - 4)
    option_lines: List[str] = []
    if question.is_multiple_choice:
        for letter, choice in zip("ABCD", question.choices):
            option_lines.extend(_wrap(f"{letter}) {choice}",
                                      width // 6 - 4))
    header_h = 16
    text_h = 12 * len(prompt_lines) + 8
    options_h = 12 * len(option_lines) + (8 if option_lines else 0)
    fig_h = figure.shape[0]
    canvas = Canvas(max(width, figure.shape[1] + 8),
                    header_h + text_h + fig_h + options_h + 12)
    canvas.text(4, 4, f"{question.qid.upper()}  "
                      f"[{question.category.short.upper()}]")
    y = header_h
    for line in prompt_lines:
        canvas.text(4, y, line)
        y += 12
    y += 4
    canvas.pixels[y:y + fig_h, 4:4 + figure.shape[1]] = figure
    canvas.rect(3, y - 1, figure.shape[1] + 1, fig_h + 1, ink=180)
    y += fig_h + 6
    for line in option_lines:
        canvas.text(4, y, line)
        y += 12
    return canvas.pixels


def _wrap(text: str, max_chars: int) -> List[str]:
    words = text.split()
    lines: List[str] = []
    current = ""
    for word in words:
        if current and len(current) + 1 + len(word) > max_chars:
            lines.append(current)
            current = word
        else:
            current = f"{current} {word}".strip()
    if current:
        lines.append(current)
    return lines


def export_dataset_figures(dataset: Dataset, out_dir: "Path | str",
                           limit: Optional[int] = None) -> List[Path]:
    """Write every question's primary figure as ``<qid>.pgm``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for index, question in enumerate(dataset):
        if limit is not None and index >= limit:
            break
        written.append(
            save_pgm(out_dir / f"{question.qid}.pgm",
                     render(question.visual)))
    return written
