"""Scene builders for tabular figures: truth tables, K-maps, state tables."""

from __future__ import annotations

from typing import List, Sequence

from repro.visual.scene import Scene


def table_scene(
    rows: Sequence[Sequence[str]],
    col_width: int = 64,
    row_height: int = 26,
    origin: "tuple" = (50, 50),
    header: bool = True,
) -> Scene:
    """A ruled grid of text cells; the first row is the header."""
    if not rows:
        raise ValueError("table needs at least one row")
    ncols = max(len(row) for row in rows)
    nrows = len(rows)
    ox, oy = origin
    scene: Scene = []
    for r in range(nrows + 1):
        y = oy + r * row_height
        scene.append({"op": "line", "p0": [ox, y],
                      "p1": [ox + ncols * col_width, y]})
    for c in range(ncols + 1):
        x = ox + c * col_width
        scene.append({"op": "line", "p0": [x, oy],
                      "p1": [x, oy + nrows * row_height]})
    if header:
        scene.append({"op": "line", "p0": [ox, oy + row_height + 1],
                      "p1": [ox + ncols * col_width, oy + row_height + 1]})
    for r, row in enumerate(rows):
        for c, cell in enumerate(row):
            scene.append({"op": "text_centered",
                          "xy": [ox + c * col_width + col_width // 2,
                                 oy + r * row_height + row_height // 2],
                          "s": str(cell)})
    return scene


def truth_table_scene(
    inputs: Sequence[str],
    outputs: Sequence[str],
    rows: Sequence[Sequence[int]],
) -> Scene:
    """A truth table with input and output column groups."""
    header = list(inputs) + list(outputs)
    body = [[str(v) for v in row] for row in rows]
    scene = table_scene([header] + body, col_width=44, row_height=22)
    # separator between inputs and outputs
    ox, oy = 50, 50
    x = ox + len(inputs) * 44
    scene.append({"op": "line", "p0": [x + 1, oy],
                  "p1": [x + 1, oy + (len(rows) + 1) * 22], "thickness": 2})
    return scene


def kmap_scene(
    variables: Sequence[str],
    values: Sequence[Sequence[str]],
    title: str = "",
) -> Scene:
    """A Karnaugh map with Gray-coded row/column headers.

    ``values`` is the cell grid (2x2, 2x4 or 4x4); row variables are the
    first half of ``variables``, column variables the second half.
    """
    nrows = len(values)
    ncols = len(values[0]) if values else 0
    gray2 = ["0", "1"]
    gray4 = ["00", "01", "11", "10"]
    row_codes = gray2 if nrows == 2 else gray4
    col_codes = gray2 if ncols == 2 else gray4
    half = len(variables) - (1 if ncols == 2 else 2)
    row_vars = "".join(variables[:half])
    col_vars = "".join(variables[half:])
    header = [f"{row_vars}\\{col_vars}"] + col_codes[:ncols]
    body = [[row_codes[r]] + [str(v) for v in row]
            for r, row in enumerate(values)]
    scene = table_scene([header] + body, col_width=56, row_height=30,
                        origin=(80, 80))
    if title:
        scene.append({"op": "text", "xy": [80, 50], "s": title})
    return scene


def state_table_scene(
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "STATE TABLE",
) -> Scene:
    """A sequential-logic state/excitation table."""
    scene = table_scene([list(columns)] + [list(r) for r in rows],
                        col_width=72, row_height=24, origin=(50, 70))
    scene.append({"op": "text", "xy": [50, 44], "s": title})
    return scene


def equation_scene(lines: Sequence[str], numbered: bool = False) -> Scene:
    """Equations rendered as stacked text lines."""
    scene: Scene = []
    for index, line in enumerate(lines):
        prefix = f"{index + 1}) " if numbered else ""
        scene.append({"op": "text", "xy": [60, 70 + index * 40],
                      "s": prefix + line, "scale": 2})
    return scene


def cache_table_scene(
    address_bits: int,
    fields: Sequence[Sequence[str]],
) -> Scene:
    """An address-breakdown figure: bit ruler plus tag/index/offset fields.

    ``fields`` are ``(name, hi_bit, lo_bit)`` triples as strings.
    """
    scene: Scene = []
    ox, oy = 50, 110
    width = 400
    scene.append({"op": "rect", "xy": [ox, oy], "size": [width, 40]})
    cursor = ox
    for name, hi, lo in fields:
        bits = int(hi) - int(lo) + 1
        w = width * bits / address_bits
        scene.append({"op": "line", "p0": [cursor + w, oy],
                      "p1": [cursor + w, oy + 40]})
        scene.append({"op": "text_centered",
                      "xy": [cursor + w / 2, oy + 20], "s": name})
        scene.append({"op": "text", "xy": [cursor + 2, oy - 14], "s": str(hi)})
        cursor += w
    scene.append({"op": "text", "xy": [ox + width - 10, oy - 14], "s": "0"})
    scene.append({"op": "text", "xy": [ox, oy + 54],
                  "s": f"{address_bits}-BIT ADDRESS"})
    return scene
