"""Scene builders for chip-layout style figures.

Layouts are drawn as layered rectangles: each layer gets a distinct grey
level and optionally hatching, echoing how textbook layout figures encode
diffusion / poly / metal.  Also provides cross-section builders used by the
Manufacturing questions (etch stacks, photoresist patterns).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.visual.scene import Scene

#: Grey levels by conventional layer name.
LAYER_INK = {
    "diffusion": 170,
    "poly": 110,
    "metal1": 60,
    "metal2": 30,
    "contact": 0,
    "nwell": 210,
    "resist": 90,
    "oxide": 180,
    "silicon": 220,
}

Rect = Tuple[float, float, float, float]  # x, y, w, h in layout units


def layout_scene(
    layers: Dict[str, Sequence[Rect]],
    scale: float = 30.0,
    origin: Tuple[int, int] = (50, 330),
    labels: Sequence[Tuple[float, float, str]] = (),
    hatch_layers: Sequence[str] = ("poly", "resist"),
) -> Scene:
    """Rectangles per layer, y-up layout coordinates, greyscale by layer."""
    scene: Scene = []
    ox, oy = origin
    hatch = set(hatch_layers)
    for layer, rects in layers.items():
        ink = LAYER_INK.get(layer, 100)
        for x, y, w, h in rects:
            px = ox + x * scale
            py = oy - (y + h) * scale
            pw, ph = w * scale, h * scale
            if layer in hatch:
                scene.append({"op": "hatch_rect", "xy": [px, py],
                              "size": [pw, ph], "ink": ink})
            else:
                scene.append({"op": "fill_rect", "xy": [px, py],
                              "size": [pw, ph], "ink": ink})
                scene.append({"op": "rect", "xy": [px, py],
                              "size": [pw, ph], "ink": 0})
    for x, y, text in labels:
        scene.append({"op": "text", "xy": [ox + x * scale, oy - y * scale],
                      "s": text})
    return scene


def standard_cell_scene(
    cell_widths: Sequence[float],
    row_count: int = 3,
    pin_pitch: float = 0.5,
) -> Scene:
    """Rows of abutted standard cells with power rails and pins."""
    scene: Scene = []
    ox, oy = 40, 60
    row_height = 70
    scale = 26.0
    for row in range(row_count):
        y = oy + row * (row_height + 24)
        # power rails
        scene.append({"op": "fill_rect", "xy": [ox, y], "size": [420, 6],
                      "ink": 60})
        scene.append({"op": "fill_rect", "xy": [ox, y + row_height],
                      "size": [420, 6], "ink": 60})
        scene.append({"op": "text", "xy": [ox + 426, y - 2], "s": "VDD"})
        scene.append({"op": "text", "xy": [ox + 426, y + row_height - 2],
                      "s": "VSS"})
        x = ox
        for index, width in enumerate(cell_widths):
            w = width * scale
            scene.append({"op": "rect", "xy": [x, y + 6],
                          "size": [w, row_height - 6]})
            scene.append({"op": "text_centered",
                          "xy": [x + w / 2, y + row_height / 2],
                          "s": f"C{index}"})
            # pins on a grid
            pin_x = x + pin_pitch * scale
            while pin_x < x + w - 2:
                scene.append({"op": "fill_rect", "xy": [pin_x, y + 18],
                              "size": [4, 4], "ink": 0})
                pin_x += pin_pitch * scale * 2
            x += w
    return scene


def floorplan_scene(
    blocks: Sequence[Tuple[str, float, float, float, float]],
    chip: Tuple[float, float] = (12.0, 10.0),
    scale: float = 30.0,
) -> Scene:
    """Macro blocks inside a chip outline; ``blocks`` are (name, x, y, w, h)."""
    scene: Scene = []
    ox, oy = 60, 340
    cw, ch = chip
    scene.append({"op": "rect", "xy": [ox, oy - ch * scale],
                  "size": [cw * scale, ch * scale], "thickness": 2})
    for name, x, y, w, h in blocks:
        px = ox + x * scale
        py = oy - (y + h) * scale
        scene.append({"op": "rect", "xy": [px, py],
                      "size": [w * scale, h * scale]})
        scene.append({"op": "text_centered",
                      "xy": [px + w * scale / 2, py + h * scale / 2],
                      "s": name})
    return scene


def cross_section_scene(
    stack: Sequence[Tuple[str, float]],
    resist_openings: Sequence[Tuple[float, float]] = (),
    total_width: float = 10.0,
    scale: float = 36.0,
    labels: bool = True,
) -> Scene:
    """A process cross-section: material stack with patterned resist on top.

    ``stack`` lists ``(material, thickness_units)`` from bottom to top;
    ``resist_openings`` are ``(x, width)`` windows etched through the top
    resist layer.  This renders the figure for the paper's BOE over-etch
    example.
    """
    scene: Scene = []
    ox, base_y = 60, 320
    y = base_y
    for material, thickness in stack:
        h = thickness * scale
        y -= h
        ink = LAYER_INK.get(material, 150)
        if material == "resist":
            # draw resist only outside the openings
            segments = _resist_segments(resist_openings, total_width)
            for seg_x, seg_w in segments:
                scene.append({"op": "hatch_rect",
                              "xy": [ox + seg_x * scale, y],
                              "size": [seg_w * scale, h], "ink": ink,
                              "pitch": 5})
        else:
            scene.append({"op": "fill_rect", "xy": [ox, y],
                          "size": [total_width * scale, h], "ink": ink})
            scene.append({"op": "rect", "xy": [ox, y],
                          "size": [total_width * scale, h]})
        if labels:
            scene.append({"op": "text",
                          "xy": [ox + total_width * scale + 8, y + h / 2 - 3],
                          "s": material.upper()})
    return scene


def _resist_segments(
    openings: Sequence[Tuple[float, float]], total_width: float
) -> List[Tuple[float, float]]:
    """Complement of the opening windows within [0, total_width]."""
    segments: List[Tuple[float, float]] = []
    cursor = 0.0
    for x, w in sorted(openings):
        if x > cursor:
            segments.append((cursor, x - cursor))
        cursor = max(cursor, x + w)
    if cursor < total_width:
        segments.append((cursor, total_width - cursor))
    return segments


def mask_pattern_scene(
    features: Sequence[Rect],
    assist_features: Sequence[Rect] = (),
    phase_regions: Sequence[Rect] = (),
    scale: float = 30.0,
) -> Scene:
    """A lithography mask figure: main features, SRAFs and phase regions.

    Used for resolution-enhancement-technique questions (OPC / SRAF / PSM),
    matching the ChipVQA sample in Fig. 3 of the paper.
    """
    scene: Scene = []
    ox, oy = 70, 320
    for x, y, w, h in features:
        scene.append({"op": "fill_rect",
                      "xy": [ox + x * scale, oy - (y + h) * scale],
                      "size": [w * scale, h * scale], "ink": 0})
    for x, y, w, h in assist_features:
        scene.append({"op": "fill_rect",
                      "xy": [ox + x * scale, oy - (y + h) * scale],
                      "size": [w * scale, h * scale], "ink": 120})
    for x, y, w, h in phase_regions:
        scene.append({"op": "hatch_rect",
                      "xy": [ox + x * scale, oy - (y + h) * scale],
                      "size": [w * scale, h * scale], "ink": 80, "pitch": 4})
    return scene
