"""Scene builders for block diagrams, flow charts and graph figures.

Used by the Architecture and Physical Design question generators for
pipeline diagrams, cache hierarchies, NoC topologies, flow charts and
clock/Steiner tree figures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.visual.scene import Scene

BlockSpec = Tuple[str, str]  # (block id, label)


def block_diagram_scene(
    blocks: Sequence[BlockSpec],
    edges: Sequence[Tuple[str, str]],
    columns: int = 4,
    highlight: Sequence[Tuple[str, str]] = (),
) -> Scene:
    """Blocks on a grid with arrows between them.

    ``highlight`` edges are drawn thicker — used e.g. for the bolded bypass
    path the paper's Architecture example mentions.
    """
    scene: Scene = []
    positions: Dict[str, Tuple[int, int]] = {}
    bw, bh = 86, 44
    gap_x, gap_y = 30, 50
    for index, (block_id, label) in enumerate(blocks):
        col, row = index % columns, index // columns
        x = 40 + col * (bw + gap_x)
        y = 60 + row * (bh + gap_y)
        positions[block_id] = (x, y)
        scene.append({"op": "rect", "xy": [x, y], "size": [bw, bh]})
        scene.append({"op": "text_centered",
                      "xy": [x + bw // 2, y + bh // 2], "s": label})
    highlighted = {tuple(edge) for edge in highlight}
    for src, dst in edges:
        x0, y0 = positions[src]
        x1, y1 = positions[dst]
        thickness = 3 if (src, dst) in highlighted else 1
        start = [x0 + bw, y0 + bh // 2]
        end = [x1, y1 + bh // 2]
        if x1 <= x0:  # back edge: route below the row
            drop = max(y0, y1) + bh + 16
            scene.append({"op": "polyline", "points": [
                [x0 + bw // 2, y0 + bh], [x0 + bw // 2, drop],
                [x1 + bw // 2, drop], [x1 + bw // 2, y1 + bh]],
                "thickness": thickness})
            scene.append({"op": "arrow", "p0": [x1 + bw // 2, y1 + bh + 6],
                          "p1": [x1 + bw // 2, y1 + bh], "head": 5,
                          "thickness": thickness})
        else:
            scene.append({"op": "arrow", "p0": start, "p1": end, "head": 5,
                          "thickness": thickness})
    return scene


def pipeline_scene(
    stages: Sequence[str],
    bypass: Optional[Tuple[int, int]] = None,
) -> Scene:
    """A linear pipeline with optional bold bypass from stage i to stage j."""
    scene: Scene = []
    bw, bh = 70, 46
    y = 160
    xs = []
    for index, stage in enumerate(stages):
        x = 36 + index * (bw + 22)
        xs.append(x)
        scene.append({"op": "rect", "xy": [x, y], "size": [bw, bh]})
        scene.append({"op": "text_centered",
                      "xy": [x + bw // 2, y + bh // 2], "s": stage})
        if index:
            scene.append({"op": "arrow", "p0": [x - 22, y + bh // 2],
                          "p1": [x, y + bh // 2], "head": 5})
    if bypass is not None:
        src, dst = bypass
        scene.append({"op": "polyline", "points": [
            [xs[src] + bw // 2, y], [xs[src] + bw // 2, y - 54],
            [xs[dst] + bw // 2, y - 54], [xs[dst] + bw // 2, y - 6]],
            "thickness": 3})
        scene.append({"op": "arrow", "p0": [xs[dst] + bw // 2, y - 10],
                      "p1": [xs[dst] + bw // 2, y], "head": 6, "thickness": 3})
        scene.append({"op": "text",
                      "xy": [(xs[src] + xs[dst]) // 2, y - 70],
                      "s": "BYPASS"})
    return scene


def graph_scene(
    nodes: Sequence[str],
    edges: Sequence[Tuple[str, str]],
    layout: str = "circle",
    node_radius: int = 16,
    weights: Optional[Dict[Tuple[str, str], float]] = None,
) -> Scene:
    """A node-link drawing of a graph (NoC topologies, trees)."""
    scene: Scene = []
    positions = _graph_positions(nodes, layout)
    for src, dst in edges:
        x0, y0 = positions[src]
        x1, y1 = positions[dst]
        scene.append({"op": "line", "p0": [x0, y0], "p1": [x1, y1]})
        if weights and (src, dst) in weights:
            mx, my = (x0 + x1) // 2, (y0 + y1) // 2
            scene.append({"op": "text", "xy": [mx + 4, my - 10],
                          "s": str(weights[(src, dst)])})
    for node in nodes:
        x, y = positions[node]
        scene.append({"op": "fill_circle", "center": [x, y],
                      "radius": node_radius, "ink": 255})
        scene.append({"op": "circle", "center": [x, y], "radius": node_radius})
        scene.append({"op": "text_centered", "xy": [x, y], "s": node})
    return scene


def _graph_positions(
    nodes: Sequence[str], layout: str
) -> Dict[str, Tuple[int, int]]:
    positions: Dict[str, Tuple[int, int]] = {}
    n = len(nodes)
    if layout == "circle":
        cx, cy, radius = 256, 190, 130
        for index, node in enumerate(nodes):
            theta = 2 * math.pi * index / max(n, 1) - math.pi / 2
            positions[node] = (
                int(cx + radius * math.cos(theta)),
                int(cy + radius * math.sin(theta)),
            )
    elif layout == "grid":
        side = max(1, int(math.ceil(math.sqrt(n))))
        for index, node in enumerate(nodes):
            col, row = index % side, index // side
            positions[node] = (90 + col * 110, 70 + row * 90)
    elif layout == "line":
        for index, node in enumerate(nodes):
            positions[node] = (60 + index * 90, 190)
    else:
        raise ValueError(f"unknown graph layout: {layout}")
    return positions


def flow_chart_scene(steps: Sequence[str], loop_back: Optional[int] = None) -> Scene:
    """A vertical flow chart; ``loop_back`` draws an edge from last to step i."""
    scene: Scene = []
    bw, bh = 170, 36
    x = 170
    ys = []
    for index, step in enumerate(steps):
        y = 30 + index * (bh + 18)
        ys.append(y)
        scene.append({"op": "rect", "xy": [x, y], "size": [bw, bh]})
        scene.append({"op": "text_centered",
                      "xy": [x + bw // 2, y + bh // 2], "s": step})
        if index:
            scene.append({"op": "arrow", "p0": [x + bw // 2, y - 18],
                          "p1": [x + bw // 2, y], "head": 5})
    if loop_back is not None and ys:
        scene.append({"op": "polyline", "points": [
            [x + bw, ys[-1] + bh // 2], [x + bw + 40, ys[-1] + bh // 2],
            [x + bw + 40, ys[loop_back] + bh // 2],
            [x + bw, ys[loop_back] + bh // 2]]})
        scene.append({"op": "arrow",
                      "p0": [x + bw + 8, ys[loop_back] + bh // 2],
                      "p1": [x + bw, ys[loop_back] + bh // 2], "head": 5})
    return scene


def tree_scene(
    points: Sequence[Tuple[float, float, str]],
    edges: Sequence[Tuple[int, int]],
    scale: float = 34.0,
    origin: Tuple[int, int] = (60, 310),
    annotate_coords: bool = True,
) -> Scene:
    """A routing-tree figure: labelled points on a coordinate plane.

    ``points`` are ``(x, y, label)`` in routing grid units; the y axis points
    up (converted to raster coordinates internally).  Used for Steiner tree
    and clock-tree questions, matching the paper's Physical Design example.
    """
    scene: Scene = []
    ox, oy = origin
    scene.append({"op": "arrow", "p0": [ox - 20, oy], "p1": [ox + 380, oy],
                  "head": 6})
    scene.append({"op": "arrow", "p0": [ox, oy + 20], "p1": [ox, oy - 270],
                  "head": 6})

    def to_px(px: float, py: float) -> Tuple[int, int]:
        return int(ox + px * scale), int(oy - py * scale)

    for a, b in edges:
        xa, ya, _ = points[a]
        xb, yb, _ = points[b]
        pa, pb = to_px(xa, ya), to_px(xb, yb)
        # rectilinear (L-shaped) edge
        scene.append({"op": "polyline", "points": [
            list(pa), [pb[0], pa[1]], list(pb)], "thickness": 2})
    for px, py, label in points:
        x, y = to_px(px, py)
        scene.append({"op": "fill_circle", "center": [x, y], "radius": 4})
        text = label
        if annotate_coords:
            text = f"{label}({int(px)},{int(py)})"
        scene.append({"op": "text", "xy": [x + 7, y - 12], "s": text})
    return scene


def vlm_architecture_scene(encoder_label: str = "VISUAL ENCODER",
                           projector_label: str = "PROJECTION",
                           llm_label: str = "LLM") -> Scene:
    """Fig. 2 of the paper: the representative VLM pipeline.

    Image and text prompt enter; the encoder's embedding is projected into
    the token space and concatenated with text tokens into the LLM.
    """
    scene = block_diagram_scene(
        [("img", "IMAGE"), ("enc", encoder_label), ("proj", projector_label),
         ("txt", "TEXT PROMPT"), ("tok", "TOKENIZER"), ("llm", llm_label),
         ("out", "OUTPUT TEXT")],
        [("img", "enc"), ("enc", "proj"), ("proj", "llm"),
         ("txt", "tok"), ("tok", "llm"), ("llm", "out")],
        columns=3)
    scene.append({"op": "text", "xy": [40, 20],
                  "s": "REPRESENTATIVE VLM ARCHITECTURE (FIG 2)"})
    return scene
