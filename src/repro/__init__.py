"""ChipVQA reproduction: a VQA benchmark and evaluation harness for chip
design (Yang et al., DATE 2025).

Quickstart::

    from repro import build_chipvqa, EvaluationHarness, build_model

    benchmark = build_chipvqa()              # the 142-question collection
    harness = EvaluationHarness()
    result = harness.zero_shot_standard(build_model("gpt-4o"))
    print(result.pass_at_1())                # ~0.44, as in Table II

Subpackages:

* :mod:`repro.core` — question schema, dataset, harness, metrics, reports
* :mod:`repro.digital` / :mod:`repro.analog` / :mod:`repro.arch` /
  :mod:`repro.physical` / :mod:`repro.manufacturing` — the five discipline
  substrates (real solvers) and their question generators
* :mod:`repro.visual` — declarative figure rendering to numpy rasters
* :mod:`repro.models` — the simulated VLM pipeline and Table II zoo
* :mod:`repro.judge` — hybrid auto/manual answer-equivalence judging
* :mod:`repro.agent` — the designer + vision-tool agent system (Table III)
"""

from repro.core import (
    Category,
    Dataset,
    EvalResult,
    EvaluationHarness,
    ParallelRunner,
    Question,
    QuestionType,
    VisualType,
    WorkUnit,
    build_chipvqa,
    build_chipvqa_challenge,
    run_table2,
    validate_chipvqa,
)
from repro.models import build_model, build_zoo, model_names

__version__ = "1.0.0"

__all__ = [
    "Category",
    "Dataset",
    "EvalResult",
    "EvaluationHarness",
    "ParallelRunner",
    "Question",
    "QuestionType",
    "WorkUnit",
    "VisualType",
    "build_chipvqa",
    "build_chipvqa_challenge",
    "build_model",
    "build_zoo",
    "model_names",
    "run_table2",
    "validate_chipvqa",
    "__version__",
]
