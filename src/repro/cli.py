"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the paper's experiments plus the repository's extensions:

* ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables
* ``resolution`` — the Section IV-B downsampling study
* ``composition`` — the Fig. 1 composition summary
* ``evaluate`` — one model, either collection, any resolution factor
* ``compare`` — paired significance test between two models
* ``list-models`` — the zoo with metadata
* ``export-figures`` — write question figures as PGM images
* ``export-dataset`` — dump the benchmark as JSONL
* ``verify-run`` — audit a run directory's checksummed artifacts
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core import perfstats, results_io
from repro.core.benchmark import build_chipvqa, build_chipvqa_challenge
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.pipeline import PREFETCH_BUILDERS
from repro.core.question import Category
from repro.core.report import (
    CATEGORY_ORDER,
    render_composition,
    render_resolution_study,
    render_table1,
    render_table2,
    render_table3,
)
from repro.core.significance import compare as significance_compare
from repro.models import NO_CHOICE, WITH_CHOICE, build_model, build_zoo
from repro.models.zoo import TABLE2_ROW_ORDER, _ZOO_SPECS


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table1(build_chipvqa()))
    return 0


def _print_cache_stats(stats=None) -> None:
    """Dump the perception-substrate cache counters (docs/PERF.md).

    With a :class:`~repro.core.runner.RunStats`, counters come from the
    run's merged view — which folds in worker-process movement under
    ``--backend process`` — rather than this process's globals, so the
    numbers stay truthful for every backend.
    """
    if isinstance(stats, dict):
        counters = stats or perfstats.snapshot()
    else:
        counters = (stats.perf_caches if stats is not None
                    and stats.perf_caches else perfstats.snapshot())
    counters = dict(counters)
    stages = counters.pop(perfstats.STAGE_TIMINGS_NAME, None)
    print(f"\n{'cache':<12}{'hits':>8}{'misses':>8}{'evict':>7}"
          f"{'size':>7}{'spill':>7}{'hit rate':>10}")
    for name, entry in sorted(counters.items()):
        total = entry.get("hits", 0) + entry.get("misses", 0)
        rate = entry.get("hits", 0) / total if total else 0.0
        spill = entry.get("spill_hits", 0)
        print(f"{name:<12}{entry.get('hits', 0):>8}"
              f"{entry.get('misses', 0):>8}"
              f"{entry.get('evictions', 0):>7}{entry.get('size', 0):>7}"
              f"{spill:>7}{rate:>10.3f}")
    if stages:
        _print_stage_timings(stages)


def _print_stage_timings(stages: dict) -> None:
    """Dump the pipeline's per-stage hot-path timers (docs/PERF.md).

    ``build_wait`` near zero alongside nonzero ``eval`` is the
    signature of a well-overlapped ``--prefetch`` sweep; a serial sweep
    charges the full build time there.
    """
    recorded = sorted({key[:-3] for key in stages if key.endswith("_ns")})
    ordered = [name for name in perfstats.PIPELINE_STAGES
               if name in recorded]
    ordered += [name for name in recorded if name not in ordered]
    print(f"\n{'stage':<12}{'calls':>8}{'seconds':>10}{'ms/call':>10}")
    for name in ordered:
        ns = stages.get(f"{name}_ns", 0)
        calls = stages.get(f"{name}_calls", 0)
        per_call_ms = (ns / 1e6 / calls) if calls else 0.0
        print(f"{name:<12}{calls:>8}{ns / 1e9:>10.3f}"
              f"{per_call_ms:>10.3f}")


def _effective_workers(requested: int,
                       backend: Optional[str] = None) -> int:
    """Clamp ``--workers`` to this machine's CPU count, with a warning.

    More workers than cores cannot help the thread or process backends
    — threads are GIL-bound and processes core-bound — but
    oversubscription does churn context switches, so requests beyond
    ``os.cpu_count()`` are clamped.  The async backend is exempt: its
    workers are in-flight coroutines bounded by the endpoint's request
    budget, not by cores, so ``--backend async --workers 64`` is a
    legitimate configuration on a single-core machine.  Values below 1
    are raised to 1.
    """
    if backend == "async":
        return max(1, requested)
    cpus = os.cpu_count() or 1
    if requested > cpus:
        print(f"warning: --workers {requested} exceeds this machine's "
              f"{cpus} CPU(s); using {cpus}")
        return cpus
    return max(1, requested)


def _effective_nodes(requested: int) -> int:
    """Validate and clamp ``--nodes``.

    Below 1 there is no fleet to coordinate — that is a configuration
    error, not a clampable preference, so it fails fast (unlike the
    floor clamps of ``--workers``/``--limit``, where a sane
    substitution exists).  Above ``os.cpu_count()`` the extra nodes
    cannot run anywhere — inline nodes are thread-scheduled and
    process-group nodes core-bound — so requests are clamped with a
    warning, mirroring the ``--workers`` posture.
    """
    if requested < 1:
        raise SystemExit(f"--nodes must be >= 1 (got {requested})")
    cpus = os.cpu_count() or 1
    if requested > cpus:
        print(f"warning: --nodes {requested} exceeds this machine's "
              f"{cpus} CPU(s); using {cpus}")
        return cpus
    return requested


def _effective_limit(requested: int) -> int:
    """Clamp ``--limit`` to a sane floor, with a warning.

    A scaled sweep needs at least one question; values below 1 are
    raised to 1 (mirroring the ``--workers`` clamp's posture: warn and
    proceed rather than abort).  There is no upper clamp — the
    streaming path is O(shard) in memory at any size.
    """
    if requested < 1:
        print(f"warning: --limit {requested} is below 1; using 1")
        return 1
    return requested


def _effective_samples(requested: int) -> int:
    """Clamp ``--samples`` to a sane floor, with a warning.

    pass@k needs at least one sample per question; values below 1 are
    raised to 1, matching the ``--workers``/``--limit`` clamp
    semantics.
    """
    if requested < 1:
        print(f"warning: --samples {requested} is below 1; using 1")
        return 1
    return requested


def _effective_prefetch(requested: Optional[int], workers: int) -> int:
    """Validate and clamp ``--prefetch``.

    ``None`` (flag absent) keeps the serial build-then-eval loop.  A
    lookahead below 1 prefetches nothing — a configuration error, not
    a clampable preference, so it fails fast (the ``--nodes`` posture).
    Looking ahead far past the evaluation workers cannot help — the
    consumer drains at most ``workers`` shards' worth of work at a
    time, and every prefetched shard holds memory — so requests beyond
    ``max(2, workers)`` are clamped with a warning (the ``--workers``
    posture; the floor of 2 keeps build/eval overlap available even
    for a single-worker sweep).
    """
    if requested is None:
        return 0
    if requested < 1:
        raise SystemExit(f"--prefetch must be >= 1 (got {requested})")
    cap = max(2, workers)
    if requested > cap:
        print(f"warning: --prefetch {requested} exceeds the useful "
              f"lookahead for {workers} worker(s); using {cap}")
        return cap
    return requested


def _build_backend(args: argparse.Namespace):
    """Resolve ``--backend``/``--rate-limit``/``--hedge-after`` to the
    runner's backend argument.

    A bare ``--backend`` passes through as a name; the async-only
    scheduling knobs build an explicit
    :class:`~repro.core.executor.AsyncBackend` carrying them.  Giving
    those knobs without ``--backend async`` is a configuration error —
    the sync backends have no scheduler to honour them — and fails
    fast rather than being silently ignored.
    """
    rate = getattr(args, "rate_limit", None)
    hedge = getattr(args, "hedge_after", None)
    if rate is None and hedge is None:
        return args.backend
    if args.backend != "async":
        raise SystemExit(
            "--rate-limit and --hedge-after require --backend async")
    from repro.core.executor import AsyncBackend

    return AsyncBackend(_effective_workers(args.workers, "async"),
                        rate_limit_per_s=rate, hedge_after_s=hedge)


def _breaker_from_args(args: argparse.Namespace):
    """Resolve ``--breaker``/``--breaker-cooldown`` to a CircuitBreaker.

    ``--breaker-cooldown`` arms half-open probing: an open circuit is
    retried with one trial unit once the cooldown elapses (see
    docs/RESILIENCE.md).  Giving the cooldown without ``--breaker`` is
    a configuration error — there is no breaker to cool down.
    """
    cooldown = getattr(args, "breaker_cooldown", None)
    if args.breaker is None:
        if cooldown is not None:
            raise SystemExit("--breaker-cooldown requires --breaker")
        return None
    from repro.core.resilience import CircuitBreaker

    return CircuitBreaker(args.breaker, cooldown_s=cooldown)


def _build_runner(args: argparse.Namespace, harness):
    """Resolve the sweep's execution engine from the CLI flags.

    ``--nodes N`` (N > 1) builds a fault-tolerant
    :class:`~repro.core.coordinator.SweepCoordinator` fleet — inline
    nodes by default, process-group nodes under ``--backend process`` —
    with lease-based work-stealing and exactly-once commit accounting
    (docs/COORDINATOR.md).  Otherwise a single
    :class:`~repro.core.runner.ParallelRunner` with the requested
    backend.  The two parallelism knobs are exclusive: a coordinated
    fleet runs one unit per node.
    """
    from repro.core.resilience import QuarantinePolicy
    from repro.core.runner import ParallelRunner

    quarantine = QuarantinePolicy() if args.quarantine else None
    breaker = _breaker_from_args(args)
    requested_nodes = getattr(args, "nodes", 1)
    nodes = _effective_nodes(requested_nodes)
    # Flag-compatibility errors key off what was *requested*: asking
    # for a fleet with incompatible flags is wrong even on a machine
    # small enough to clamp the fleet down to one node.
    if requested_nodes > 1:
        if args.workers != 1:
            raise SystemExit(
                "--nodes and --workers are exclusive: a coordinated "
                "fleet runs one unit per node")
        if (args.backend in ("thread", "async")
                or getattr(args, "rate_limit", None) is not None
                or getattr(args, "hedge_after", None) is not None):
            raise SystemExit(
                "--nodes runs inline nodes by default or process-group "
                "nodes under --backend process; thread/async backends "
                "and their scheduling knobs do not apply to a fleet")
    if nodes > 1:
        from repro.core.coordinator import SweepCoordinator

        return SweepCoordinator(
            nodes=nodes,
            harness=harness,
            node_backend=("process" if args.backend == "process"
                          else "inline"),
            run_dir=args.run_dir,
            resume=not args.no_resume,
            quarantine=quarantine,
            breaker=breaker,
            deadline_s=args.deadline,
            spill_dir=args.spill_dir)
    return ParallelRunner(
        harness=harness,
        workers=_effective_workers(args.workers, args.backend),
        run_dir=args.run_dir,
        resume=not args.no_resume,
        quarantine=quarantine,
        breaker=breaker,
        deadline_s=args.deadline,
        backend=_build_backend(args),
        spill_dir=args.spill_dir)


def _print_coordinator_stats(stats) -> None:
    """Dump a coordinated run's fleet counters (docs/COORDINATOR.md)."""
    coordinator = getattr(stats, "coordinator", None)
    if not coordinator:
        return
    print(f"\n{'fleet counter':<20}{'value':>8}")
    for key, value in sorted(coordinator.items()):
        print(f"{key:<20}{value:>8}")


def _print_resilience_warnings(stats) -> None:
    """Surface salvage/integrity events a long sweep must not hide."""
    if stats is None:
        return
    if stats.quarantined:
        print(f"warning: {stats.quarantined} question(s) quarantined "
              f"(judge_method=\"quarantined\", counted incorrect; "
              f"see docs/RESILIENCE.md)")
    if stats.corrupt_checkpoints:
        print(f"warning: {stats.corrupt_checkpoints} corrupt checkpoint(s) "
              f"rejected at resume (checksum/parse) and re-evaluated")
    if stats.stale_checkpoints:
        print(f"warning: {stats.stale_checkpoints} stale checkpoint(s) "
              f"rejected at resume (metadata mismatch) and re-evaluated")
    if stats.timed_out:
        print(f"warning: {stats.timed_out} unit(s) timed out past their "
              f"deadline")
    if stats.fast_failed:
        print(f"warning: {stats.fast_failed} unit(s) fast-failed by an "
              f"open circuit breaker")
    coordinator = getattr(stats, "coordinator", None) or {}
    if coordinator.get("nodes_lost"):
        print(f"warning: {coordinator['nodes_lost']} of "
              f"{coordinator.get('nodes', '?')} coordinator node(s) lost "
              f"mid-sweep; the surviving fleet finished the run")
    if coordinator.get("units_stolen"):
        print(f"warning: {coordinator['units_stolen']} unit(s) stolen "
              f"from expired leases "
              f"({coordinator.get('lease_expirations', 0)} lease "
              f"expiration(s)) and re-executed exactly-once")
    if coordinator.get("commit_repairs"):
        print(f"warning: commit log had a torn tail; "
              f"{coordinator['commit_repairs']} entrie(s) dropped and "
              f"their units re-reconciled")
    if coordinator.get("store_quarantined"):
        print(f"warning: {coordinator['store_quarantined']} corrupt "
              f"shared-store entrie(s) quarantined and rebuilt")


def _write_metrics(args: argparse.Namespace, stats) -> None:
    """Honour ``--metrics-out``: write the run's counters as Prometheus
    text exposition (the batch-side twin of the service's ``/metrics``
    endpoint; see docs/SERVICE.md)."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro.service.metrics import render_prometheus

    written = results_io.atomic_write_text(
        path, render_prometheus(stats))
    print(f"\nmetrics -> {written}")


def _cmd_table2_service(args: argparse.Namespace) -> int:
    """The served table2 path (``--service URL``).

    Submits the sweep as one job to a running ``eval-serve`` instance,
    streams the canonical result payloads back, and renders the same
    Table II — the service executes through the same
    :class:`~repro.core.engine.EvalEngine` substrate, so the rendered
    numbers and the server-side checkpoints are byte-identical to a
    local run's.  Flags that configure *local* execution or the scaled
    path have no served meaning and fail fast.
    """
    for flag, given in (
            ("--nodes", getattr(args, "nodes", 1) != 1),
            ("--limit", args.limit is not None),
            ("--dataset-seed", args.dataset_seed is not None),
            ("--samples", args.samples != 1),
            ("--provider batched", args.provider == "batched"),
            ("--rate-limit", getattr(args, "rate_limit", None) is not None),
            ("--hedge-after",
             getattr(args, "hedge_after", None) is not None),
            ("--breaker-cooldown",
             getattr(args, "breaker_cooldown", None) is not None),
            ("--spill-dir", args.spill_dir is not None),
            ("--run-dir", args.run_dir is not None),
            ("--prefetch", getattr(args, "prefetch", None) is not None),
            ("--prefetch-builder",
             getattr(args, "prefetch_builder", "thread") != "thread"),
            ("--no-resume", args.no_resume)):
        if given:
            raise SystemExit(
                f"{flag} configures local execution and does not apply "
                f"to --service (the server owns its run directories "
                f"and backends; see docs/SERVICE.md)")
    from repro.service.client import EvalServiceClient
    from repro.service.jobs import JobRejected

    names = args.models or [name for name, _ in TABLE2_ROW_ORDER]
    spec: dict = {"models": names, "workers": args.workers,
                  "replicas": args.replicas}
    if args.backend is not None:
        spec["backend"] = args.backend
    if args.latency or args.failure_rate:
        spec["latency_s"] = args.latency
        spec["failure_rate"] = args.failure_rate
    if args.quarantine:
        spec["quarantine"] = True
    if args.breaker is not None:
        spec["breaker"] = args.breaker
    if args.deadline is not None:
        spec["deadline_s"] = args.deadline
    client = EvalServiceClient(args.service)
    try:
        job_id = client.submit_job(spec)
    except JobRejected as exc:
        raise SystemExit(f"service rejected the job: {exc}")
    print(f"job {job_id} submitted to {args.service}")
    results: dict = {}
    streamed = 0
    for line in client.stream_results(job_id):
        result = results_io.loads(line)
        results.setdefault(result.model_name, {})[result.setting] = result
        streamed += 1
    snapshot = client.job_status(job_id)
    if snapshot["status"] != "completed":
        raise SystemExit(
            f"job {job_id} {snapshot['status']}: {snapshot['error']}")
    print(f"{streamed} unit result(s) streamed; server artifacts in "
          f"{snapshot['run_dir']}\n")
    print(render_table2(results, dict(TABLE2_ROW_ORDER)))
    if getattr(args, "metrics_out", None):
        written = results_io.atomic_write_text(
            args.metrics_out, client.metrics())
        print(f"\nmetrics (from service /metrics) -> {written}")
    return 0


def _wrap_provider(provider, args: argparse.Namespace):
    """Apply the ``--provider`` serving stack to one base provider.

    ``local`` is the base provider untouched (the byte-identical
    reproduction path).  ``remote`` wraps it in a
    :class:`~repro.models.providers.RemoteStubProvider` with the
    ``--latency`` / ``--failure-rate`` profile.  ``batched`` adds a
    :class:`~repro.models.providers.BatchingProvider` on top (over the
    remote stub when a latency/failure profile is given, else directly
    over the base).  See docs/PROVIDERS.md.
    """
    from repro.models.providers import BatchingProvider, RemoteStubProvider

    if args.provider == "local":
        return provider
    if args.provider == "remote" or args.latency or args.failure_rate:
        provider = RemoteStubProvider(provider,
                                      base_latency_s=args.latency,
                                      transient_rate=args.failure_rate)
    if args.provider == "batched":
        provider = BatchingProvider(provider,
                                    max_batch_size=args.batch_size)
    return provider


def _cmd_table2_scaled(args: argparse.Namespace) -> int:
    """The scaled/multi-sample table2 path (--limit/--dataset-seed/--samples).

    Streams an ``n``-question procedurally scaled collection through
    :func:`repro.core.sweep.run_scaled_table2` shard-by-shard, with
    multi-sample pass@k / consensus@k scoring when ``--samples`` > 1.
    Requires ``--provider local``: sample salting re-registers model
    clones in the provider registry, which the serving-stack wrappers
    cannot express.
    """
    from pathlib import Path

    from repro.core.question import TOTAL_QUESTIONS
    from repro.core.sweep import run_scaled_table2

    if args.provider != "local":
        raise SystemExit("--limit/--dataset-seed/--samples require "
                         "--provider local")
    names = args.models or [name for name, _ in TABLE2_ROW_ORDER]
    limit = _effective_limit(
        args.limit if args.limit is not None else TOTAL_QUESTIONS)
    samples = _effective_samples(args.samples)
    seed = args.dataset_seed if args.dataset_seed is not None else 0
    harness = EvaluationHarness()
    runner = _build_runner(args, harness)
    prefetch = _effective_prefetch(
        getattr(args, "prefetch", None), runner.workers)
    report = run_scaled_table2(
        names, limit, seed, samples=samples,
        shard_size=args.shard_size, runner=runner,
        spill_dir=args.spill_dir, prefetch=prefetch,
        prefetch_builder=getattr(args, "prefetch_builder", "thread"))
    print(f"scaled sweep: {report.dataset_name} "
          f"({limit} questions, {samples} sample(s))\n")
    print(render_table2(report.table2_results(),
                        dict(TABLE2_ROW_ORDER)))
    if samples > 1:
        ks = sorted({1, min(5, samples), samples})
        print("\nmulti-sample metrics (unbiased pass@k, "
              "majority-vote consensus@k):")
        print(report.render(ks=ks))
    if args.run_dir:
        summary_path = results_io.write_summary(
            Path(args.run_dir) / "sweep_summary.json",
            report.passk_summary(ks=(1, min(5, samples), samples)))
        print(f"\nsweep summary -> {summary_path}")
        print(f"run artifacts -> {args.run_dir} "
              f"(checkpoints + manifest.json; audit with "
              f"`repro verify-run {args.run_dir}`)")
    _print_resilience_warnings(runner.last_stats)
    _write_metrics(args, runner.last_stats)
    if args.cache_stats:
        _print_cache_stats(report.perf_caches)
        _print_coordinator_stats(runner.last_stats)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    if getattr(args, "service", None):
        return _cmd_table2_service(args)
    if (args.limit is not None or args.dataset_seed is not None
            or args.samples != 1):
        return _cmd_table2_scaled(args)
    if getattr(args, "prefetch", None) is not None:
        raise SystemExit(
            "--prefetch applies to the scaled streaming path; give "
            "--limit/--dataset-seed/--samples to enable it")
    if getattr(args, "prefetch_builder", "thread") != "thread":
        raise SystemExit(
            "--prefetch-builder applies to the scaled streaming path; "
            "give --limit/--dataset-seed/--samples to enable it")
    harness = EvaluationHarness()
    if args.models:
        models = [build_model(name) for name in args.models]
    else:
        models = build_zoo()
    models = [_wrap_provider(provider, args) for provider in models]
    runner = _build_runner(args, harness)
    results = run_table2(models, harness, runner=runner)
    print(render_table2(results, dict(TABLE2_ROW_ORDER)))
    if args.run_dir:
        print(f"\nrun artifacts -> {args.run_dir} "
              f"(checkpoints + manifest.json; audit with "
              f"`repro verify-run {args.run_dir}`)")
    _print_resilience_warnings(runner.last_stats)
    _write_metrics(args, runner.last_stats)
    if args.cache_stats:
        _print_cache_stats(runner.last_stats)
        _print_coordinator_stats(runner.last_stats)
    return 0


def _cmd_verify_run(args: argparse.Namespace) -> int:
    """Audit a run directory: parse, record counts, sha256 checksums."""
    try:
        audit = results_io.verify_run(args.run_dir)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not audit.files:
        raise SystemExit(f"no artifacts to audit in {args.run_dir}")
    for entry in audit.files:
        line = f"{entry.status:<8} {entry.name}"
        if entry.status in ("ok", "legacy"):
            line += f"  ({entry.records} records)"
        if entry.detail:
            line += f"  {entry.detail}"
        print(line)
    counts = audit.counts()
    summary = ", ".join(
        f"{counts[status]} {status}"
        for status in ("ok", "legacy", "corrupt", "missing")
        if counts.get(status))
    print(f"\n{len(audit.files)} artifact(s): {summary}")
    if not audit.ok:
        print("verification FAILED")
        return 1
    print("verification OK")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.agent import run_table3

    results = run_table3()
    print(render_table3(results["gpt4o"], results["agent"]))
    return 0


def _cmd_resolution(args: argparse.Namespace) -> int:
    from repro.core.runner import ParallelRunner

    harness = EvaluationHarness()
    category = _category_by_short(args.category)
    runner = ParallelRunner(
        harness=harness,
        workers=_effective_workers(args.workers, args.backend),
        backend=args.backend)
    study = harness.resolution_study(
        build_model(args.model), category=category,
        factors=tuple(args.factors), runner=runner)
    print(render_resolution_study(study, category))
    if args.cache_stats:
        _print_cache_stats(runner.last_stats)
    return 0


def _cmd_composition(args: argparse.Namespace) -> int:
    print(render_composition(build_chipvqa()))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    harness = EvaluationHarness()
    model = build_model(args.model)
    if args.challenge:
        dataset = build_chipvqa_challenge()
        setting = NO_CHOICE
    else:
        dataset = build_chipvqa()
        setting = WITH_CHOICE
    result = harness.evaluate(model, dataset, setting,
                              resolution_factor=args.resolution)
    print(f"model:    {model.name}")
    print(f"dataset:  {dataset.name} ({len(dataset)} questions)")
    print(f"setting:  {setting}  resolution: {args.resolution}x")
    print(f"pass@1:   {result.pass_at_1():.3f}")
    for category in CATEGORY_ORDER:
        correct, total = result.category_counts()[category]
        print(f"  {category.value:<22} {correct / total:.2f}  "
              f"({correct}/{total})")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    harness = EvaluationHarness()
    run = (harness.zero_shot_challenge if args.challenge
           else harness.zero_shot_standard)
    result_a = run(build_model(args.model_a))
    result_b = run(build_model(args.model_b))
    comparison = significance_compare(result_a, result_b)
    print(comparison.summary())
    print(f"  both correct: {comparison.both_correct}   "
          f"both wrong: {comparison.both_wrong}")
    print(f"  only {args.model_a}: {comparison.only_a}   "
          f"only {args.model_b}: {comparison.only_b}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    dataset = build_chipvqa()
    try:
        question = dataset.get(args.qid)
    except KeyError:
        raise SystemExit(f"unknown question id {args.qid!r}")
    print(f"qid:        {question.qid}")
    print(f"category:   {question.category.value}")
    print(f"type:       {question.question_type.value}")
    print(f"difficulty: {question.difficulty}")
    print(f"topics:     {', '.join(question.topics)}")
    print(f"visuals:    " + ", ".join(
        v.visual_type.value for v in question.all_visuals))
    print(f"\nprompt:\n{question.prompt}")
    if question.is_multiple_choice:
        print()
        for letter, choice in zip("ABCD", question.choices):
            marker = "*" if letter == question.gold_letter else " "
            print(f" {marker} {letter}) {choice}")
    else:
        print(f"\ngold: {question.gold_text}")
    print(f"\nworked solution:\n{question.explanation}")
    if args.figure:
        from repro.visual import render
        from repro.visual.export import save_pgm

        path = save_pgm(args.figure, render(question.visual))
        print(f"\nfigure -> {path}")
    return 0


def _cmd_list_models(args: argparse.Namespace) -> int:
    print(f"{'name':<16}{'backbone':<16}{'params':<9}{'res':<6}"
          f"{'sysprompt':<10}")
    for name, _label in TABLE2_ROW_ORDER:
        backbone, params, _ability, res, sysprompt = _ZOO_SPECS[name][:5]
        print(f"{name:<16}{backbone:<16}{params:<9.1f}{res:<6}"
              f"{'yes' if sysprompt else 'no':<10}")
    return 0


def _cmd_export_figures(args: argparse.Namespace) -> int:
    from repro.visual.export import export_dataset_figures

    written = export_dataset_figures(build_chipvqa(), args.out,
                                     limit=args.limit)
    print(f"wrote {len(written)} figures to {args.out}")
    return 0


def _cmd_export_dataset(args: argparse.Namespace) -> int:
    dataset = (build_chipvqa_challenge() if args.challenge
               else build_chipvqa())
    dataset.save(args.out)
    print(f"wrote {len(dataset)} questions to {args.out}")
    return 0


def _category_by_short(short: str) -> Category:
    for category in Category:
        if category.short.lower() == short.lower():
            return category
    raise SystemExit(f"unknown category {short!r}; choose from "
                     f"{[c.short for c in Category]}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ChipVQA reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table I statistics") \
        .set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="Table II zero-shot sweep")
    p2.add_argument("--models", nargs="*",
                    help="subset of zoo names (default: all twelve)")
    p2.add_argument("--provider", choices=["local", "remote", "batched"],
                    default="local",
                    help="serving path: in-process (local), simulated "
                         "HTTP endpoint (remote), or batch-coalescing "
                         "over the endpoint (batched); see "
                         "docs/PROVIDERS.md")
    p2.add_argument("--batch-size", type=int, default=16, metavar="N",
                    help="max coalesced batch size for "
                         "--provider batched")
    p2.add_argument("--latency", type=float, default=0.0, metavar="S",
                    help="simulated per-call endpoint latency in "
                         "seconds (remote/batched providers)")
    p2.add_argument("--failure-rate", type=float, default=0.0,
                    metavar="P",
                    help="simulated transient-failure probability per "
                         "call (remote/batched providers); absorbed by "
                         "the runner's retry path")
    p2.add_argument("--workers", type=int, default=1,
                    help="parallel evaluation workers (1 = serial; "
                         "clamped to this machine's CPU count except "
                         "under --backend async)")
    p2.add_argument("--backend",
                    choices=["serial", "thread", "process", "async"],
                    default=None,
                    help="execution backend: serial, thread pool, "
                         "process pool for true multicore scaling, or "
                         "an asyncio event loop for the API-bound "
                         "regime (default: serial at --workers 1, "
                         "thread otherwise; see docs/RUNNER.md)")
    p2.add_argument("--nodes", type=int, default=1, metavar="N",
                    help="dispatch the sweep across N fault-tolerant "
                         "coordinator nodes with lease-based "
                         "work-stealing and exactly-once commit "
                         "accounting (inline nodes by default, process "
                         "groups under --backend process; exclusive "
                         "with --workers; see docs/COORDINATOR.md)")
    p2.add_argument("--rate-limit", type=float, default=None,
                    metavar="R",
                    help="client-side per-provider request budget in "
                         "calls/second; the async scheduler paces "
                         "dispatches under it (requires --backend "
                         "async)")
    p2.add_argument("--hedge-after", type=float, default=None,
                    metavar="S",
                    help="duplicate a provider call still in flight "
                         "after S seconds, first success wins (tail-"
                         "latency hedging; requires --backend async)")
    p2.add_argument("--spill-dir", default=None, metavar="DIR",
                    help="content-addressed on-disk cache tier shared "
                         "by worker processes (and across runs); see "
                         "docs/PERF.md")
    p2.add_argument("--run-dir", default=None,
                    help="checkpoint directory; an interrupted sweep "
                         "resumes from it (see docs/RUNNER.md)")
    p2.add_argument("--no-resume", action="store_true",
                    help="ignore existing checkpoints in --run-dir")
    p2.add_argument("--cache-stats", action="store_true",
                    help="print perception-substrate cache counters "
                         "after the sweep (see docs/PERF.md)")
    p2.add_argument("--quarantine", action="store_true",
                    help="salvage units around permanently-faulting "
                         "questions (recorded incorrect with "
                         "judge_method=quarantined)")
    p2.add_argument("--breaker", type=int, default=None, metavar="K",
                    help="open a per-model circuit breaker after K "
                         "consecutive unit failures and fast-fail the "
                         "model's remaining units")
    p2.add_argument("--breaker-cooldown", type=float, default=None,
                    metavar="S",
                    help="let an open circuit go half-open after S "
                         "seconds and probe it with a single trial "
                         "unit; success fully closes the circuit, "
                         "failure re-arms the cooldown (requires "
                         "--breaker; see docs/RESILIENCE.md)")
    p2.add_argument("--deadline", type=float, default=None, metavar="S",
                    help="per-unit wall-time deadline in seconds; "
                         "overdue units are marked timed_out")
    p2.add_argument("--limit", type=int, default=None, metavar="N",
                    help="evaluate an N-question procedurally scaled "
                         "collection instead of the canonical 142 "
                         "(streamed shard-by-shard; values below 1 are "
                         "clamped to 1 with a warning; requires "
                         "--provider local; see docs/DATASET_FORMAT.md)")
    p2.add_argument("--dataset-seed", type=int, default=None,
                    metavar="S",
                    help="variant seed of the scaled collection "
                         "(default 0); selecting a seed implies the "
                         "scaled path even without --limit")
    p2.add_argument("--samples", type=int, default=1, metavar="K",
                    help="samples per question for pass@k / "
                         "consensus@k scoring (values below 1 are "
                         "clamped to 1 with a warning; K > 1 implies "
                         "the scaled path and --provider local)")
    p2.add_argument("--shard-size", type=int, default=None, metavar="Q",
                    help="questions per build shard on the scaled "
                         "path (default: 142, one canonical cycle)")
    p2.add_argument("--prefetch", type=int, default=None, metavar="K",
                    help="overlap shard building with evaluation on "
                         "the scaled path: keep up to K shards "
                         "building or ready ahead of the evaluator "
                         "(must be >= 1; clamped against --workers; "
                         "artifacts stay byte-identical to the serial "
                         "loop — see docs/PERF.md)")
    p2.add_argument("--prefetch-builder", default="thread",
                    choices=sorted(PREFETCH_BUILDERS),
                    help="where --prefetch builds run: 'thread' "
                         "(default; builder pool threads) or "
                         "'process' (a child process pool — true "
                         "build/eval parallelism on multi-core "
                         "hosts)")
    p2.add_argument("--service", default=None, metavar="URL",
                    help="submit the sweep to a running eval-serve "
                         "instance at URL instead of executing "
                         "locally; results stream back and render the "
                         "same table (see docs/SERVICE.md)")
    p2.add_argument("--replicas", type=int, default=1, metavar="N",
                    help="serve each model through N load-balanced "
                         "provider replicas with breaker-aware "
                         "failover (--service only)")
    p2.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write the run's counters to PATH as "
                         "Prometheus text exposition (with --service: "
                         "a snapshot of the server's /metrics)")
    p2.set_defaults(func=_cmd_table2)

    sub.add_parser("table3", help="Table III agent comparison") \
        .set_defaults(func=_cmd_table3)

    pr = sub.add_parser("resolution", help="Section IV-B study")
    pr.add_argument("--model", default="gpt-4o")
    pr.add_argument("--category", default="Digital")
    pr.add_argument("--factors", nargs="*", type=int, default=[1, 8, 16])
    pr.add_argument("--workers", type=int, default=1,
                    help="evaluate resolution factors in parallel "
                         "(clamped to this machine's CPU count)")
    pr.add_argument("--backend",
                    choices=["serial", "thread", "process", "async"],
                    default=None,
                    help="execution backend (see table2 --backend)")
    pr.add_argument("--cache-stats", action="store_true",
                    help="print perception-substrate cache counters "
                         "after the study")
    pr.set_defaults(func=_cmd_resolution)

    sub.add_parser("composition", help="Fig. 1 composition summary") \
        .set_defaults(func=_cmd_composition)

    pe = sub.add_parser("evaluate", help="evaluate one model")
    pe.add_argument("--model", default="gpt-4o")
    pe.add_argument("--challenge", action="store_true",
                    help="use the no-choice challenge collection")
    pe.add_argument("--resolution", type=int, default=1)
    pe.set_defaults(func=_cmd_evaluate)

    pc = sub.add_parser("compare", help="paired significance test")
    pc.add_argument("model_a")
    pc.add_argument("model_b")
    pc.add_argument("--challenge", action="store_true")
    pc.set_defaults(func=_cmd_compare)

    ps = sub.add_parser("show", help="inspect one benchmark question")
    ps.add_argument("qid")
    ps.add_argument("--figure", default=None,
                    help="also write the figure to this PGM path")
    ps.set_defaults(func=_cmd_show)

    sub.add_parser("list-models", help="show the model zoo") \
        .set_defaults(func=_cmd_list_models)

    pf = sub.add_parser("export-figures", help="write figures as PGM")
    pf.add_argument("--out", default="figures")
    pf.add_argument("--limit", type=int, default=None)
    pf.set_defaults(func=_cmd_export_figures)

    pd = sub.add_parser("export-dataset", help="dump benchmark JSONL")
    pd.add_argument("--out", default="chipvqa.jsonl")
    pd.add_argument("--challenge", action="store_true")
    pd.set_defaults(func=_cmd_export_dataset)

    pv = sub.add_parser("verify-run",
                        help="audit a run directory's artifacts "
                             "(checksums, record counts, manifest)")
    pv.add_argument("run_dir", help="directory written via --run-dir")
    pv.set_defaults(func=_cmd_verify_run)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
