"""Dopant diffusion and oxidation: Gaussian/erfc profiles, Deal-Grove."""

from __future__ import annotations

import math
from typing import Tuple


def thermal_diffusivity(d0_cm2_s: float, ea_ev: float,
                        temperature_k: float) -> float:
    """Arrhenius diffusivity D = D0 exp(-Ea / kT), cm^2/s."""
    if d0_cm2_s <= 0 or temperature_k <= 0:
        raise ValueError("bad parameters")
    boltzmann_ev = 8.617333262e-5
    return d0_cm2_s * math.exp(-ea_ev / (boltzmann_ev * temperature_k))


def diffusion_length_um(d_cm2_s: float, time_s: float) -> float:
    """Characteristic length 2 sqrt(D t), in microns."""
    if d_cm2_s < 0 or time_s < 0:
        raise ValueError("bad parameters")
    return 2.0 * math.sqrt(d_cm2_s * time_s) * 1e4


def gaussian_profile(dose_cm2: float, d_cm2_s: float, time_s: float,
                     depth_cm: float) -> float:
    """Drive-in (limited source) profile: N(x) = Q/sqrt(pi D t) *
    exp(-x^2 / 4Dt), cm^-3."""
    if dose_cm2 <= 0 or d_cm2_s <= 0 or time_s <= 0:
        raise ValueError("bad parameters")
    dt = d_cm2_s * time_s
    return dose_cm2 / math.sqrt(math.pi * dt) * math.exp(
        -depth_cm * depth_cm / (4.0 * dt))


def erfc_profile(surface_conc_cm3: float, d_cm2_s: float, time_s: float,
                 depth_cm: float) -> float:
    """Pre-deposition (constant source) profile: N(x) = Ns erfc(x / 2
    sqrt(Dt))."""
    if surface_conc_cm3 <= 0 or d_cm2_s <= 0 or time_s <= 0:
        raise ValueError("bad parameters")
    return surface_conc_cm3 * math.erfc(
        depth_cm / (2.0 * math.sqrt(d_cm2_s * time_s)))


def junction_depth_gaussian(dose_cm2: float, d_cm2_s: float, time_s: float,
                            background_cm3: float) -> float:
    """Depth (cm) where a Gaussian profile crosses the background doping."""
    peak = gaussian_profile(dose_cm2, d_cm2_s, time_s, 0.0)
    if background_cm3 >= peak:
        raise ValueError("background exceeds surface concentration")
    dt = d_cm2_s * time_s
    return math.sqrt(4.0 * dt * math.log(peak / background_cm3))


def deal_grove_thickness_um(a_um: float, b_um2_hr: float, hours: float,
                            initial_um: float = 0.0) -> float:
    """Oxide grown by the Deal-Grove model: x^2 + A x = B (t + tau)."""
    if hours < 0 or a_um < 0 or b_um2_hr <= 0:
        raise ValueError("bad parameters")
    tau = (initial_um * initial_um + a_um * initial_um) / b_um2_hr
    total = b_um2_hr * (hours + tau)
    return (-a_um + math.sqrt(a_um * a_um + 4.0 * total)) / 2.0


def oxide_silicon_consumed_um(oxide_grown_um: float) -> float:
    """Silicon consumed is ~44% of the grown oxide thickness."""
    if oxide_grown_um < 0:
        raise ValueError("thickness must be non-negative")
    return 0.44 * oxide_grown_um


def sheet_resistance(resistivity_ohm_cm: float,
                     thickness_um: float) -> float:
    """R_sheet = rho / t, ohms per square."""
    if resistivity_ohm_cm <= 0 or thickness_um <= 0:
        raise ValueError("bad parameters")
    return resistivity_ohm_cm / (thickness_um * 1e-4)


def squares_in_wire(length_um: float, width_um: float) -> float:
    """Number of squares in a straight wire segment."""
    if length_um < 0 or width_um <= 0:
        raise ValueError("bad dimensions")
    return length_um / width_um


def wire_resistance(sheet_ohm_sq: float, length_um: float,
                    width_um: float) -> float:
    """End-to-end resistance: sheet resistance times squares."""
    return sheet_ohm_sq * squares_in_wire(length_um, width_um)
