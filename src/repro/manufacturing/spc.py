"""Statistical process control: control charts and process capability.

Fab lines run on SPC; questions about X-bar/R charts, Western Electric
rules, and Cp/Cpk are standard manufacturing-course material.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Control-chart constants by subgroup size n (Shewhart tables).
_A2 = {2: 1.880, 3: 1.023, 4: 0.729, 5: 0.577, 6: 0.483, 7: 0.419,
       8: 0.373, 9: 0.337, 10: 0.308}
_D3 = {2: 0.0, 3: 0.0, 4: 0.0, 5: 0.0, 6: 0.0, 7: 0.076, 8: 0.136,
       9: 0.184, 10: 0.223}
_D4 = {2: 3.267, 3: 2.574, 4: 2.282, 5: 2.114, 6: 2.004, 7: 1.924,
       8: 1.864, 9: 1.816, 10: 1.777}
_D2 = {2: 1.128, 3: 1.693, 4: 2.059, 5: 2.326, 6: 2.534, 7: 2.704,
       8: 2.847, 9: 2.970, 10: 3.078}


@dataclass(frozen=True)
class ControlLimits:
    center: float
    lcl: float
    ucl: float

    def contains(self, value: float) -> bool:
        return self.lcl <= value <= self.ucl


def _validate_subgroups(subgroups: Sequence[Sequence[float]]) -> int:
    if not subgroups:
        raise ValueError("no subgroups")
    n = len(subgroups[0])
    if n < 2 or n > 10:
        raise ValueError("subgroup size must be 2..10")
    if any(len(group) != n for group in subgroups):
        raise ValueError("ragged subgroups")
    return n


def xbar_limits(subgroups: Sequence[Sequence[float]]) -> ControlLimits:
    """X-bar chart limits: grand mean +- A2 * mean range."""
    n = _validate_subgroups(subgroups)
    means = [sum(g) / n for g in subgroups]
    ranges = [max(g) - min(g) for g in subgroups]
    grand = sum(means) / len(means)
    r_bar = sum(ranges) / len(ranges)
    margin = _A2[n] * r_bar
    return ControlLimits(grand, grand - margin, grand + margin)


def r_limits(subgroups: Sequence[Sequence[float]]) -> ControlLimits:
    """Range-chart limits: D3/D4 times the mean range."""
    n = _validate_subgroups(subgroups)
    ranges = [max(g) - min(g) for g in subgroups]
    r_bar = sum(ranges) / len(ranges)
    return ControlLimits(r_bar, _D3[n] * r_bar, _D4[n] * r_bar)


def estimated_sigma(subgroups: Sequence[Sequence[float]]) -> float:
    """Within-subgroup sigma estimate: R-bar / d2."""
    n = _validate_subgroups(subgroups)
    ranges = [max(g) - min(g) for g in subgroups]
    return (sum(ranges) / len(ranges)) / _D2[n]


def out_of_control_points(values: Sequence[float],
                          limits: ControlLimits) -> List[int]:
    """Indices violating Western Electric rule 1 (beyond 3-sigma limits)."""
    return [i for i, v in enumerate(values) if not limits.contains(v)]


def run_rule_violations(values: Sequence[float], center: float,
                        run_length: int = 8) -> List[int]:
    """Western Electric rule 4: ``run_length`` consecutive points on one
    side of the centre line.  Returns the index ending each violating run."""
    if run_length < 2:
        raise ValueError("run length must be >= 2")
    violations: List[int] = []
    streak_sign = 0
    streak = 0
    for index, value in enumerate(values):
        sign = 1 if value > center else (-1 if value < center else 0)
        if sign != 0 and sign == streak_sign:
            streak += 1
        else:
            streak_sign = sign
            streak = 1 if sign != 0 else 0
        if streak >= run_length:
            violations.append(index)
    return violations


def cp(usl: float, lsl: float, sigma: float) -> float:
    """Process capability: (USL - LSL) / 6 sigma."""
    if usl <= lsl:
        raise ValueError("USL must exceed LSL")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return (usl - lsl) / (6.0 * sigma)


def cpk(usl: float, lsl: float, mean: float, sigma: float) -> float:
    """Centred capability: min((USL-mean), (mean-LSL)) / 3 sigma."""
    if usl <= lsl:
        raise ValueError("USL must exceed LSL")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return min(usl - mean, mean - lsl) / (3.0 * sigma)


def defect_ppm(cpk_value: float) -> float:
    """One-sided defect rate in PPM implied by a Cpk (normal model)."""
    z = 3.0 * cpk_value
    # complementary normal CDF via erfc
    tail = 0.5 * math.erfc(z / math.sqrt(2.0))
    return tail * 1e6
