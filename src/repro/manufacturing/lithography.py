"""Optical lithography: resolution, depth of focus, RET identification.

Implements the Rayleigh scaling relations and the resolution-enhancement
technique (RET) vocabulary — OPC, sub-resolution assist features, phase
shift masks, off-axis illumination — behind the paper's Manufacturing
sample question ("What is the lithography resolution enhancement technique
depicted in the figure?").
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def rayleigh_resolution(k1: float, wavelength_nm: float, na: float) -> float:
    """Minimum half-pitch: R = k1 * lambda / NA (nm)."""
    if k1 <= 0 or wavelength_nm <= 0 or na <= 0:
        raise ValueError("all parameters must be positive")
    return k1 * wavelength_nm / na


def depth_of_focus(k2: float, wavelength_nm: float, na: float) -> float:
    """DOF = k2 * lambda / NA^2 (nm)."""
    if k2 <= 0 or wavelength_nm <= 0 or na <= 0:
        raise ValueError("all parameters must be positive")
    return k2 * wavelength_nm / (na * na)


def k1_from_pitch(half_pitch_nm: float, wavelength_nm: float,
                  na: float) -> float:
    """The k1 factor implied by printing a given half-pitch."""
    if half_pitch_nm <= 0:
        raise ValueError("half pitch must be positive")
    return half_pitch_nm * na / wavelength_nm


K1_PHYSICAL_LIMIT = 0.25  # single-exposure coherent imaging limit


def requires_double_patterning(half_pitch_nm: float, wavelength_nm: float,
                               na: float) -> bool:
    """True when the implied k1 falls below the single-exposure limit."""
    return k1_from_pitch(half_pitch_nm, wavelength_nm, na) < K1_PHYSICAL_LIMIT


class Ret(enum.Enum):
    """Resolution enhancement techniques."""

    OPC = "optical proximity correction"
    SRAF = "sub-resolution assist features"
    PSM = "phase shift mask"
    OAI = "off-axis illumination"
    DOUBLE_PATTERNING = "double patterning"


@dataclass(frozen=True)
class MaskFeatures:
    """Structural description of a mask figure, for RET identification."""

    has_edge_jogs: bool = False          # serifs / hammerheads on corners
    has_isolated_scatter_bars: bool = False
    has_phase_regions: bool = False
    split_into_two_masks: bool = False


def identify_ret(features: MaskFeatures) -> Ret:
    """Which RET a mask figure depicts, by its structural signature."""
    if features.split_into_two_masks:
        return Ret.DOUBLE_PATTERNING
    if features.has_phase_regions:
        return Ret.PSM
    if features.has_isolated_scatter_bars:
        return Ret.SRAF
    if features.has_edge_jogs:
        return Ret.OPC
    return Ret.OAI


def mask_error_enhancement_factor(cd_wafer_delta: float,
                                  cd_mask_delta: float,
                                  magnification: float = 4.0) -> float:
    """MEEF = (d CD_wafer / d CD_mask) * M."""
    if cd_mask_delta == 0:
        raise ValueError("mask CD delta must be non-zero")
    return (cd_wafer_delta / cd_mask_delta) * magnification


def exposure_latitude_percent(dose_max: float, dose_min: float) -> float:
    """EL = (dose_max - dose_min) / dose_nominal * 100, nominal = mean."""
    if dose_max <= dose_min:
        raise ValueError("dose window is empty")
    nominal = (dose_max + dose_min) / 2.0
    return (dose_max - dose_min) / nominal * 100.0


def euv_vs_duv_resolution(na_euv: float = 0.33, na_duv: float = 1.35,
                          k1: float = 0.35) -> Tuple[float, float]:
    """Half-pitch (nm) at EUV (13.5 nm) vs immersion DUV (193 nm)."""
    return (rayleigh_resolution(k1, 13.5, na_euv),
            rayleigh_resolution(k1, 193.0, na_duv))


def line_edge_roughness_budget(cd_nm: float, fraction: float = 0.1) -> float:
    """A common LER budget: a fixed fraction of CD (3-sigma, nm)."""
    if cd_nm <= 0 or not 0 < fraction < 1:
        raise ValueError("bad CD or fraction")
    return cd_nm * fraction
