"""Yield models and wafer arithmetic: Poisson / Murphy yield, dies per wafer."""

from __future__ import annotations

import math


def poisson_yield(defect_density_cm2: float, die_area_cm2: float) -> float:
    """Y = exp(-D A)."""
    if defect_density_cm2 < 0 or die_area_cm2 < 0:
        raise ValueError("bad parameters")
    return math.exp(-defect_density_cm2 * die_area_cm2)


def murphy_yield(defect_density_cm2: float, die_area_cm2: float) -> float:
    """Murphy's model: Y = ((1 - e^(-DA)) / DA)^2."""
    if defect_density_cm2 < 0 or die_area_cm2 < 0:
        raise ValueError("bad parameters")
    da = defect_density_cm2 * die_area_cm2
    if da < 1e-8:
        return 1.0  # Taylor limit; avoids catastrophic cancellation
    return ((1.0 - math.exp(-da)) / da) ** 2


def seeds_yield(defect_density_cm2: float, die_area_cm2: float) -> float:
    """Seeds' model: Y = 1 / (1 + DA)."""
    if defect_density_cm2 < 0 or die_area_cm2 < 0:
        raise ValueError("bad parameters")
    return 1.0 / (1.0 + defect_density_cm2 * die_area_cm2)


def dies_per_wafer(wafer_diameter_mm: float, die_w_mm: float,
                   die_h_mm: float) -> int:
    """Gross dies per wafer by the standard edge-corrected formula:
    pi r^2 / A - pi d / sqrt(2 A)."""
    if wafer_diameter_mm <= 0 or die_w_mm <= 0 or die_h_mm <= 0:
        raise ValueError("bad dimensions")
    area = die_w_mm * die_h_mm
    radius = wafer_diameter_mm / 2.0
    gross = (math.pi * radius * radius / area
             - math.pi * wafer_diameter_mm / math.sqrt(2.0 * area))
    return max(0, int(gross))


def good_dies(wafer_diameter_mm: float, die_w_mm: float, die_h_mm: float,
              defect_density_cm2: float, model: str = "poisson") -> int:
    """Expected good dies per wafer under a yield model."""
    gross = dies_per_wafer(wafer_diameter_mm, die_w_mm, die_h_mm)
    area_cm2 = die_w_mm * die_h_mm / 100.0
    models = {
        "poisson": poisson_yield,
        "murphy": murphy_yield,
        "seeds": seeds_yield,
    }
    try:
        yield_fn = models[model.lower()]
    except KeyError:
        raise ValueError(f"unknown yield model {model!r}") from None
    return int(gross * yield_fn(defect_density_cm2, area_cm2))


def cost_per_good_die(wafer_cost: float, wafer_diameter_mm: float,
                      die_w_mm: float, die_h_mm: float,
                      defect_density_cm2: float,
                      model: str = "poisson") -> float:
    """Wafer cost amortised over the expected good dies."""
    good = good_dies(wafer_diameter_mm, die_w_mm, die_h_mm,
                     defect_density_cm2, model)
    if good == 0:
        raise ValueError("no good dies at this defect density")
    return wafer_cost / good


def yield_learning_rate(initial_yield: float, target_yield: float,
                        improvement_per_quarter: float) -> int:
    """Quarters to reach a target yield under multiplicative defect
    reduction: D_next = D * (1 - improvement)."""
    if not 0 < initial_yield < 1 or not initial_yield < target_yield < 1:
        raise ValueError("yields must satisfy 0 < initial < target < 1")
    if not 0 < improvement_per_quarter < 1:
        raise ValueError("improvement must be a fraction")
    # Poisson: Y = exp(-DA) => DA = -ln Y
    da = -math.log(initial_yield)
    target_da = -math.log(target_yield)
    quarters = 0
    while da > target_da:
        da *= (1.0 - improvement_per_quarter)
        quarters += 1
        if quarters > 1000:
            raise RuntimeError("did not converge")
    return quarters
