"""Etch-process models: rates, selectivity, over-etch timing, undercut.

Implements the arithmetic of the paper's worked Manufacturing example:
"Assume 5:1 BOE etches SiO2 isotropically at 100 nm/min, RIE etches SiO2
at 200 nm/min with SiO2:Si selectivity 15:1 ... how long should this wafer
be placed in 5:1 BOE etchant to record a 10% over-etch?"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class EtchProcess:
    """An etch chemistry acting on a primary film."""

    name: str
    rate_nm_per_min: float          # vertical etch rate of the target film
    selectivity_to_substrate: float = float("inf")  # target : substrate
    isotropic: bool = False

    def __post_init__(self) -> None:
        if self.rate_nm_per_min <= 0:
            raise ValueError("etch rate must be positive")
        if self.selectivity_to_substrate <= 0:
            raise ValueError("selectivity must be positive")


BOE_5_TO_1 = EtchProcess("5:1 BOE", 100.0, isotropic=True)
RIE_OXIDE = EtchProcess("RIE", 200.0, selectivity_to_substrate=15.0)


def etch_time_minutes(thickness_nm: float, process: EtchProcess,
                      over_etch_fraction: float = 0.0) -> float:
    """Time to clear a film with a specified fractional over-etch.

    A 10% over-etch etches for 1.1x the just-clear time — the paper's BOE
    question is ``etch_time_minutes(t_ox, BOE_5_TO_1, 0.10)``.
    """
    if thickness_nm <= 0:
        raise ValueError("thickness must be positive")
    if over_etch_fraction < 0:
        raise ValueError("over-etch must be non-negative")
    return thickness_nm * (1.0 + over_etch_fraction) / process.rate_nm_per_min


def substrate_loss_nm(over_etch_time_min: float,
                      process: EtchProcess) -> float:
    """Substrate removed during over-etch, via the selectivity ratio."""
    if over_etch_time_min < 0:
        raise ValueError("time must be non-negative")
    substrate_rate = process.rate_nm_per_min / process.selectivity_to_substrate
    return substrate_rate * over_etch_time_min


def undercut_nm(etch_time_min: float, process: EtchProcess) -> float:
    """Lateral undercut under the mask: equals depth for isotropic etches,
    zero for perfectly anisotropic ones."""
    if etch_time_min < 0:
        raise ValueError("time must be non-negative")
    if not process.isotropic:
        return 0.0
    return process.rate_nm_per_min * etch_time_min


def opening_width_after_etch(mask_opening_nm: float, etch_time_min: float,
                             process: EtchProcess) -> float:
    """Final top width of an opening: mask opening + 2x undercut."""
    if mask_opening_nm <= 0:
        raise ValueError("opening must be positive")
    return mask_opening_nm + 2.0 * undercut_nm(etch_time_min, process)


def anisotropy(vertical_rate: float, lateral_rate: float) -> float:
    """A = 1 - r_lateral / r_vertical (1 = perfectly anisotropic)."""
    if vertical_rate <= 0 or lateral_rate < 0:
        raise ValueError("bad rates")
    return 1.0 - lateral_rate / vertical_rate


def aspect_ratio(depth_nm: float, width_nm: float) -> float:
    """Feature depth over width."""
    if width_nm <= 0 or depth_nm < 0:
        raise ValueError("bad dimensions")
    return depth_nm / width_nm


def film_stack_clear_time(stack: Sequence[Tuple[float, EtchProcess]]) -> float:
    """Total minutes to etch through a stack of (thickness, process) films."""
    return sum(etch_time_minutes(t, p) for t, p in stack)
