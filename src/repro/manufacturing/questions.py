"""The 20 Manufacturing questions of the benchmark (5 MC + 15 SA).

Coverage mirrors Section III-B5 of the paper: lithography (including the
RET-identification sample from Fig. 3), solid-state physics, deposition and
etch (including the worked 5:1-BOE over-etch example), wafer defects,
doping and yield.  All golds come from the manufacturing substrate.

Visual budget (DESIGN.md): 8 layouts, 3 structures, 3 figures, 3 diagrams,
2 mixed, 1 flow.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    Question,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.manufacturing import defects, diffusion, etch, lithography, yieldmodel
from repro.manufacturing.etch import BOE_5_TO_1, RIE_OXIDE
from repro.manufacturing.lithography import MaskFeatures, Ret, identify_ret
from repro.visual.diagram import block_diagram_scene, flow_chart_scene
from repro.visual.layout import cross_section_scene, layout_scene, mask_pattern_scene
from repro.visual.resolution import infer_legibility_scale
from repro.visual.scene import translate
from repro.visual.table import equation_scene, table_scene
from repro.visual.waveform import curve_scene


def _visual(visual_type: VisualType, description: str, scene) -> VisualContent:
    return VisualContent(
        visual_type=visual_type,
        description=description,
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene),
    )


def _mc(number: int, prompt: str, visual: VisualContent,
        choices: Sequence[str], correct: int, *, difficulty: float,
        topics: Sequence[str], answer_kind: AnswerKind = AnswerKind.CHOICE,
        aliases: Sequence[str] = (), unit: str = "") -> Question:
    return make_mc_question(
        qid=f"mfg-{number:02d}", category=Category.MANUFACTURING,
        prompt=prompt, visual=visual, choices=choices, correct=correct,
        difficulty=difficulty, topics=topics, answer_kind=answer_kind,
        aliases=aliases, unit=unit)


def _sa(number: int, prompt: str, visual: VisualContent, answer: AnswerSpec,
        *, difficulty: float, topics: Sequence[str]) -> Question:
    return make_sa_question(
        qid=f"mfg-{number:02d}", category=Category.MANUFACTURING,
        prompt=prompt, visual=visual, answer=answer,
        difficulty=difficulty, topics=topics)


# ---------------------------------------------------------------------------

def _q_ret_identify() -> Question:
    ret = identify_ret(MaskFeatures(has_isolated_scatter_bars=True))
    assert ret is Ret.SRAF
    scene = mask_pattern_scene(
        features=[(2, 2, 1.5, 6)],
        assist_features=[(0.8, 2, 0.3, 6), (4.4, 2, 0.3, 6)])
    visual = _visual(
        VisualType.FIGURE,
        "A main mask feature flanked by narrow non-printing bars", scene)
    return _mc(
        1,
        "What is the lithography resolution enhancement technique "
        "depicted in the figure?",
        visual,
        ["Sub-resolution assist features (SRAF)",
         "Optical proximity correction serifs",
         "Alternating phase shift mask",
         "Off-axis illumination"],
        0,
        difficulty=0.6,
        topics=("lithography", "ret"),
        answer_kind=AnswerKind.TEXT,
        aliases=("SRAF", "scatter bars", "assist features"),
    )


def _q_boe_over_etch() -> Question:
    """The paper's worked example, solved by the etch model."""
    thickness_nm = 500.0
    minutes = etch.etch_time_minutes(thickness_nm, BOE_5_TO_1,
                                     over_etch_fraction=0.10)
    scene = cross_section_scene(
        stack=[("silicon", 2.0), ("oxide", 1.0), ("resist", 0.8)],
        resist_openings=[(3.5, 3.0)],
        labels=True)
    visual = _visual(
        VisualType.LAYOUT,
        "Si/SiO2 substrate with patterned photoresist and a 500 nm oxide "
        "film", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{minutes:.1f}",
                        aliases=(f"{minutes:.1f} min",
                                 f"{minutes:.2f} minutes",
                                 f"{minutes * 60:.0f} seconds"),
                        unit="minutes")
    return _sa(
        2,
        "Assume 5:1 BOE (Buffered HF) etches SiO2 isotropically at 100 "
        "nm/min, RIE etches SiO2 at 200 nm/min and has a SiO2:Si "
        "selectivity of 15:1. Assume a Si/SiO2 substrate with patterned "
        "photoresist as shown in the figure, with a 500 nm oxide film. "
        "For the structure above, how long should this wafer be placed in "
        "5:1 BOE etchant to record a 10% over-etch?",
        visual, answer, difficulty=0.7,
        topics=("etch", "over-etch"))


def _q_rie_substrate_loss() -> Question:
    over_minutes = etch.etch_time_minutes(500.0, RIE_OXIDE, 0.10) \
        - etch.etch_time_minutes(500.0, RIE_OXIDE, 0.0)
    loss = etch.substrate_loss_nm(over_minutes, RIE_OXIDE)
    scene = cross_section_scene(
        stack=[("silicon", 2.0), ("oxide", 1.0), ("resist", 0.8)],
        resist_openings=[(3.5, 3.0)])
    visual = _visual(VisualType.STRUCTURE,
                     "Oxide opening etched by RIE down to silicon", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{loss:.2f}",
                        aliases=(f"{loss:.2f} nm", f"{loss:.1f} nm",
                                 f"about {loss:.1f} nanometers"),
                        unit="nm")
    return _sa(
        3,
        "The same 500 nm oxide is instead cleared by RIE (200 nm/min, "
        "SiO2:Si selectivity 15:1) with a 10% over-etch. How many "
        "nanometers of silicon are lost during the over-etch portion?",
        visual, answer, difficulty=0.75,
        topics=("etch", "selectivity"))


def _q_undercut() -> Question:
    minutes = etch.etch_time_minutes(300.0, BOE_5_TO_1)
    width = etch.opening_width_after_etch(1000.0, minutes, BOE_5_TO_1)
    scene = cross_section_scene(
        stack=[("silicon", 2.0), ("oxide", 0.6), ("resist", 0.8)],
        resist_openings=[(4.0, 2.0)])
    visual = _visual(VisualType.STRUCTURE,
                     "Isotropic wet etch undercutting the resist mask",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{width:.0f}",
                        aliases=(f"{width:.0f} nm", "1.6 um"),
                        unit="nm")
    return _sa(
        4,
        "A 1000 nm resist opening is used to wet-etch through 300 nm of "
        "oxide in 5:1 BOE (isotropic, 100 nm/min) with no over-etch. "
        "Including undercut on both sides, how wide is the oxide opening "
        "at the top, in nm?",
        visual, answer, difficulty=0.65,
        topics=("etch", "undercut"))


def _q_rayleigh() -> Question:
    resolution = lithography.rayleigh_resolution(0.35, 193.0, 1.35)
    scene = layout_scene({"metal1": [(0, 0, 0.5, 4), (1.0, 0, 0.5, 4),
                                     (2.0, 0, 0.5, 4)]},
                         scale=50,
                         labels=[(0, 4.6, "DENSE LINES HALF PITCH R")])
    visual = _visual(VisualType.LAYOUT,
                     "Dense line/space pattern at the resolution limit",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{resolution:.0f}",
                        aliases=(f"{resolution:.0f} nm", f"{resolution:.1f}"),
                        unit="nm")
    return _sa(
        5,
        "An immersion scanner exposes the dense pattern shown at "
        "wavelength 193 nm with NA = 1.35 and k1 = 0.35. What minimum "
        "half-pitch does the Rayleigh criterion predict, in nm?",
        visual, answer, difficulty=0.55,
        topics=("lithography", "resolution"))


def _q_dof() -> Question:
    dof = lithography.depth_of_focus(0.5, 193.0, 0.9)
    scene = layout_scene({"resist": [(0, 0, 6, 1.2)]},
                         scale=40,
                         labels=[(0, 2.0, "FOCUS WINDOW")])
    visual = _visual(VisualType.LAYOUT,
                     "Resist film within the focus window of the exposure",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{dof:.0f}",
                        aliases=(f"{dof:.0f} nm", f"{dof:.1f}"),
                        unit="nm")
    return _sa(
        6,
        "With lambda = 193 nm, NA = 0.9 and k2 = 0.5, what depth of focus "
        "does the Rayleigh DOF relation give for the exposure shown?",
        visual, answer, difficulty=0.55,
        topics=("lithography", "dof"))


def _q_double_patterning() -> Question:
    needs = lithography.requires_double_patterning(20.0, 193.0, 1.35)
    assert needs is True
    scene = mask_pattern_scene(
        features=[(0.5, 1, 0.8, 6), (2.2, 1, 0.8, 6)],
        phase_regions=[(4.0, 1, 0.8, 6), (5.7, 1, 0.8, 6)])
    visual = _visual(VisualType.FIGURE,
                     "A dense pattern split across two mask colourings",
                     scene)
    k1 = lithography.k1_from_pitch(20.0, 193.0, 1.35)
    return _mc(
        7,
        "A 20 nm half-pitch must be printed with a 193 nm, NA 1.35 "
        "immersion scanner. The implied k1 is about 0.14, and the pattern "
        "is split across two masks as shown. Why?",
        visual,
        ["k1 falls below the 0.25 single-exposure limit, so double "
         "patterning is required",
         "The resist is too thick for a single exposure",
         "Two masks halve the exposure dose",
         "The scanner cannot align a single mask"],
        0,
        difficulty=0.7,
        topics=("lithography", "double patterning"),
        answer_kind=AnswerKind.TEXT,
        aliases=("double patterning needed", "k1 < 0.25"),
    )


def _q_meef() -> Question:
    meef = lithography.mask_error_enhancement_factor(
        cd_wafer_delta=3.0, cd_mask_delta=4.0, magnification=4.0)
    scene = layout_scene({"metal1": [(0, 0, 1.0, 5)],
                          "poly": [(2.5, 0, 1.1, 5)]},
                         scale=40,
                         labels=[(0, 5.6, "MASK CD VS WAFER CD")])
    visual = _visual(VisualType.LAYOUT,
                     "Mask CD error translating to wafer CD error", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{meef:.0f}",
                        aliases=(f"MEEF = {meef:.0f}", f"{meef:.1f}"))
    return _sa(
        8,
        "A 4 nm change in mask CD (at 4x magnification, i.e. 1 nm at "
        "wafer scale) produces a 3 nm change in printed CD, as sketched. "
        "What is the mask error enhancement factor (MEEF)?",
        visual, answer, difficulty=0.7,
        topics=("lithography", "meef"))


def _q_deal_grove() -> Question:
    thickness = diffusion.deal_grove_thickness_um(0.165, 0.0117, 4.0)
    scene = block_diagram_scene(
        [("furnace", "FURNACE 1000C"), ("wafer", "SI WAFER"),
         ("oxide", "SIO2 GROWTH")],
        [("furnace", "wafer"), ("wafer", "oxide")])
    visual = _visual(VisualType.DIAGRAM,
                     "Thermal oxidation furnace schedule", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{thickness:.2f}",
                        aliases=(f"{thickness:.2f} um",
                                 f"{thickness * 1000:.0f} nm"),
                        unit="um")
    return _sa(
        9,
        "Dry oxidation at 1000 C follows the Deal-Grove model with A = "
        "0.165 um and B = 0.0117 um^2/hr, starting from bare silicon. How "
        "thick is the oxide after the 4-hour cycle shown, in microns?",
        visual, answer, difficulty=0.75,
        topics=("oxidation", "deal-grove"))


def _q_silicon_consumed() -> Question:
    consumed = diffusion.oxide_silicon_consumed_um(0.5)
    scene = cross_section_scene(
        stack=[("silicon", 1.6), ("oxide", 1.0)],
        resist_openings=[])
    visual = _visual(VisualType.STRUCTURE,
                     "Grown oxide with the original silicon surface marked",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{consumed:.2f}",
                        aliases=(f"{consumed:.2f} um", "220 nm"),
                        unit="um")
    return _sa(
        10,
        "Growing the 0.5 um thermal oxide shown consumes silicon beneath "
        "the original surface. Using the standard 44% ratio, how much "
        "silicon is consumed, in microns?",
        visual, answer, difficulty=0.5,
        topics=("oxidation",))


def _q_junction_depth() -> Question:
    depth_um = diffusion.junction_depth_gaussian(
        dose_cm2=1e14, d_cm2_s=1e-13, time_s=3600.0,
        background_cm3=1e16) * 1e4
    scene = layout_scene({"diffusion": [(1, 0, 4, 1.2)],
                          "silicon": [(0, -1.5, 6, 1.5)]},
                         scale=40,
                         labels=[(0, 2.0, "GAUSSIAN DRIVE-IN PROFILE")])
    visual = _visual(VisualType.LAYOUT,
                     "Dopant well after drive-in with junction marked",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{depth_um:.2f}",
                        aliases=(f"{depth_um:.2f} um", f"{depth_um:.1f} um"),
                        unit="um", rel_tol=0.05)
    return _sa(
        11,
        "A boron drive-in (dose 1e14 cm^-2, D = 1e-13 cm^2/s, 1 hour) "
        "forms the Gaussian profile sketched over a 1e16 cm^-3 n-type "
        "background. At what depth (microns) is the metallurgical "
        "junction?",
        visual, answer, difficulty=0.9,
        topics=("doping", "diffusion"))


def _q_diffusion_length() -> Question:
    length = diffusion.diffusion_length_um(1e-12, 1800.0)
    scene = (block_diagram_scene(
        [("pre", "PREDEP 950C"), ("drive", "DRIVE-IN 1100C")],
        [("pre", "drive")])
        + translate(equation_scene(["L = 2 SQRT(D T)"]), 0, 200))
    visual = _visual(VisualType.DIAGRAM,
                     "Two-step doping schedule with the length relation",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{length:.2f}",
                        aliases=(f"{length:.2f} um", f"{length:.3f}"),
                        unit="um", rel_tol=0.05)
    return _sa(
        12,
        "For the drive-in step shown (D = 1e-12 cm^2/s for 30 minutes), "
        "what characteristic diffusion length 2 sqrt(Dt) results, in "
        "microns?",
        visual, answer, difficulty=0.65,
        topics=("diffusion",))


def _q_sheet_resistance() -> Question:
    r_wire = diffusion.wire_resistance(0.1, length_um=500.0, width_um=0.5)
    scene = (layout_scene({"metal1": [(0, 0, 8, 0.4)]}, scale=40,
                          labels=[(0, 1.2, "L=500UM W=0.5UM")])
             + translate(table_scene([["PARAM", "VALUE"],
                                      ["RSHEET", "0.1 OHM/SQ"]],
                                     origin=(40, 40)), 270, 0))
    visual = _visual(VisualType.MIXED,
                     "Long metal wire with its sheet-resistance table",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{r_wire:.0f}",
                        aliases=(f"{r_wire:.0f} Ohm", f"{r_wire:.1f}"),
                        unit="Ohm")
    return _sa(
        13,
        "The interconnect shown is 500 um long and 0.5 um wide on a "
        "layer with 0.1 Ohm/sq sheet resistance. What is its end-to-end "
        "resistance?",
        visual, answer, difficulty=0.5,
        topics=("interconnect", "sheet resistance"))


def _q_poisson_yield() -> Question:
    value = yieldmodel.poisson_yield(0.5, 1.0) * 100.0
    gold = f"{value:.0f}%"
    scene = layout_scene({"metal1": [(x, y, 0.9, 0.9)
                                     for x in range(0, 6, 1)
                                     for y in range(0, 5, 1)]},
                         scale=30,
                         labels=[(0, 5.6, "WAFER MAP D=0.5 A=1CM2")])
    visual = _visual(VisualType.LAYOUT,
                     "Die grid on a wafer with defect density annotated",
                     scene)
    return _mc(
        14,
        "Dies of 1 cm^2 are printed on a wafer with defect density 0.5 "
        "defects/cm^2, as annotated. What yield does the Poisson model "
        "predict?",
        visual,
        [gold, "50%", "78%", "37%"],
        0,
        difficulty=0.6,
        topics=("yield",),
        answer_kind=AnswerKind.NUMERIC,
        aliases=(f"{value / 100:.2f}", f"{value:.1f}%"),
    )


def _q_dies_per_wafer() -> Question:
    count = yieldmodel.dies_per_wafer(300.0, 10.0, 10.0)
    scene = layout_scene({"metal1": [(x, y, 0.9, 0.9)
                                     for x in range(0, 7)
                                     for y in range(0, 6)]},
                         scale=28,
                         labels=[(0, 6.6, "300MM WAFER 10X10MM DIE")])
    visual = _visual(VisualType.LAYOUT,
                     "Die grid across a 300 mm wafer", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(count),
                        aliases=(f"{count} dies", f"about {count}"),
                        rel_tol=0.03)
    return _sa(
        15,
        "Using the edge-corrected formula N = pi r^2 / A - pi d / "
        "sqrt(2A), how many gross 10 mm x 10 mm dies fit on the 300 mm "
        "wafer shown?",
        visual, answer, difficulty=0.65,
        topics=("yield", "wafer arithmetic"))


def _q_die_cost() -> Question:
    cost = yieldmodel.cost_per_good_die(
        wafer_cost=5000.0, wafer_diameter_mm=300.0, die_w_mm=10.0,
        die_h_mm=10.0, defect_density_cm2=0.5)
    scene = (table_scene([["ITEM", "VALUE"],
                          ["WAFER COST", "5000"],
                          ["DIE", "10X10MM"],
                          ["D0", "0.5/CM2"]])
             + translate(block_diagram_scene(
                 [("fab", "FAB"), ("test", "TEST"), ("good", "GOOD DIES")],
                 [("fab", "test"), ("test", "good")]), 250, 60))
    visual = _visual(VisualType.MIXED,
                     "Cost inputs and the fab-to-good-die pipeline", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{cost:.0f}",
                        aliases=(f"${cost:.0f}", f"{cost:.2f}"),
                        rel_tol=0.05)
    return _sa(
        16,
        "A 300 mm wafer costs $5000 and yields 10 mm x 10 mm dies at 0.5 "
        "defects/cm^2 (Poisson), per the table. What is the cost per good "
        "die, in dollars?",
        visual, answer, difficulty=0.75,
        topics=("yield", "cost"))


def _q_wafer_map() -> Question:
    signature = defects.WaferMapSignature(
        linear_fit_r2=0.96, edge_fraction=0.2, cluster_factor=1.1)
    classified = defects.classify_map(signature)
    assert classified is defects.DefectClass.SCRATCH
    scene = [{"op": "circle", "center": [256, 190], "radius": 150},
             {"op": "polyline", "points": [[150, 120], [340, 260]],
              "thickness": 3},
             {"op": "text", "xy": [180, 330], "s": "DEFECT MAP"}]
    visual = _visual(VisualType.FIGURE,
                     "Wafer map with defects along a straight line", scene)
    return _mc(
        17,
        "The wafer defect map shown has its defects concentrated along a "
        "straight line (linear fit R^2 = 0.96). What defect mechanism "
        "does this signature indicate?",
        visual,
        ["A mechanical scratch", "Random particle fallout",
         "Edge-bead removal residue", "Resist clustering"],
        0,
        difficulty=0.5,
        topics=("defects", "wafer maps"),
        answer_kind=AnswerKind.TEXT,
        aliases=("scratch", "handling scratch"),
    )


def _q_cluster_factor() -> Question:
    counts = [0, 0, 1, 0, 9, 8, 0, 1, 0, 1]
    factor = defects.cluster_factor(counts)
    scene = block_diagram_scene(
        [("insp", "INSPECTION"), ("cnt", "PER-DIE COUNTS"),
         ("stat", "VAR/MEAN")],
        [("insp", "cnt"), ("cnt", "stat")])
    visual = _visual(VisualType.DIAGRAM,
                     "Defect-count statistics pipeline", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{factor:.1f}",
                        aliases=(f"{factor:.2f}",), rel_tol=0.05)
    return _sa(
        18,
        "Per-die defect counts from the inspection shown are 0, 0, 1, 0, "
        "9, 8, 0, 1, 0, 1. Compute the variance-to-mean ratio (cluster "
        "factor); values well above 1 indicate clustering.",
        visual, answer, difficulty=0.7,
        topics=("defects", "statistics"))


def _q_critical_area() -> Question:
    area = defects.critical_area_wires(
        defect_diameter_um=2.0, wire_width_um=1.0, wire_space_um=1.0,
        layout_area_um2=10000.0)
    probability = defects.failure_probability(
        defect_density_cm2=1.0, critical_area_cm2=area * 1e-8)
    scene = layout_scene({"metal1": [(0, y, 9, 0.5)
                                     for y in range(0, 5)]},
                         scale=36,
                         labels=[(0, 5.4, "W=1 S=1 PARTICLE D=2")])
    visual = _visual(VisualType.LAYOUT,
                     "Parallel wires with a bridging particle", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{area:.0f}",
                        aliases=(f"{area:.0f} um^2", f"{area:.1f}"),
                        unit="um^2")
    assert 0.0 < probability < 1.0
    return _sa(
        19,
        "The wiring pattern shown has 1 um lines and 1 um spaces over "
        "10000 um^2. For conducting particles of 2 um diameter, what is "
        "the critical area for shorts, in um^2 (fraction (d - s)/pitch "
        "of the area)?",
        visual, answer, difficulty=0.88,
        topics=("defects", "critical area"))


def _q_process_flow() -> Question:
    steps = ["CLEAN", "DEPOSIT", "LITHO", "ETCH", "STRIP", "INSPECT"]
    scene = flow_chart_scene(steps, loop_back=0)
    visual = _visual(VisualType.FLOW,
                     "One patterning loop of the wafer process flow", scene)
    return _mc(
        20,
        "In the patterning loop shown, which step immediately follows "
        "lithography?",
        visual,
        ["Etch", "Deposition", "Resist strip", "Inspection"],
        0,
        difficulty=0.1,
        topics=("process flow",),
        answer_kind=AnswerKind.TEXT,
        aliases=("etching", "the etch step"),
    )


_BUILDERS = [
    _q_ret_identify, _q_boe_over_etch, _q_rie_substrate_loss, _q_undercut,
    _q_rayleigh, _q_dof, _q_double_patterning, _q_meef, _q_deal_grove,
    _q_silicon_consumed, _q_junction_depth, _q_diffusion_length,
    _q_sheet_resistance, _q_poisson_yield, _q_dies_per_wafer, _q_die_cost,
    _q_wafer_map, _q_cluster_factor, _q_critical_area, _q_process_flow,
]


#: Worked solutions, interpolating the computed gold as ``{gold}``.
_EXPLANATIONS = {
    "mfg-01": "Narrow bars beside the main feature that are too small to "
              "print themselves are sub-resolution assist features "
              "(scatter bars).",
    "mfg-02": "Clearing 500 nm at 100 nm/min takes 5 minutes; a 10% "
              "over-etch adds 0.5 min, so {gold} minutes.",
    "mfg-03": "The 10% over-etch runs 0.25 min; silicon etches at "
              "200/15 nm/min, so 13.3 x 0.25 = {gold} nm.",
    "mfg-04": "Three minutes of isotropic etch undercuts 300 nm per "
              "side: 1000 + 2 x 300 = {gold} nm.",
    "mfg-05": "R = k1 lambda / NA = 0.35 x 193 / 1.35 = {gold} nm.",
    "mfg-06": "DOF = k2 lambda / NA^2 = 0.5 x 193 / 0.81 = {gold} nm.",
    "mfg-07": "k1 = HP x NA / lambda = 20 x 1.35 / 193 = 0.14 < 0.25, "
              "below the single-exposure limit, so the pattern must be "
              "split.",
    "mfg-08": "MEEF = (dCD_wafer / dCD_mask) x M = (3/4) x 4 = {gold}.",
    "mfg-09": "Solving x^2 + 0.165x = 0.0117 x 4 gives x = {gold} um.",
    "mfg-10": "Thermal oxide consumes 44% of its thickness in silicon: "
              "0.44 x 0.5 = {gold} um.",
    "mfg-11": "The Gaussian peak is Q/sqrt(pi D t); setting N(x) = 1e16 "
              "and solving x = sqrt(4Dt ln(Npeak/NB)) gives {gold} um.",
    "mfg-12": "L = 2 sqrt(D t) = 2 sqrt(1e-12 x 1800) cm = {gold} um.",
    "mfg-13": "500 um / 0.5 um = 1000 squares at 0.1 Ohm/sq = {gold} "
              "Ohm.",
    "mfg-14": "Poisson yield e^(-DA) = e^-0.5 = {gold}.",
    "mfg-15": "pi r^2/A - pi d/sqrt(2A) = 706.9 - 66.6 = {gold} gross "
              "dies.",
    "mfg-16": "640 gross dies x e^-0.5 yield = 388 good; "
              "$5000/388 = {gold} dollars.",
    "mfg-17": "Defects collinear with R^2 = 0.96 trace a tool or handler "
              "contact path: a scratch.",
    "mfg-18": "Mean count is 2.0 and variance 10.8, so var/mean = {gold} "
              "— strongly clustered.",
    "mfg-19": "Fraction (d - s)/pitch = (2-1)/2 = 0.5 of the area is "
              "critical: 0.5 x 10000 = {gold} um^2.",
    "mfg-20": "Lithography defines the pattern that the etch step then "
              "transfers into the film: {gold} follows.",
}


def generate_manufacturing_questions() -> List[Question]:
    """All 20 Manufacturing questions, in stable order."""
    import dataclasses

    questions = [builder() for builder in _BUILDERS]
    if len(questions) != 20:
        raise AssertionError(
            f"expected 20 manufacturing questions, got {len(questions)}")
    questions = [
        dataclasses.replace(
            q, explanation=_EXPLANATIONS[q.qid].replace("{gold}",
                                                        q.gold_text))
        for q in questions
    ]
    return questions


#: Version of this family's question generators.  Folded into the
#: content-addressed build-cache fingerprint (see
#: :func:`repro.core.databuild.generator_fingerprint`): bump whenever a
#: builder's output changes so stale cached shards are invalidated.
GENERATOR_VERSION = "manufacturing-1"


def generate_manufacturing_questions_scaled(
    seed: int,
    shard_index: int,
    shard_size: int,
    total: Optional[int] = None,
) -> List[Question]:
    """Manufacturing members of one shard of a seeded scaled build.

    Delegates to :func:`repro.core.databuild.family_scaled_questions`:
    shard ``shard_index`` of the interleaved global sequence is built
    (through the shard build cache) and this family's members are
    returned in global order.  ``total`` clips the final shard of an
    ``n``-question build.
    """
    from repro.core.databuild import family_scaled_questions
    from repro.core.question import Category

    return family_scaled_questions(
        Category.MANUFACTURING, seed, shard_index, shard_size, total=total)
