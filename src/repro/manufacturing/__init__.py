"""Semiconductor manufacturing substrate: lithography, etch, diffusion,
yield and defect models, and the 20 Manufacturing ChipVQA questions built
on them."""

from repro.manufacturing import (
    defects,
    diffusion,
    etch,
    lithography,
    spc,
    yieldmodel,
)
from repro.manufacturing.questions import (
    generate_manufacturing_questions,
    generate_manufacturing_questions_scaled,
)

__all__ = [
    "defects",
    "diffusion",
    "etch",
    "lithography",
    "spc",
    "yieldmodel",
    "generate_manufacturing_questions",
    "generate_manufacturing_questions_scaled",
]
