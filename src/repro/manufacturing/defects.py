"""Wafer defects: classification signatures and critical-area analysis."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class DefectClass(enum.Enum):
    """Spatial defect signatures a wafer map can exhibit."""

    PARTICLE = "particle"
    SCRATCH = "scratch"
    EDGE_RING = "edge ring"
    CLUSTER = "cluster"
    RANDOM = "random"


@dataclass(frozen=True)
class WaferMapSignature:
    """Spatial statistics of a wafer defect map."""

    linear_fit_r2: float        # how well defects fit a line
    edge_fraction: float        # fraction within the edge exclusion band
    cluster_factor: float       # variance-to-mean ratio of per-die counts

    def __post_init__(self) -> None:
        if not 0 <= self.linear_fit_r2 <= 1:
            raise ValueError("r2 must be in [0, 1]")
        if not 0 <= self.edge_fraction <= 1:
            raise ValueError("edge fraction must be in [0, 1]")
        if self.cluster_factor < 0:
            raise ValueError("cluster factor must be non-negative")


def classify_map(signature: WaferMapSignature) -> DefectClass:
    """Rule-based classification mirroring how process engineers read maps."""
    if signature.linear_fit_r2 > 0.9:
        return DefectClass.SCRATCH
    if signature.edge_fraction > 0.7:
        return DefectClass.EDGE_RING
    if signature.cluster_factor > 2.0:
        return DefectClass.CLUSTER
    return DefectClass.RANDOM


def cluster_factor(per_die_counts: Sequence[int]) -> float:
    """Variance-to-mean ratio; 1 for Poisson (random), >1 for clustering."""
    if not per_die_counts:
        raise ValueError("no counts")
    n = len(per_die_counts)
    mean = sum(per_die_counts) / n
    if mean == 0:
        return 0.0
    variance = sum((c - mean) ** 2 for c in per_die_counts) / n
    return variance / mean


def critical_area_wires(defect_diameter_um: float, wire_width_um: float,
                        wire_space_um: float, layout_area_um2: float) -> float:
    """Critical area for shorts between parallel wires.

    A conducting particle of diameter d shorts adjacent wires when it
    bridges the space s: the critical fraction of the pitch is
    (d - s) / pitch for d > s, zero otherwise.
    """
    if min(defect_diameter_um, wire_width_um, wire_space_um) <= 0:
        raise ValueError("dimensions must be positive")
    if layout_area_um2 <= 0:
        raise ValueError("area must be positive")
    if defect_diameter_um <= wire_space_um:
        return 0.0
    pitch = wire_width_um + wire_space_um
    fraction = min(1.0, (defect_diameter_um - wire_space_um) / pitch)
    return layout_area_um2 * fraction


def failure_probability(defect_density_cm2: float,
                        critical_area_cm2: float) -> float:
    """Poisson probability that at least one killer defect lands."""
    if defect_density_cm2 < 0 or critical_area_cm2 < 0:
        raise ValueError("bad parameters")
    return 1.0 - math.exp(-defect_density_cm2 * critical_area_cm2)


def particles_added_per_step(counts_before: Sequence[int],
                             counts_after: Sequence[int]) -> List[int]:
    """Per-wafer particle adders across a process step."""
    if len(counts_before) != len(counts_after):
        raise ValueError("mismatched wafer lists")
    adders = []
    for before, after in zip(counts_before, counts_after):
        if before < 0 or after < 0:
            raise ValueError("negative counts")
        adders.append(after - before)
    return adders
