"""Prompt construction for VLM evaluation.

Reproduces the paper's prompting setup (Section IV): a question-answering
system prompt, MC options rendered as text in the user prompt, and the
fallback for models without system-prompt support (PaliGemma-style), where
the system prompt is concatenated with the user question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.question import Question, QuestionType, format_choices

SYSTEM_PROMPT = (
    "You are an expert chip design engineer. Answer the question about "
    "the attached figure. For multiple choice questions respond with the "
    "single letter of the correct option. For short answer questions "
    "respond with the value or phrase only, including units where "
    "applicable. Do not explain your reasoning."
)

JUDGE_SYSTEM_PROMPT = (
    "You are a strict grader. Given a golden answer and a model response "
    "to the same chip-design question, reply with exactly YES if they are "
    "equivalent answers and NO otherwise. Numeric answers are equivalent "
    "when they agree within rounding and unit conversion; expressions are "
    "equivalent when they denote the same function."
)


@dataclass(frozen=True)
class PromptBundle:
    """What gets sent to a model for one question."""

    system: Optional[str]
    user: str
    image_count: int

    @property
    def combined(self) -> str:
        """System and user text merged (for models without system role)."""
        if self.system:
            return f"{self.system}\n\n{self.user}"
        return self.user


def question_user_prompt(question: Question) -> str:
    """The user-turn text for a question (choices included for MC)."""
    parts: List[str] = [question.prompt]
    if question.question_type is QuestionType.MULTIPLE_CHOICE:
        parts.append("")
        parts.append(format_choices(question.choices))
        parts.append("")
        parts.append("Answer with the letter of the correct option.")
    else:
        parts.append("")
        parts.append("Answer with the value or short phrase only.")
    return "\n".join(parts)


def build_prompt(question: Question,
                 supports_system_prompt: bool = True) -> PromptBundle:
    """Assemble the full prompt bundle for a model."""
    user = question_user_prompt(question)
    if supports_system_prompt:
        return PromptBundle(system=SYSTEM_PROMPT, user=user,
                            image_count=len(question.all_visuals))
    merged = f"{SYSTEM_PROMPT}\n\n{user}"
    return PromptBundle(system=None, user=merged,
                        image_count=len(question.all_visuals))


def judge_prompt(gold: str, response: str) -> str:
    """The user prompt handed to the auto-evaluation judge."""
    return (f"Golden answer: {gold}\n"
            f"Model response: {response}\n"
            f"Are these equivalent? Reply YES or NO.")
