"""ASCII rendering of the paper's tables from live evaluation results."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.metrics import EvalResult
from repro.core.question import Category, QuestionType

CATEGORY_ORDER = (Category.DIGITAL, Category.ANALOG, Category.ARCHITECTURE,
                  Category.MANUFACTURING, Category.PHYSICAL)

TABLE2_COLUMNS = ["Digital", "Analog", "Architecture", "Manufacture",
                  "Physical", "all"]


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                  title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w)
                                for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(dataset: Dataset) -> str:
    """Table I: benchmark statistics."""
    rows: List[List[str]] = []
    type_counts = dataset.type_counts()
    rows.append(["Data", "Total",
                 str(len(dataset))])
    rows.append(["Data", "MC",
                 str(type_counts[QuestionType.MULTIPLE_CHOICE])])
    rows.append(["Data", "SA",
                 str(type_counts[QuestionType.SHORT_ANSWER])])
    for category, count in dataset.category_counts().items():
        rows.append(["Category", category.value, str(count)])
    for visual_type, count in dataset.visual_counts().items():
        rows.append(["Visual", visual_type.value, str(count)])
    for name, value in dataset.token_stats().as_rows():
        rows.append(["Prompt Token", name, str(value)])
    return _format_table(["Block", "Item", "Value"], rows,
                         title="TABLE I  Statistics of ChipVQA")


def render_table2(results: Mapping[str, Mapping[str, EvalResult]],
                  row_labels: Optional[Mapping[str, str]] = None) -> str:
    """Table II: zero-shot pass@1, both settings."""
    headers = (["Model"] + [f"MC:{c}" for c in TABLE2_COLUMNS]
               + [f"SA:{c}" for c in TABLE2_COLUMNS])
    rows: List[List[str]] = []
    for model_name, settings in results.items():
        label = (row_labels or {}).get(model_name, model_name)
        row = [label]
        for setting in ("with_choice", "no_choice"):
            result = settings[setting]
            values = result.row(CATEGORY_ORDER)
            row.extend(f"{v:.2f}" for v in values)
        rows.append(row)
    return _format_table(headers, rows,
                         title="TABLE II  Zero-Shot Evaluation on ChipVQA")


def render_table3(gpt4o: Mapping[str, EvalResult],
                  agent: Mapping[str, EvalResult]) -> str:
    """Table III: agent-system comparison (overall pass@1)."""
    rows = [
        ["With Choice", "GPT4o", f"{gpt4o['with_choice'].pass_at_1():.2f}"],
        ["With Choice", "Agent", f"{agent['with_choice'].pass_at_1():.2f}"],
        ["No Choice", "GPT4o", f"{gpt4o['no_choice'].pass_at_1():.2f}"],
        ["No Choice", "Agent", f"{agent['no_choice'].pass_at_1():.2f}"],
    ]
    return _format_table(
        ["Collection", "Model", "Pass@1"], rows,
        title="TABLE III  Evaluation of Agent System on ChipVQA")


def render_resolution_study(results: Mapping[int, EvalResult],
                            category: Category = Category.DIGITAL) -> str:
    """Section IV-B: pass rate per downsampling factor."""
    rows = [
        [f"{factor}x" if factor > 1 else "native",
         f"{result.pass_at_1():.2f}"]
        for factor, result in sorted(results.items())
    ]
    return _format_table(
        ["Resolution", f"Pass@1 ({category.short})"], rows,
        title="Resolution study (Section IV-B)")


def render_leaderboard(results: Mapping[str, EvalResult],
                       significance: bool = True) -> str:
    """A ranked leaderboard with significance separators.

    Adjacent models are compared with McNemar's exact test; a ``---``
    separator marks a statistically significant gap (p < 0.05), so ties
    within a bracket should not be over-interpreted.
    """
    from repro.core.significance import compare, rank_models

    ranking = rank_models(dict(results))
    rows: List[List[str]] = []
    for index, (name, score) in enumerate(ranking):
        rows.append([str(index + 1), name, f"{score:.2f}"])
        if significance and index + 1 < len(ranking):
            nxt = ranking[index + 1][0]
            comparison = compare(results[name], results[nxt])
            if comparison.significant:
                rows.append(["", "~~~ significant gap ~~~", ""])
    return _format_table(
        ["Rank", "Model", "Pass@1"], rows,
        title="Leaderboard (~~~ marks p < 0.05 gaps)")


def render_composition(dataset: Dataset) -> str:
    """Fig. 1-style composition summary: disciplines x difficulty."""
    rows: List[List[str]] = []
    for category in CATEGORY_ORDER:
        subset = dataset.by_category(category)
        histogram = subset.difficulty_histogram(bins=5)
        mc = subset.mc_counts_by_category()[category]
        rows.append([
            category.value,
            str(len(subset)),
            str(mc),
            str(len(subset) - mc),
            " ".join(str(b) for b in histogram),
        ])
    return _format_table(
        ["Discipline", "Questions", "MC", "SA", "Difficulty histogram"],
        rows,
        title="ChipVQA composition (Fig. 1)")
