"""Content-keyed memoization of judged per-question answers.

The runner caches each judged :class:`~repro.core.metrics.EvalRecord`
under a key derived from everything the record can depend on:

* **provider identity** — the provider name *and* its
  ``config_fingerprint()``, so two differently-configured providers
  sharing a display name (e.g. a local zoo model and a remote stub
  wrapping it with failure injection) can never alias entries;
* **question content** — the full serialised question (prompt, choices,
  gold answer, category, difficulty, visuals), not just its id, so an
  edited question never resurrects a stale verdict;
* **setting** and **resolution factor** — the Table II axis and the
  Section IV-B axis;
* **perception mode** (``use_raster``);
* **category cohort** — a digest of the same-category questions in the
  work unit.  Quota-IRT realises correctness per category quota, so a
  question's outcome is a function of its category peers; two units
  share cache entries exactly when those peers coincide (e.g. the full
  collection and its per-category subsets), and arbitrary slices are
  kept apart rather than silently served wrong verdicts.

The cache is the retry path's safety net: when a transient fault aborts
a unit halfway, the retry replays only the unanswered questions.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Iterable, Optional

from repro.core.metrics import EvalRecord
from repro.core.question import Question


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def question_digest(question: Question) -> str:
    """Stable digest of a question's full serialised content.

    Memoised on the instance: every cache-key computation serialises the
    question twice (once directly, once through its category cohort),
    and shard caching reuses the same ``Question`` objects across units,
    so the stage profiler showed this serialise-and-hash dominating the
    runner's ``eval``-stage CPU.  ``Question`` is a frozen dataclass —
    its content cannot change after construction — so the digest is
    stashed on the instance the first time and reused verbatim;
    ``dataclasses.replace`` builds a new instance and therefore a fresh
    digest.
    """
    cached = question.__dict__.get("_content_digest")
    if cached is None:
        cached = _digest(question.to_json())
        object.__setattr__(question, "_content_digest", cached)
    return cached


def cohort_digest(questions: Iterable[Question]) -> str:
    """Digest of a set of questions, order-independent.

    Used for the category-cohort component of the key; passing the
    same-category members of a work unit pins the quota context a
    record was computed under.
    """
    return _digest("\n".join(sorted(question_digest(q) for q in questions)))


def question_key(model_name: str, question: Question, setting: str,
                 resolution_factor: int = 1, use_raster: bool = False,
                 cohort: str = "", provider_fingerprint: str = "") -> str:
    """The cache key for one judged (provider, question, context) answer.

    Mutating any component — provider identity (name or configuration
    fingerprint), any field of the question content, the setting, the
    resolution factor, the perception mode or the cohort — yields a
    different key.  ``provider_fingerprint`` is the provider's
    ``config_fingerprint()``; the empty default keys by name alone
    (the pre-provider behaviour, kept for direct callers).
    """
    return _digest("|".join((
        "chipvqa-runcache-v2",
        model_name,
        provider_fingerprint,
        setting,
        f"r{resolution_factor}",
        f"raster{int(bool(use_raster))}",
        question_digest(question),
        cohort,
    )))


class RunCache:
    """A thread-safe in-memory record cache with hit/miss accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, EvalRecord] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def get(self, key: str) -> Optional[EvalRecord]:
        """Look a record up, counting the outcome as a hit or miss."""
        with self._lock:
            record = self._records.get(key)
            if record is None:
                self.misses += 1
            else:
                self.hits += 1
            return record

    def peek(self, key: str) -> Optional[EvalRecord]:
        """Look a record up without touching the hit/miss counters."""
        with self._lock:
            return self._records.get(key)

    def put(self, key: str, record: EvalRecord) -> None:
        with self._lock:
            self._records[key] = record

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.hits = 0
            self.misses = 0
