"""Parallel, fault-tolerant evaluation runner with checkpoint/resume.

The paper's protocol is a long sweep — 12 models x 2 settings x 142
questions plus a resolution study — and real sweeps of that shape are
latency-bound, failure-prone pipelines.  :class:`ParallelRunner` shards
the sweep into :class:`WorkUnit`\\ s (one (model, dataset, setting,
resolution) cell each), executes them across a thread pool, and wraps
every unit in the reliability machinery a production evaluation service
needs:

* **memoization** — judged per-question answers are cached
  content-keyed in a :class:`~repro.core.runcache.RunCache`, so a
  retried or repeated unit replays only unanswered questions;
* **retry with exponential backoff** — a
  :class:`~repro.core.faults.TransientModelError` escaping the
  pluggable fault boundary re-runs the unit after a growing delay; a
  :class:`~repro.core.faults.PermanentError` marks the unit failed and
  the rest of the run proceeds;
* **checkpoint/resume** — each completed
  :class:`~repro.core.metrics.EvalResult` is written through
  :mod:`repro.core.results_io` into ``run_dir`` together with a
  ``manifest.json`` progress file; a re-launched run loads intact
  checkpoints instead of re-evaluating, and detects truncated ones;
* **telemetry** — :class:`RunStats` records per-unit wall time, retry
  counts, cache hits and queue depth, aggregated into the manifest
  together with a :mod:`repro.core.perfstats` snapshot of the
  perception-substrate caches (render / legibility / perception /
  dataset), so cache effectiveness is visible in every run artifact;
* **resilience** — the :mod:`repro.core.resilience` layer: a per-model
  :class:`~repro.core.resilience.CircuitBreaker` fast-fails the
  remaining units of a repeatedly-failing model, per-unit deadlines
  (cooperative :class:`~repro.core.resilience.Deadline` checks at
  every boundary crossing plus a
  :class:`~repro.core.resilience.Watchdog` for wedged workers) resolve
  hung units as ``timed_out``, and a
  :class:`~repro.core.resilience.QuarantinePolicy` salvages a unit
  around its permanently-faulting questions.  Checkpoints are
  checksummed (``results_io`` format v2) and resume rejects corrupt or
  stale files, counting them in :class:`RunStats`.

Determinism is a hard guarantee: unit evaluations are pure (seeded
simulation + deterministic judge), so ``workers=1`` and ``workers=8``
produce byte-identical JSONL artifacts.  See ``docs/RUNNER.md`` and
``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable, Dict, List, Optional, Sequence, TYPE_CHECKING,
)

from repro.core import executor as executor_mod
from repro.core import perfstats, results_io
from repro.core.dataset import Dataset
from repro.core.engine import (
    FAILURE_STATUSES,
    MANIFEST_FORMAT_VERSION,
    MANIFEST_NAME,
    EvalEngine,
)
from repro.core.faults import (
    FaultBoundary,
    ModelCallError,
    PermanentError,
    TransientModelError,
)
from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category, Question
from repro.core.resilience import (
    AdmissionPolicy,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    QuarantinePolicy,
    Watchdog,
    quarantined_record,
)
from repro.core.runcache import RunCache, cohort_digest, question_key
from repro.models.providers import (
    AsyncCallScheduler,
    ModelAnswer,
    ModelProvider,
    as_async_provider,
    as_provider,
    create_provider,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.core.harness import EvaluationHarness

__all__ = [
    "FAILURE_STATUSES", "MANIFEST_FORMAT_VERSION", "MANIFEST_NAME",
    "ParallelRunner", "RetryPolicy", "RunOutcome", "RunStats",
    "UnitStats", "WorkUnit", "read_manifest",
]


def _slug(text: str) -> str:
    """Filesystem-safe token for checkpoint file names."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text)


@dataclass(frozen=True)
class WorkUnit:
    """One shardable evaluation cell.

    ``model`` accepts any :class:`~repro.models.providers.ModelProvider`,
    a raw ``answer_all``-compatible model (wrapped in a
    :class:`~repro.models.providers.LocalProvider`), or a provider
    *registry name* (a string, resolved against the default registry) —
    the serializable form checkpoints and manifests reference.

    ``use_raster=None`` defers to the harness default; the resolution
    study pins it ``True`` per unit instead of rebuilding the harness.
    """

    model: "ModelProvider | str"
    dataset: Dataset
    setting: str
    resolution_factor: int = 1
    use_raster: Optional[bool] = None

    def __post_init__(self) -> None:
        resolved = (create_provider(self.model)
                    if isinstance(self.model, str)
                    else as_provider(self.model))
        object.__setattr__(self, "model", resolved)

    @property
    def provider(self) -> ModelProvider:
        """The unit's resolved model provider (``model`` post-coercion)."""
        return self.model  # type: ignore[return-value]

    @property
    def unit_id(self) -> str:
        """Stable identifier; doubles as the checkpoint file stem."""
        return "__".join((
            _slug(self.provider.name),
            _slug(self.dataset.name),
            _slug(self.setting),
            f"r{self.resolution_factor}",
        ))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff around transient model faults."""

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_delay,
                   self.base_delay * self.multiplier ** (attempt - 1))


@dataclass
class UnitStats:
    """Telemetry of one work unit's lifecycle."""

    unit_id: str
    #: pending | completed | failed | resumed | fast_failed | timed_out
    status: str = "pending"
    attempts: int = 0
    retries: int = 0
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    queue_depth: int = 0         # units still unstarted when this one began
    quarantined: int = 0         # questions salvaged as judge_method=quarantined
    corrupt_checkpoints: int = 0  # resume files rejected: parse/checksum
    stale_checkpoints: int = 0    # resume files rejected: metadata mismatch
    worker_respawns: int = 0      # process-backend worker deaths absorbed
    node: Optional[str] = None    # coordinator node that committed the unit
    steals: int = 0               # times a lease on this unit was stolen
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "unit_id": self.unit_id,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "wall_time_s": round(self.wall_time_s, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "queue_depth": self.queue_depth,
            "quarantined": self.quarantined,
            "corrupt_checkpoints": self.corrupt_checkpoints,
            "stale_checkpoints": self.stale_checkpoints,
            "worker_respawns": self.worker_respawns,
            "node": self.node,
            "steals": self.steals,
            "error": self.error,
        }


class RunStats:
    """Aggregated run telemetry (thread-safe registry of unit stats)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._units: Dict[str, UnitStats] = {}
        self._perf_caches: Dict[str, Dict[str, int]] = {}
        self._absorbed_perf: Dict[str, Dict[str, int]] = {}
        self._coordinator: Dict[str, int] = {}

    def unit(self, unit_id: str) -> UnitStats:
        with self._lock:
            if unit_id not in self._units:
                self._units[unit_id] = UnitStats(unit_id=unit_id)
            return self._units[unit_id]

    def units(self) -> List[UnitStats]:
        with self._lock:
            return list(self._units.values())

    def _count(self, status: str) -> int:
        return sum(1 for u in self.units() if u.status == status)

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def failed(self) -> int:
        return self._count("failed")

    @property
    def resumed(self) -> int:
        return self._count("resumed")

    @property
    def fast_failed(self) -> int:
        return self._count("fast_failed")

    @property
    def timed_out(self) -> int:
        return self._count("timed_out")

    @property
    def quarantined(self) -> int:
        return sum(u.quarantined for u in self.units())

    @property
    def corrupt_checkpoints(self) -> int:
        return sum(u.corrupt_checkpoints for u in self.units())

    @property
    def stale_checkpoints(self) -> int:
        return sum(u.stale_checkpoints for u in self.units())

    @property
    def total_retries(self) -> int:
        return sum(u.retries for u in self.units())

    @property
    def cache_hits(self) -> int:
        return sum(u.cache_hits for u in self.units())

    @property
    def cache_misses(self) -> int:
        return sum(u.cache_misses for u in self.units())

    def cache_hit_rate(self) -> float:
        """Fraction of per-question lookups served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def record_perf_caches(
            self, counters: Dict[str, Dict[str, int]]) -> None:
        """Attach a perception-substrate cache snapshot (see
        :func:`repro.core.perfstats.snapshot`) to the run telemetry."""
        with self._lock:
            self._perf_caches = {
                name: dict(entry) for name, entry in counters.items()
            }

    def absorb_perf_caches(
            self, moved: Dict[str, Dict[str, int]]) -> None:
        """Fold a worker process's counter delta into the run telemetry.

        The process backend evaluates units in sibling processes whose
        module-global cache counters the parent's :func:`perfstats.snapshot`
        cannot see; each worker reports its movement and the run view
        (:attr:`perf_caches`) sums local + absorbed, keeping
        ``--cache-stats`` and the manifest truthful across backends.
        """
        with self._lock:
            perfstats.merge_counters(self._absorbed_perf, moved)

    @property
    def perf_caches(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction counters of the perception-substrate caches,
        merged across this process and any absorbed worker processes."""
        with self._lock:
            merged = {
                name: dict(entry)
                for name, entry in self._perf_caches.items()
            }
            return perfstats.merge_counters(merged, self._absorbed_perf)

    def record_coordinator(self, counters: Dict[str, int]) -> None:
        """Attach the sweep coordinator's fleet counters (nodes lost,
        units stolen, lease expirations, commit accounting, shared-store
        traffic) to the run telemetry; they surface in :meth:`as_dict`
        (hence the manifest) and ``--cache-stats``."""
        with self._lock:
            self._coordinator = dict(counters)

    @property
    def coordinator(self) -> Dict[str, int]:
        """Fleet counters of a coordinated run (empty for plain runs)."""
        with self._lock:
            return dict(self._coordinator)

    def total_wall_time(self) -> float:
        return sum(u.wall_time_s for u in self.units())

    def as_dict(self) -> Dict[str, object]:
        coordinator = self.coordinator
        extra: Dict[str, object] = (
            {"coordinator": coordinator} if coordinator else {})
        return dict({
            "units": len(self.units()),
            "completed": self.completed,
            "failed": self.failed,
            "resumed": self.resumed,
            "fast_failed": self.fast_failed,
            "timed_out": self.timed_out,
            "quarantined": self.quarantined,
            "corrupt_checkpoints": self.corrupt_checkpoints,
            "stale_checkpoints": self.stale_checkpoints,
            "retries": self.total_retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate(), 6),
            "wall_time_s": round(self.total_wall_time(), 6),
            "perf_caches": self.perf_caches,
        }, **extra)


@dataclass
class RunOutcome:
    """What a run produced: results in input-unit order, plus telemetry.

    ``failures`` maps every unresolved unit — permanently failed,
    fast-failed by an open circuit breaker, or timed out past its
    deadline — to its error string.
    """

    results: Dict[str, EvalResult]          # unit_id -> result
    stats: RunStats
    failures: Dict[str, str] = field(default_factory=dict)

    def result_for(self, unit: WorkUnit) -> EvalResult:
        return self.results[unit.unit_id]

    def raise_on_failure(self) -> "RunOutcome":
        """Raise if any unit failed (for callers needing complete tables)."""
        if self.failures:
            detail = "; ".join(
                f"{uid}: {err}" for uid, err in sorted(self.failures.items()))
            raise RuntimeError(f"{len(self.failures)} unit(s) failed: {detail}")
        return self


class ParallelRunner:
    """Shard work units over a thread pool with cache/retry/checkpoint.

    ``workers=1`` preserves a strictly serial path (same code, no pool);
    any other value fans units out over a ``ThreadPoolExecutor``.
    ``sleep`` and ``clock`` are injectable so backoff and deadlines are
    testable without waiting.

    Resilience hooks (all optional, see ``docs/RESILIENCE.md``):
    ``breaker`` fast-fails units of a model whose circuit has opened;
    ``deadline_s`` bounds each unit's wall time (checked cooperatively
    at every fault-boundary crossing, and by a watchdog thread that
    marks wedged units ``timed_out``); ``quarantine`` salvages a unit
    around permanently-faulting questions; ``checkpoint_writer``
    replaces the atomic checkpoint write (the chaos harness injects
    crashes and torn writes through it).
    """

    def __init__(
        self,
        harness: "Optional[EvaluationHarness]" = None,
        workers: int = 1,
        cache: Optional[RunCache] = None,
        retry: Optional[RetryPolicy] = None,
        fault_boundary: Optional[FaultBoundary] = None,
        run_dir: "Optional[Path | str]" = None,
        resume: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        breaker: Optional[CircuitBreaker] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        deadline_s: Optional[float] = None,
        watchdog_interval: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        checkpoint_writer: Optional[Callable[[Path, str], None]] = None,
        backend: "Optional[str | executor_mod.ExecutionBackend]" = None,
        spill_dir: "Optional[Path | str]" = None,
        admission: Optional[AdmissionPolicy] = None,
        on_unit_complete: Optional[
            Callable[[WorkUnit, EvalResult], None]] = None,
        on_unit_payload: Optional[
            Callable[[WorkUnit, str], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if harness is None:
            from repro.core.harness import EvaluationHarness
            harness = EvaluationHarness()
        self.harness = harness
        self.workers = workers
        self.backend = executor_mod.resolve_backend(backend, workers)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.cache = cache if cache is not None else RunCache()
        self.retry = retry or RetryPolicy()
        self.fault_boundary = fault_boundary
        self._sleep = sleep
        if admission is None:
            admission = AdmissionPolicy(
                breaker=breaker, quarantine=quarantine,
                deadline_s=deadline_s)
        #: the artifact/accounting core this driver schedules over;
        #: run_dir/resume/breaker/... below are views into it, so the
        #: engine stays the single source of truth.
        self.engine = EvalEngine(
            run_dir=run_dir, resume=resume,
            checkpoint_writer=checkpoint_writer,
            admission=admission,
            on_unit_complete=on_unit_complete,
            on_unit_payload=on_unit_payload)
        self.watchdog_interval = watchdog_interval
        self._clock = clock
        #: RunStats of the most recent :meth:`run` (for CLI summaries).
        self.last_stats: Optional[RunStats] = None
        self._watchdog: Optional[Watchdog] = None
        self._depth_lock = threading.Lock()
        self._not_started = 0

    # -- engine views (one source of truth: the EvalEngine) ------------------

    @property
    def admission(self) -> AdmissionPolicy:
        return self.engine.admission

    @property
    def run_dir(self) -> Optional[Path]:
        return self.engine.run_dir

    @run_dir.setter
    def run_dir(self, value: "Optional[Path | str]") -> None:
        self.engine.run_dir = Path(value) if value is not None else None

    @property
    def resume(self) -> bool:
        return self.engine.resume

    @resume.setter
    def resume(self, value: bool) -> None:
        self.engine.resume = value

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self.engine.admission.breaker

    @breaker.setter
    def breaker(self, value: Optional[CircuitBreaker]) -> None:
        self.engine.admission.breaker = value

    @property
    def quarantine(self) -> Optional[QuarantinePolicy]:
        return self.engine.admission.quarantine

    @quarantine.setter
    def quarantine(self, value: Optional[QuarantinePolicy]) -> None:
        self.engine.admission.quarantine = value

    @property
    def deadline_s(self) -> Optional[float]:
        return self.engine.admission.deadline_s

    @deadline_s.setter
    def deadline_s(self, value: Optional[float]) -> None:
        self.engine.admission.deadline_s = value

    @property
    def _checkpoint_writer(self) -> Callable[[Path, str], None]:
        return self.engine.checkpoint_writer

    @_checkpoint_writer.setter
    def _checkpoint_writer(self,
                           value: Callable[[Path, str], None]) -> None:
        self.engine.checkpoint_writer = value

    # -- public API ----------------------------------------------------------

    def run(self, units: Sequence[WorkUnit]) -> RunOutcome:
        """Execute all units; never raises for model faults (they are
        recorded in ``outcome.failures``)."""
        units = list(units)
        stats = RunStats()
        self.last_stats = stats
        collected, pending = self.engine.prepare(units, stats)
        self._not_started = len(pending)
        if self.spill_dir is not None:
            perfstats.enable_spill(self.spill_dir)
        is_process = isinstance(self.backend, executor_mod.ProcessBackend)
        if self.deadline_s is not None and not is_process:
            # process-backend deadlines are enforced in the workers
            # (cooperatively) and by the backend's hard kill, not here
            self._watchdog = Watchdog(
                clock=self._clock, interval=self.watchdog_interval,
                on_timeout=lambda uid: self._write_manifest(units, stats))
            self._watchdog.start()
        try:
            if is_process:
                if pending:
                    self._run_process(pending, units, stats, collected)
            elif isinstance(self.backend, executor_mod.AsyncBackend):
                if pending:
                    scheduler = self.backend.make_scheduler()
                    results = self.backend.map_units(
                        pending,
                        lambda u: self._execute_async(
                            u, units, stats, scheduler))
                    for unit, result in zip(pending, results):
                        if result is not None:
                            collected[unit.unit_id] = result
            elif (isinstance(self.backend, executor_mod.ThreadBackend)
                    and len(pending) > 1):
                results = self.backend.map_units(
                    pending, lambda u: self._execute(u, units, stats))
                for unit, result in zip(pending, results):
                    if result is not None:
                        collected[unit.unit_id] = result
            else:
                for unit in pending:
                    result = self._execute(
                        unit, units, stats,
                        defer_manifest=unit is pending[-1])
                    if result is not None:
                        collected[unit.unit_id] = result
        finally:
            if self._watchdog is not None:
                self._watchdog.stop()
                self._watchdog = None
            if self.spill_dir is not None:
                # scoped to the run: later spill-free runs must not
                # keep consulting (or repopulating) the disk tier
                perfstats.disable_spill()

        return self.engine.finalize(units, stats, collected)

    def evaluate_unit(self, unit: WorkUnit, unit_stats: UnitStats,
                      deadline: Optional[Deadline] = None) -> EvalResult:
        """Evaluate one unit through the retry/cache/quarantine path.

        No pool, breaker, checkpoint or manifest machinery — this is the
        single evaluation code path that backends (including worker
        processes, see :func:`repro.core.executor.process_worker`) share,
        which is what keeps artifacts byte-identical across backends.
        """
        return self._evaluate_with_retry(unit, unit_stats, deadline)

    # -- unit execution ------------------------------------------------------

    def _run_process(self, pending: List[WorkUnit],
                     all_units: Sequence[WorkUnit], stats: RunStats,
                     collected: Dict[str, EvalResult]) -> None:
        """Fan pending units out over worker processes.

        The parent keeps everything that must stay single-writer:
        breaker decisions (at submission time), checkpoint writes (via
        the injectable writer, so the chaos harness still intercepts
        them), manifest updates and perf-counter absorption.  Workers
        return canonical checkpoint payloads; the parent writes them
        verbatim.
        """
        options = executor_mod.WorkerOptions(
            harness=self.harness,
            retry=self.retry,
            fault_boundary=self.fault_boundary,
            quarantine=self.quarantine,
            deadline_s=self.deadline_s,
            spill_root=(str(self.spill_dir)
                        if self.spill_dir is not None else None),
        )
        by_id: Dict[str, WorkUnit] = {}
        items: List = []
        for unit in pending:
            by_id[unit.unit_id] = unit
            items.append((unit.unit_id, executor_mod.spec_for(unit)))
        started: set = set()

        def should_submit(unit_id: str) -> bool:
            unit = by_id[unit_id]
            unit_stats = stats.unit(unit_id)
            if unit_id not in started:  # respawns must not re-count
                started.add(unit_id)
                with self._depth_lock:
                    self._not_started -= 1
                    unit_stats.queue_depth = self._not_started
            refusal = self.admission.refuse_unit(unit.provider.name)
            if refusal is not None:
                self.engine.fast_fail(unit_stats, refusal)
                self._write_manifest(all_units, stats)
                return False
            return True

        def on_result(unit_id: str,
                      outcome: executor_mod.WorkerResult) -> None:
            unit = by_id[unit_id]
            unit_stats = stats.unit(unit_id)
            unit_stats.attempts = outcome.attempts
            unit_stats.retries = outcome.retries
            unit_stats.cache_hits = outcome.cache_hits
            unit_stats.cache_misses = outcome.cache_misses
            unit_stats.quarantined = outcome.quarantined
            unit_stats.worker_respawns = outcome.worker_respawns
            unit_stats.wall_time_s = outcome.wall_time_s
            stats.absorb_perf_caches(outcome.perf_delta)
            model_key = unit.provider.name
            if outcome.status == "completed" and outcome.payload is not None:
                unit_stats.status = "completed"
                # the worker already serialized the canonical payload;
                # write and stream those bytes verbatim
                self.engine.checkpoint_bytes(unit, outcome.payload)
                result = results_io.loads(outcome.payload)
                EvalEngine.attach_telemetry(
                    result, unit_stats, outcome.perf_delta)
                collected[unit_id] = result
                self.admission.record_success(model_key)
                self.engine.unit_completed(unit, result,
                                           payload=outcome.payload)
            else:
                unit_stats.status = outcome.status
                unit_stats.error = outcome.error
                self.admission.record_failure(
                    model_key, unit_stats.error or "worker failure")
            self._write_manifest(all_units, stats)

        assert isinstance(self.backend, executor_mod.ProcessBackend)
        self.backend.run_units(items, options, should_submit, on_result)

    def _begin_unit(self, unit: WorkUnit, all_units: Sequence[WorkUnit],
                    stats: RunStats
                    ) -> "Optional[tuple[UnitStats, str, Optional[Deadline]]]":
        """Shared unit prologue: depth bookkeeping, breaker admission,
        deadline/watchdog registration.  Returns ``None`` when the
        breaker fast-fails the unit (already recorded)."""
        unit_stats = stats.unit(unit.unit_id)
        with self._depth_lock:
            self._not_started -= 1
            unit_stats.queue_depth = self._not_started
        model_key = unit.provider.name
        # fast-fail: no boundary crossing, no retry budget spent
        refusal = self.admission.refuse_unit(model_key)
        if refusal is not None:
            self.engine.fast_fail(unit_stats, refusal)
            self._write_manifest(all_units, stats)
            return None
        deadline = self.admission.deadline(clock=self._clock)
        if deadline is not None and self._watchdog is not None:
            self._watchdog.register(unit.unit_id, deadline, unit_stats)
        return unit_stats, model_key, deadline

    def _finish_unit(self, unit: WorkUnit, all_units: Sequence[WorkUnit],
                     stats: RunStats, unit_stats: UnitStats, model_key: str,
                     result: Optional[EvalResult],
                     error: Optional[BaseException], timed_out: bool,
                     start: float,
                     perf_before: Dict[str, Dict[str, int]],
                     defer_manifest: bool = False) -> Optional[EvalResult]:
        """Shared unit epilogue: telemetry, checkpoint, breaker record,
        manifest write — identical across sync and async execution,
        which is what keeps their artifacts byte-identical.

        ``defer_manifest`` skips the progress-manifest write; the serial
        loop sets it for its final unit only, because
        :meth:`EvalEngine.finalize` rewrites the manifest (with the same
        stats plus the perf snapshot) immediately after the loop ends —
        the per-unit write exists for mid-run crash visibility, and after
        the last unit there is no mid-run left."""
        unit_stats.wall_time_s = time.perf_counter() - start
        perfstats.record_stage("eval",
                               int(unit_stats.wall_time_s * 1e9))
        # Substrate-cache movement while this unit ran.  The perfstats
        # counters are process-global, so under parallel workers the
        # delta attributes concurrent units' lookups too — it is a
        # telemetry signal, not an accounting invariant (run-level
        # totals in the manifest are exact).
        perf_moved = perfstats.delta(perf_before, perfstats.snapshot())
        if result is not None:
            unit_stats.status = "completed"
            # serialize-once: the same bytes are the checkpoint
            # artifact *and* the stream payload; no tier re-encodes
            # the result (skipped entirely when nothing consumes them)
            payload = None
            if (self.engine.run_dir is not None
                    or self.engine.on_unit_payload is not None):
                payload = self.engine.canonical_payload(result)
                self.engine.checkpoint_bytes(unit, payload)
            EvalEngine.attach_telemetry(result, unit_stats, perf_moved)
            self.admission.record_success(model_key)
            self.engine.unit_completed(unit, result, payload=payload)
        else:
            unit_stats.status = "timed_out" if timed_out else "failed"
            unit_stats.error = f"{type(error).__name__}: {error}"
            self.admission.record_failure(model_key, unit_stats.error)
        stats.record_perf_caches(perfstats.snapshot())
        if not defer_manifest:
            self._write_manifest(all_units, stats)
        return result

    def _execute(self, unit: WorkUnit, all_units: Sequence[WorkUnit],
                 stats: RunStats, *,
                 defer_manifest: bool = False) -> Optional[EvalResult]:
        begun = self._begin_unit(unit, all_units, stats)
        if begun is None:
            return None
        unit_stats, model_key, deadline = begun
        start = time.perf_counter()
        perf_before = perfstats.snapshot()
        result: Optional[EvalResult] = None
        error: Optional[BaseException] = None
        timed_out = False
        try:
            result = self._evaluate_with_retry(unit, unit_stats, deadline)
        except DeadlineExceeded as exc:
            error = exc
            timed_out = True
        except ModelCallError as exc:
            error = exc
        finally:
            if self._watchdog is not None:
                self._watchdog.unregister(unit.unit_id)
        return self._finish_unit(unit, all_units, stats, unit_stats,
                                 model_key, result, error, timed_out,
                                 start, perf_before,
                                 defer_manifest=defer_manifest)

    async def _execute_async(self, unit: WorkUnit,
                             all_units: Sequence[WorkUnit], stats: RunStats,
                             scheduler: Optional[AsyncCallScheduler] = None
                             ) -> Optional[EvalResult]:
        """Async twin of :meth:`_execute` for the asyncio backend: same
        prologue/epilogue helpers, same status classification — only
        the evaluation await differs, so breaker, deadline, quarantine
        and resume semantics are preserved verbatim."""
        begun = self._begin_unit(unit, all_units, stats)
        if begun is None:
            return None
        unit_stats, model_key, deadline = begun
        start = time.perf_counter()
        perf_before = perfstats.snapshot()
        result: Optional[EvalResult] = None
        error: Optional[BaseException] = None
        timed_out = False
        try:
            result = await self._evaluate_with_retry_async(
                unit, unit_stats, deadline, scheduler)
        except DeadlineExceeded as exc:
            error = exc
            timed_out = True
        except ModelCallError as exc:
            error = exc
        finally:
            if self._watchdog is not None:
                self._watchdog.unregister(unit.unit_id)
        return self._finish_unit(unit, all_units, stats, unit_stats,
                                 model_key, result, error, timed_out,
                                 start, perf_before)

    def _evaluate_with_retry(self, unit: WorkUnit, unit_stats: UnitStats,
                             deadline: Optional[Deadline] = None
                             ) -> EvalResult:
        last: Optional[TransientModelError] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            unit_stats.attempts = attempt
            try:
                return self._attempt_unit(unit, unit_stats, deadline)
            except TransientModelError as exc:
                last = exc
                if attempt == self.retry.max_attempts:
                    break
                if deadline is not None:
                    # an overdue unit must not burn more backoff time
                    deadline.check(unit.unit_id)
                unit_stats.retries += 1
                self._sleep(self.retry.delay(attempt))
        raise TransientModelError(
            f"{unit.unit_id}: transient fault persisted through "
            f"{self.retry.max_attempts} attempts: {last}")

    async def _evaluate_with_retry_async(
            self, unit: WorkUnit, unit_stats: UnitStats,
            deadline: Optional[Deadline] = None,
            scheduler: Optional[AsyncCallScheduler] = None) -> EvalResult:
        """Async twin of :meth:`_evaluate_with_retry`: same attempt
        budget and fault classification, but backoff suspends the
        coroutine instead of blocking the loop."""
        last: Optional[TransientModelError] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            unit_stats.attempts = attempt
            try:
                return await self._attempt_unit_async(
                    unit, unit_stats, deadline, scheduler)
            except TransientModelError as exc:
                last = exc
                if attempt == self.retry.max_attempts:
                    break
                if deadline is not None:
                    # an overdue unit must not burn more backoff time
                    deadline.check(unit.unit_id)
                unit_stats.retries += 1
                await self._backoff_async(self.retry.delay(attempt))
        raise TransientModelError(
            f"{unit.unit_id}: transient fault persisted through "
            f"{self.retry.max_attempts} attempts: {last}")

    async def _backoff_async(self, delay: float) -> None:
        """Retry backoff on the event loop.  A real (default) sleep
        becomes ``asyncio.sleep`` so sibling units keep running; an
        injected test sleep (no-op, fault-counting, …) is honoured
        as-is so existing fixtures drive both paths."""
        if self._sleep is time.sleep:
            await asyncio.sleep(delay)
        else:
            self._sleep(delay)

    # -- the per-attempt pipeline (shared sync/async) -------------------------

    def _attempt_context(self, unit: WorkUnit):
        """Everything one attempt derives from the unit up front:
        (use_raster, provider, fingerprint, questions, cohorts)."""
        use_raster = (self.harness.use_raster if unit.use_raster is None
                      else unit.use_raster)
        provider = unit.provider
        fingerprint = provider.config_fingerprint()
        questions = list(unit.dataset)
        by_category: Dict[Category, List[Question]] = {}
        for question in questions:
            by_category.setdefault(question.category, []).append(question)
        cohorts = {
            category: cohort_digest(members)
            for category, members in by_category.items()
        }
        return use_raster, provider, fingerprint, questions, cohorts

    def _judge_or_quarantine(self, unit: WorkUnit, unit_stats: UnitStats,
                             question: Question,
                             answer: ModelAnswer) -> EvalRecord:
        """Judge one answer behind the fault boundary, salvaging the
        question as quarantined when policy admits it."""
        try:
            if self.fault_boundary is not None:
                self.fault_boundary(unit.unit_id, question.qid)
            return self.harness.judge_answer(question, answer)
        except PermanentError:
            if not self.admission.may_quarantine(unit_stats.quarantined):
                raise
            # salvage the unit: mark this question quarantined
            # (deterministically incorrect) and keep going
            unit_stats.quarantined += 1
            return quarantined_record(question)

    def _result_from_records(self, unit: WorkUnit,
                             records: List[EvalRecord]) -> EvalResult:
        """Assemble the unit's :class:`EvalResult` in question order."""
        result = EvalResult(
            model_name=unit.model.name,
            dataset_name=unit.dataset.name,
            setting=unit.setting,
            resolution_factor=unit.resolution_factor,
        )
        for record in records:
            result.add(record)
        return result

    def _attempt_unit(self, unit: WorkUnit, unit_stats: UnitStats,
                      deadline: Optional[Deadline] = None) -> EvalResult:
        """One evaluation attempt; cache-aware, fault-boundary-guarded.

        The outcome plan is always computed over the unit's *full*
        question list (quota-IRT realises correctness per category over
        its members), so partially-cached attempts stay byte-identical
        to uncached ones.
        """
        (use_raster, provider, fingerprint,
         questions, cohorts) = self._attempt_context(unit)
        answers = None
        records: List[EvalRecord] = []
        for question in questions:
            key = question_key(provider.name, question, unit.setting,
                               unit.resolution_factor, use_raster,
                               cohorts[question.category],
                               provider_fingerprint=fingerprint)
            cached = self.cache.get(key)
            if cached is not None:
                unit_stats.cache_hits += 1
                records.append(cached)
                continue
            unit_stats.cache_misses += 1
            if deadline is not None:
                # the deadline-aware boundary crossing: an overdue unit
                # resolves as timed_out at the next question, not after
                # grinding through the remainder of the list
                deadline.check(unit.unit_id, question.qid)
            if answers is None:
                # the whole-unit model call; provider-level transport
                # faults (a RemoteStubProvider 429, a rejected request)
                # raise here and flow through the same retry/failure
                # machinery as boundary faults
                answers = {
                    answer.qid: answer
                    for answer in provider.answer_batch(
                        questions, unit.setting, unit.resolution_factor,
                        use_raster=use_raster)
                }
            record = self._judge_or_quarantine(unit, unit_stats, question,
                                               answers[question.qid])
            self.cache.put(key, record)
            records.append(record)
        return self._result_from_records(unit, records)

    async def _attempt_unit_async(
            self, unit: WorkUnit, unit_stats: UnitStats,
            deadline: Optional[Deadline] = None,
            scheduler: Optional[AsyncCallScheduler] = None) -> EvalResult:
        """Async twin of :meth:`_attempt_unit`.

        Identical cache keys, cohort digests, deadline crossings and
        judging — the one divergence is the whole-unit model call,
        which is awaited (through the scheduler's rate pacing and
        hedging when one is configured) so sibling units overlap the
        endpoint round-trip.  The unit's question list still travels in
        a single provider call: quota-IRT outcome planning is
        cohort-dependent, so splitting it would break byte-identity.
        """
        (use_raster, provider, fingerprint,
         questions, cohorts) = self._attempt_context(unit)
        answers = None
        records: List[EvalRecord] = []
        for question in questions:
            key = question_key(provider.name, question, unit.setting,
                               unit.resolution_factor, use_raster,
                               cohorts[question.category],
                               provider_fingerprint=fingerprint)
            cached = self.cache.get(key)
            if cached is not None:
                unit_stats.cache_hits += 1
                records.append(cached)
                continue
            unit_stats.cache_misses += 1
            if deadline is not None:
                # the deadline-aware boundary crossing: an overdue unit
                # resolves as timed_out at the next question, not after
                # grinding through the remainder of the list
                deadline.check(unit.unit_id, question.qid)
            if answers is None:
                if scheduler is not None:
                    batch = await scheduler.call(
                        provider, questions, unit.setting,
                        unit.resolution_factor, use_raster=use_raster)
                else:
                    batch = await as_async_provider(
                        provider).answer_batch_async(
                            questions, unit.setting, unit.resolution_factor,
                            use_raster=use_raster)
                answers = {answer.qid: answer for answer in batch}
            record = self._judge_or_quarantine(unit, unit_stats, question,
                                               answers[question.qid])
            self.cache.put(key, record)
            records.append(record)
        return self._result_from_records(unit, records)

    # -- checkpointing (delegated to the engine) -----------------------------

    def checkpoint_path(self, unit: WorkUnit) -> Optional[Path]:
        return self.engine.checkpoint_path(unit)

    def _checkpoint(self, unit: WorkUnit, result: EvalResult) -> None:
        self.engine.checkpoint(unit, result)

    def _try_resume(self, unit: WorkUnit,
                    unit_stats: UnitStats) -> Optional[EvalResult]:
        return self.engine.resume_unit(unit, unit_stats)

    def _write_manifest(self, units: Sequence[WorkUnit],
                        stats: RunStats) -> None:
        self.engine.write_manifest(units, stats)


def read_manifest(run_dir: "Path | str") -> Dict[str, object]:
    """Load a run's ``manifest.json`` (unknown keys are preserved)."""
    path = Path(run_dir) / MANIFEST_NAME
    return json.loads(path.read_text(encoding="utf-8"))
