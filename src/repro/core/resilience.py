"""Resilience primitives for long evaluation sweeps.

A production benchmark service treats partial failure as the steady
state: a provider melting down should not burn the retry budget of
every remaining cell, one hung call should not stall a worker pool
forever, and one poison question should not discard an otherwise
healthy (model, dataset, setting) cell.  This module supplies the
pieces the :class:`~repro.core.runner.ParallelRunner` wires together:

* :class:`CircuitBreaker` — per-model breaker that opens after K
  *consecutive* unit failures (permanent faults, exhausted transient
  retries, or deadline timeouts) and fast-fails that model's remaining
  units; with ``cooldown_s`` set it half-opens after the cooldown and
  admits one trial unit before fully re-closing;
* :class:`Deadline` / :class:`DeadlineExceeded` — a per-unit time
  budget checked at every fault-boundary crossing, so an overdue unit
  resolves as ``timed_out`` instead of looping through retries;
* :class:`Watchdog` — a monitor (optionally a daemon thread) that
  marks overdue units ``timed_out`` in the run telemetry even when the
  worker thread is wedged inside a call that never reaches a boundary
  crossing, so observers see the stall instead of a healthy manifest;
* :class:`QuarantinePolicy` / :func:`quarantined_record` — question
  -level quarantine: a permanently-faulting question is recorded as a
  deterministic incorrect ``judge_method="quarantined"`` record and
  the rest of the unit is salvaged;
* :class:`AdmissionPolicy` — the composition seam: breaker, deadline
  and quarantine folded into one admission/failure policy consumed by
  the :class:`~repro.core.engine.EvalEngine` per run *and* by the
  evaluation service (:mod:`repro.service`) per queue — job-backlog
  rejection, per-tenant deadlines and cooperative cancellation reuse
  the same primitives batch runs do.

Everything here is thread-safe and clock-injectable; nothing imports
the runner, so boundaries and tests can compose these pieces freely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.faults import ModelCallError
from repro.core.metrics import EvalRecord
from repro.core.question import Question

#: ``EvalRecord.judge_method`` value marking a quarantined question.
QUARANTINED_METHOD = "quarantined"


class CircuitOpenError(ModelCallError):
    """Raised (or recorded) when a model's circuit breaker is open."""


class DeadlineExceeded(ModelCallError):
    """A unit exceeded its per-unit deadline.

    Deliberately *not* a :class:`~repro.core.faults.TransientModelError`
    subclass: retrying an already-overdue unit only burns more wall
    time, so the runner resolves it immediately as ``timed_out``.
    """


class CircuitBreaker:
    """Per-key (per-model) circuit breaker with a consecutive-failure trip.

    The breaker stays **closed** while a model's units succeed; each
    unit-level failure (permanent fault, exhausted transient retries,
    deadline timeout) increments a consecutive counter, and reaching
    ``failure_threshold`` **opens** the circuit for that key.  An open
    circuit fast-fails every remaining unit of the model without
    crossing the fault boundary or spending retry backoff — the
    failure mode of a revoked credential or a melted-down provider.

    With ``cooldown_s`` set, an open circuit becomes **half-open** once
    the cooldown has elapsed since it (last) opened: :meth:`allow`
    admits exactly one *trial* unit, whose outcome decides the
    circuit's fate — success closes it fully, failure re-opens it and
    re-arms the cooldown.  This keeps a transiently melted-down
    provider from being locked out for the rest of a long sweep or a
    multi-node coordinated run.  Without ``cooldown_s`` (the default)
    the historical semantics hold: the circuit stays open for the rest
    of the run unless :meth:`reset` is called (a relaunch starts
    closed).
    """

    def __init__(self, failure_threshold: int = 3,
                 cooldown_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s is not None and cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive: Dict[str, int] = {}
        self._open: Dict[str, str] = {}        # key -> opening error
        self._opened_at: Dict[str, float] = {}  # key -> (re)open time
        self._trial: set = set()               # keys with a probe in flight
        self._fast_fails: Dict[str, int] = {}

    def _cooled_down(self, key: str) -> bool:
        """(Lock held.)  Has ``key``'s open circuit finished cooling?"""
        if self.cooldown_s is None:
            return False
        opened = self._opened_at.get(key)
        return opened is not None and (
            self._clock() - opened >= self.cooldown_s)

    def allow(self, key: str) -> bool:
        """True while the circuit for ``key`` is closed — or when a
        cooled-down open circuit admits this call as its half-open
        trial (one probe at a time)."""
        with self._lock:
            if key not in self._open:
                return True
            if key in self._trial or not self._cooled_down(key):
                return False
            self._trial.add(key)
            return True

    def check(self, key: str) -> None:
        """Raise :class:`CircuitOpenError` if the circuit is open (and
        not admitting a half-open trial)."""
        if not self.allow(key):
            with self._lock:
                last = self._open.get(key, "failure threshold reached")
            raise CircuitOpenError(
                f"circuit open for {key!r} after "
                f"{self.failure_threshold} consecutive failures "
                f"(last: {last})")

    def record_success(self, key: str) -> None:
        """A unit of ``key`` completed: reset its consecutive counter
        (and fully close a half-open circuit whose trial succeeded)."""
        with self._lock:
            self._consecutive[key] = 0
            self._open.pop(key, None)
            self._opened_at.pop(key, None)
            self._trial.discard(key)

    def record_failure(self, key: str, error: str = "") -> bool:
        """A unit of ``key`` failed; returns True if this trip opened
        the circuit.  A failed half-open trial re-opens the circuit and
        re-arms the cooldown."""
        with self._lock:
            if key in self._open:
                # a failed trial (or straggler): stay open, fresh cooldown
                self._opened_at[key] = self._clock()
                self._trial.discard(key)
                if error:
                    self._open[key] = error
                return False
            count = self._consecutive.get(key, 0) + 1
            self._consecutive[key] = count
            if count >= self.failure_threshold:
                self._open[key] = error or "failure threshold reached"
                self._opened_at[key] = self._clock()
                return True
            return False

    def record_fast_fail(self, key: str) -> None:
        """Count a unit skipped because the circuit was already open."""
        with self._lock:
            self._fast_fails[key] = self._fast_fails.get(key, 0) + 1

    def state(self, key: str) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` for ``key``.

        Half-open means the circuit is open but its cooldown has
        elapsed (or a trial probe is already in flight), so the next
        :meth:`allow` admits — or has admitted — a trial unit.
        """
        with self._lock:
            if key not in self._open:
                return "closed"
            if key in self._trial or self._cooled_down(key):
                return "half_open"
            return "open"

    def open_keys(self) -> List[str]:
        """Sorted keys whose circuits are currently open."""
        with self._lock:
            return sorted(self._open)

    def fast_fail_count(self, key: Optional[str] = None) -> int:
        """Fast-failed unit count for ``key`` (or total across keys)."""
        with self._lock:
            if key is not None:
                return self._fast_fails.get(key, 0)
            return sum(self._fast_fails.values())

    def reset(self, key: Optional[str] = None) -> None:
        """Close the circuit for ``key`` (or all keys)."""
        with self._lock:
            if key is None:
                self._consecutive.clear()
                self._open.clear()
                self._opened_at.clear()
                self._trial.clear()
            else:
                self._consecutive.pop(key, None)
                self._open.pop(key, None)
                self._opened_at.pop(key, None)
                self._trial.discard(key)

    def as_dict(self) -> Dict[str, object]:
        """Manifest-ready snapshot: open circuits and fast-fail counts.

        ``cooldown_s``/``half_open`` appear only when half-open probing
        is configured, keeping snapshots byte-stable for the default
        configuration.
        """
        with self._lock:
            data: Dict[str, object] = {
                "failure_threshold": self.failure_threshold,
                "open": sorted(self._open),
                "fast_fails": dict(sorted(self._fast_fails.items())),
            }
            if self.cooldown_s is not None:
                data["cooldown_s"] = self.cooldown_s
                data["half_open"] = sorted(self._trial)
            return data


class Deadline:
    """A monotonic per-unit time budget.

    Created when a unit starts; :meth:`check` is the deadline-aware
    fault-boundary hook the runner calls once per evaluated question,
    raising :class:`DeadlineExceeded` once the budget is spent.  The
    clock is injectable so tests advance time deterministically.
    """

    def __init__(self, seconds: float,
                 clock: Callable[[], float] = time.monotonic):
        if seconds < 0:
            raise ValueError("deadline must be >= 0 seconds")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._start

    @property
    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.elapsed > self.seconds

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.seconds - self.elapsed)

    def check(self, unit_id: str = "", qid: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(
                f"unit {unit_id or '<unknown>'} exceeded its "
                f"{self.seconds}s deadline"
                + (f" at question {qid}" if qid else ""))


class Watchdog:
    """Marks overdue units ``timed_out`` instead of letting them stall
    silently.

    The cooperative :class:`Deadline` check only fires at boundary
    crossings; a worker wedged *inside* a model call never reaches one.
    The watchdog holds the registry of in-flight ``(unit_id, deadline,
    unit_stats)`` entries and — either from its daemon thread
    (:meth:`start`) or driven synchronously via :meth:`sweep` — flips
    overdue units to ``status="timed_out"`` in the run telemetry and
    fires ``on_timeout`` so the manifest on disk reflects the stall.
    The wedged thread itself cannot be killed (Python threads are not
    cancellable); if it eventually resolves, that resolution wins and
    overwrites the provisional status.

    ``unit_stats`` is duck-typed (any object with ``status`` and
    ``error`` attributes) so this module stays independent of the
    runner.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 interval: float = 0.05,
                 on_timeout: Optional[Callable[[str], None]] = None):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self._clock = clock
        self.interval = interval
        self.on_timeout = on_timeout
        self._lock = threading.Lock()
        self._active: Dict[str, Tuple[Deadline, object]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.timed_out: List[str] = []

    def register(self, unit_id: str, deadline: Deadline,
                 unit_stats: object) -> None:
        """Start watching a unit until :meth:`unregister` or timeout."""
        with self._lock:
            self._active[unit_id] = (deadline, unit_stats)

    def unregister(self, unit_id: str) -> None:
        """The unit resolved on its own; stop watching it."""
        with self._lock:
            self._active.pop(unit_id, None)

    def sweep(self) -> List[str]:
        """One monitoring pass; returns unit ids newly marked overdue."""
        overdue: List[Tuple[str, object]] = []
        with self._lock:
            for unit_id, (deadline, unit_stats) in list(self._active.items()):
                if deadline.expired:
                    overdue.append((unit_id, unit_stats))
                    del self._active[unit_id]
        for unit_id, unit_stats in overdue:
            unit_stats.status = "timed_out"
            unit_stats.error = (
                f"DeadlineExceeded: watchdog marked {unit_id} overdue")
            with self._lock:
                self.timed_out.append(unit_id)
            if self.on_timeout is not None:
                self.on_timeout(unit_id)
        return [unit_id for unit_id, _ in overdue]

    def start(self) -> None:
        """Run :meth:`sweep` every ``interval`` seconds on a daemon
        thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.interval):
                self.sweep()

        self._thread = threading.Thread(
            target=_loop, name="runner-watchdog", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the daemon thread (final sweep included) and join it."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.sweep()


@dataclass(frozen=True)
class QuarantinePolicy:
    """Question-level quarantine of permanently-faulting questions.

    With a policy installed, a :class:`~repro.core.faults.PermanentError`
    raised while evaluating *one question* no longer discards the whole
    unit: the question is recorded as a deterministic incorrect
    :class:`~repro.core.metrics.EvalRecord` with
    ``judge_method="quarantined"`` and the rest of the unit is
    salvaged.  ``max_per_unit`` bounds how many questions a single unit
    may quarantine before the unit is declared poisoned and fails
    outright (``None`` = unlimited) — the signal a circuit breaker
    then aggregates across units.
    """

    max_per_unit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_per_unit is not None and self.max_per_unit < 0:
            raise ValueError("max_per_unit must be >= 0 or None")

    def admit(self, already_quarantined: int) -> bool:
        """May one more question of this unit be quarantined?"""
        if self.max_per_unit is None:
            return True
        return already_quarantined < self.max_per_unit


class AdmissionPolicy:
    """Composable admission/failure policy shared by runs and services.

    The three resilience primitives — :class:`CircuitBreaker`,
    :class:`Deadline` and :class:`QuarantinePolicy` — historically
    arrived at the runner as three separate constructor arguments and
    were consulted ad hoc at three different call sites.  An
    ``AdmissionPolicy`` composes them behind one seam with two faces:

    * **per-run** — :meth:`refuse_unit` is the unit-admission gate the
      :class:`~repro.core.engine.EvalEngine` drivers consult before
      evaluating a unit (breaker fast-fail, cooperative cancellation),
      :meth:`deadline` mints the per-unit time budget, and
      :meth:`may_quarantine` arbitrates question-level salvage;
    * **per-service** — :meth:`refuse_request` is the queue-admission
      gate of the evaluation service (``max_pending`` bounds the job
      backlog; a refusal becomes an HTTP 503, never a hang), and
      ``cancelled`` lets a job's cancel event fast-fail its remaining
      units mid-run.

    ``deadline_s`` doubles as the per-tenant deadline when the service
    builds one policy per submitted job.  All members are optional; an
    empty policy admits everything.
    """

    def __init__(self, breaker: Optional[CircuitBreaker] = None,
                 quarantine: Optional[QuarantinePolicy] = None,
                 deadline_s: Optional[float] = None,
                 max_pending: Optional[int] = None,
                 cancelled: Optional[Callable[[], bool]] = None):
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 or None")
        self.breaker = breaker
        self.quarantine = quarantine
        self.deadline_s = deadline_s
        self.max_pending = max_pending
        self.cancelled = cancelled

    # -- per-run face --------------------------------------------------------

    def refuse_unit(self, model_key: str) -> Optional[str]:
        """The unit-admission gate: ``None`` admits the unit; a string
        refuses it, and is recorded verbatim as the unit's
        ``fast_failed`` error.

        Cancellation outranks the breaker — a cancelled run must not
        spend breaker bookkeeping on units it will never evaluate.  A
        breaker refusal counts a fast-fail against the model's key.
        """
        if self.cancelled is not None and self.cancelled():
            return ("JobCancelled: run cancelled before this unit "
                    "started")
        if self.breaker is not None and not self.breaker.allow(model_key):
            self.breaker.record_fast_fail(model_key)
            return (
                f"CircuitOpenError: circuit open for model {model_key!r} "
                f"after {self.breaker.failure_threshold} consecutive "
                f"failures")
        return None

    def deadline(self, clock: Callable[[], float] = time.monotonic
                 ) -> Optional[Deadline]:
        """A fresh per-unit :class:`Deadline` (None when unbounded)."""
        if self.deadline_s is None:
            return None
        return Deadline(self.deadline_s, clock=clock)

    def may_quarantine(self, already_quarantined: int) -> bool:
        """May one more question be salvaged as quarantined?  False
        without a quarantine policy — the permanent fault then fails
        the unit, exactly the historical semantics."""
        return (self.quarantine is not None
                and self.quarantine.admit(already_quarantined))

    def record_success(self, model_key: str) -> None:
        """Forward a unit success to the breaker (no-op without one)."""
        if self.breaker is not None:
            self.breaker.record_success(model_key)

    def record_failure(self, model_key: str, error: str = "") -> None:
        """Forward a unit failure to the breaker (no-op without one)."""
        if self.breaker is not None:
            self.breaker.record_failure(model_key, error)

    # -- per-service face ----------------------------------------------------

    def refuse_request(self, pending: int) -> Optional[str]:
        """The queue-admission gate: ``None`` admits a submission with
        ``pending`` jobs already backlogged; a string refuses it (the
        service surfaces it as a 503 body)."""
        if self.max_pending is not None and pending >= self.max_pending:
            return (f"queue full: {pending} job(s) pending >= "
                    f"max_pending {self.max_pending}")
        return None

    def as_dict(self) -> Dict[str, object]:
        """Manifest/metrics-ready snapshot of the configured gates."""
        data: Dict[str, object] = {}
        if self.breaker is not None:
            data["breaker"] = self.breaker.as_dict()
        if self.quarantine is not None:
            data["quarantine_max_per_unit"] = self.quarantine.max_per_unit
        if self.deadline_s is not None:
            data["deadline_s"] = self.deadline_s
        if self.max_pending is not None:
            data["max_pending"] = self.max_pending
        return data


def quarantined_record(question: Question) -> EvalRecord:
    """The deterministic record written for a quarantined question.

    Only stable question facts go in — never the fault message, which
    may differ between runs — so artifacts from a chaos run and a
    fault-free run diverge *only* in the ``correct``/``judge_method``
    fields of quarantined lines.
    """
    return EvalRecord(
        qid=question.qid,
        category=question.category,
        response="",
        correct=False,
        judge_method=QUARANTINED_METHOD,
        perception=0.0,
    )


def count_quarantined(records: Iterable[EvalRecord]) -> int:
    """How many records in ``records`` are quarantine markers."""
    return sum(1 for r in records if r.judge_method == QUARANTINED_METHOD)
