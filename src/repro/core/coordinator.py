"""Fault-tolerant multi-node sweep coordination.

:class:`SweepCoordinator` partitions a sweep into work units and
dispatches them to N :class:`Node` workers, surviving the failures a
fleet actually exhibits — stragglers, wedged nodes, killed process
groups, corrupted shared state — while converging to artifacts
byte-identical to a single-node run.  Three mechanisms carry that
guarantee:

* **Leases + work-stealing** — a node owns a unit only while its lease
  is live; every fault-boundary crossing doubles as a heartbeat that
  renews the lease (:class:`~repro.core.faults.HeartbeatBoundary`
  in-process, :class:`~repro.core.faults.FileHeartbeatBoundary` across
  processes).  A lease that expires — the node died, wedged, or blacked
  out — returns the unit to the queue, where a healthy node steals it.
* **Exactly-once commit accounting** — results are recorded in an
  append-only, sha256-chained commit log
  (:data:`~repro.core.results_io.COMMIT_LOG_NAME`).  A unit re-executed
  after a steal is *deduplicated at commit time*: an identical payload
  is a counted ``duplicate``, a differing payload raises
  :class:`CommitConflict` (corruption must be loud).  A torn log tail
  is repaired on open by truncating to the longest valid chain prefix.
* **Shared result tier with quarantine** — :class:`ResultStore`
  promotes the :class:`~repro.core.perfstats.SpillStore` to a
  cross-node artifact tier; a corrupt entry (bit flip, truncation,
  commit-log disagreement) is evicted and rebuilt, never crashes a
  node.

Degradation is graceful: the coordinator finishes a sweep with fewer
nodes than it started with, and surfaces ``nodes_lost`` /
``units_stolen`` / ``lease_expirations`` through
:meth:`~repro.core.runner.RunStats.record_coordinator` into the
manifest and ``--cache-stats``.  ``tests/test_chaos.py`` proves the
four chaos scenarios (node kill mid-unit, heartbeat blackout,
commit-log tear, store bit-flip) all converge to the golden Table II
digest.  See ``docs/COORDINATOR.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple,
)

from repro.core import executor as executor_mod
from repro.core import perfstats, results_io
from repro.core.engine import EvalEngine, payload_digest
from repro.core.faults import (
    CompositeBoundary,
    FaultBoundary,
    HeartbeatBoundary,
    NodeKilled,
)
from repro.core.metrics import EvalResult
from repro.core.resilience import (
    AdmissionPolicy,
    CircuitBreaker,
    QuarantinePolicy,
)
from repro.core.runner import (
    RetryPolicy,
    RunOutcome,
    RunStats,
    WorkUnit,
)

#: Re-exported for convenience; the constant lives in results_io so
#: ``verify_run`` can special-case the file without importing us.
COMMIT_LOG_NAME = results_io.COMMIT_LOG_NAME

#: ``prev`` hash of the first commit entry (an all-zero digest).
GENESIS = "0" * 64

#: Node execution modes accepted by :class:`SweepCoordinator`.
NODE_BACKENDS: Tuple[str, ...] = ("inline", "process")


class CommitConflict(RuntimeError):
    """Two *different* result payloads claimed the same unit.

    Deterministic evaluation means a re-executed unit must reproduce
    its committed payload byte-for-byte; a mismatch is corruption (or a
    config drift mid-run) and must abort the run rather than silently
    pick a winner.
    """


def _entry_digest(body: Dict[str, object]) -> str:
    """SHA-256 of one commit entry's canonical (sorted-keys) body dump."""
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")).hexdigest()


_ENTRY_FIELDS = frozenset(
    ("unit_id", "payload_sha256", "node", "prev", "seq"))


def _read_chain(
        path: Path) -> Tuple[List[str], List[Dict[str, object]], int, str]:
    """Walk a commit log, returning its longest valid chain prefix.

    Returns ``(valid_lines, valid_entries, total_lines, detail)`` where
    ``detail`` describes the first broken entry (empty when the whole
    chain verifies).  Each entry must parse, carry every field, hash to
    its recorded ``entry_sha256``, chain ``prev`` to the previous
    entry's hash, and hold the next sequence number.
    """
    lines = [line for line in
             path.read_text(encoding="utf-8").splitlines() if line.strip()]
    head = GENESIS
    valid_lines: List[str] = []
    entries: List[Dict[str, object]] = []
    detail = ""
    for index, line in enumerate(lines):
        try:
            entry = json.loads(line)
        except ValueError as exc:
            detail = f"unparseable entry: {exc}"
            break
        if not isinstance(entry, dict):
            detail = "entry is not an object"
            break
        recorded = entry.get("entry_sha256")
        body = {key: value for key, value in entry.items()
                if key != "entry_sha256"}
        if not _ENTRY_FIELDS.issubset(body):
            detail = f"missing fields {sorted(_ENTRY_FIELDS - set(body))}"
            break
        if body["prev"] != head:
            detail = "prev-hash does not chain to the previous entry"
            break
        if body["seq"] != index:
            detail = f"sequence gap: expected {index}, found {body['seq']}"
            break
        if _entry_digest(body) != recorded:
            detail = "entry checksum mismatch"
            break
        head = recorded
        valid_lines.append(line)
        entries.append(body)
    return valid_lines, entries, len(lines), detail


def audit_commit_log(path: "Path | str") -> Tuple[int, int, str]:
    """Verify a commit log's hash chain without modifying it.

    Returns ``(valid_entries, total_lines, detail)``; the chain is
    whole iff ``valid_entries == total_lines``.  Backs the
    ``commits.jsonl`` special case in
    :func:`repro.core.results_io.verify_run`.
    """
    _, entries, total, detail = _read_chain(Path(path))
    return len(entries), total, detail


class CommitLog:
    """Append-only, sha256-chained record of committed unit results.

    Each line is a JSON object ``{unit_id, payload_sha256, node, prev,
    seq, entry_sha256}`` where ``entry_sha256`` hashes the canonical
    body and ``prev`` chains to the previous entry's hash (the first
    entry chains to :data:`GENESIS`) — so any torn tail, reorder or
    edit breaks verification at a precise entry.  Appends go through a
    single ``O_APPEND`` write under a lock: concurrent committers
    serialise, and a crash can tear at most the final line, which
    :meth:`open` repairs by truncating to the valid prefix (counted in
    :attr:`repaired`).

    :meth:`commit` is the exactly-once gate: committing a unit that is
    already in the log returns ``"duplicate"`` without appending when
    the payload digest matches, and raises :class:`CommitConflict` when
    it does not.  With ``path=None`` the log is memory-only (run
    directories are optional).
    """

    def __init__(self, path: "Optional[Path | str]" = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._head = GENESIS
        self._seq = 0
        self._committed: Dict[str, str] = {}
        #: entries dropped by tail repair at :meth:`open` time
        self.repaired = 0

    @classmethod
    def open(cls, path: "Path | str", fresh: bool = False) -> "CommitLog":
        """Load (and, if needed, repair) the commit log at ``path``.

        ``fresh=True`` discards any existing log — the non-resume path,
        where stale commits must not shadow a from-scratch run.  A torn
        or corrupted tail is truncated to the longest valid chain
        prefix, atomically rewritten, and counted in :attr:`repaired`.
        """
        log = cls(path)
        assert log.path is not None
        if fresh:
            try:
                log.path.unlink()
            except FileNotFoundError:
                pass
            return log
        if not log.path.exists():
            return log
        valid_lines, entries, total, _detail = _read_chain(log.path)
        if len(valid_lines) < total:
            results_io.atomic_write_text(
                log.path, "".join(line + "\n" for line in valid_lines))
            log.repaired = total - len(valid_lines)
        for body in entries:
            log._committed[str(body["unit_id"])] = str(body["payload_sha256"])
            log._head = _entry_digest(body)
            log._seq += 1
        return log

    def committed(self, unit_id: str) -> Optional[str]:
        """The committed payload digest for ``unit_id`` (None if absent)."""
        with self._lock:
            return self._committed.get(unit_id)

    def commit(self, unit_id: str, payload_sha256: str, node: str) -> str:
        """Record a unit result; returns ``"committed"`` or ``"duplicate"``.

        A duplicate (same unit, same payload digest — the signature of
        a re-execution after a stolen lease) is deduplicated without a
        second append.  A same-unit commit with a *different* digest
        raises :class:`CommitConflict`.
        """
        with self._lock:
            existing = self._committed.get(unit_id)
            if existing is not None:
                if existing != payload_sha256:
                    raise CommitConflict(
                        f"unit {unit_id!r}: node {node!r} produced payload "
                        f"{payload_sha256[:12]}… but {existing[:12]}… is "
                        f"already committed — double-commit corruption")
                return "duplicate"
            body: Dict[str, object] = {
                "unit_id": unit_id,
                "payload_sha256": payload_sha256,
                "node": node,
                "prev": self._head,
                "seq": self._seq,
            }
            entry_sha = _entry_digest(body)
            if self.path is not None:
                line = json.dumps(dict(body, entry_sha256=entry_sha),
                                  sort_keys=True) + "\n"
                fd = os.open(str(self.path),
                             os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
                try:
                    os.write(fd, line.encode("utf-8"))
                finally:
                    os.close(fd)
            self._committed[unit_id] = payload_sha256
            self._head = entry_sha
            self._seq += 1
            return "committed"

    def append_commit(self, unit_id: str, payload: str,
                      node: str) -> Tuple[str, str]:
        """Commit a unit straight from its serialized payload bytes.

        The sha256 that enters the hash chain is computed over
        ``payload`` **here, once** — callers holding only the bytes
        need not pre-hash them, and the chain provably covers the exact
        bytes that were checkpointed (no parse/re-dump hop in between).
        Returns ``(status, digest)`` with the same
        ``"committed"`` / ``"duplicate"`` / :class:`CommitConflict`
        semantics as :meth:`commit`, so the digest can be carried on to
        the other artifact tiers.
        """
        digest = payload_digest(payload)
        return self.commit(unit_id, digest, node), digest

    def __len__(self) -> int:
        with self._lock:
            return len(self._committed)


@dataclass
class Lease:
    """One unit's current ownership claim."""

    node: str
    expires_at: float


class LeaseTable:
    """Unit-ownership leases with expiry and steal detection.

    Not self-locking: the coordinator guards every call with its fleet
    lock, which keeps acquire/renew/expire decisions atomic with the
    queue and terminal-set state they act on.
    """

    def __init__(self, lease_s: float) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        self.lease_s = lease_s
        self._leases: Dict[str, Lease] = {}
        self._last_owner: Dict[str, str] = {}

    def acquire(self, unit_id: str, node: str, now: float) -> bool:
        """Lease ``unit_id`` to ``node``; True when this is a *steal*
        (a different node held the unit before)."""
        previous = self._last_owner.get(unit_id)
        self._leases[unit_id] = Lease(node, now + self.lease_s)
        self._last_owner[unit_id] = node
        return previous is not None and previous != node

    def renew_node(self, node: str, now: float) -> None:
        """Extend every lease ``node`` holds (called on its heartbeat)."""
        for lease in self._leases.values():
            if lease.node == node:
                lease.expires_at = now + self.lease_s

    def release(self, unit_id: str, node: str) -> None:
        """Drop ``node``'s lease on ``unit_id`` (no-op if not the holder)."""
        lease = self._leases.get(unit_id)
        if lease is not None and lease.node == node:
            del self._leases[unit_id]

    def holder(self, unit_id: str) -> Optional[str]:
        """The node currently leasing ``unit_id``, if any."""
        lease = self._leases.get(unit_id)
        return lease.node if lease is not None else None

    def expired(self, now: float) -> List[Tuple[str, str]]:
        """(unit_id, node) pairs whose lease has lapsed at ``now``."""
        return [(unit_id, lease.node)
                for unit_id, lease in self._leases.items()
                if lease.expires_at <= now]


def _decode_payload(payload: object) -> str:
    """Spill-store decoder: a stored unit result must be a string."""
    if not isinstance(payload, str):
        raise TypeError("unit-result payload must be a string")
    return payload


class ResultStore:
    """Shared cross-node result tier with corruption quarantine.

    Promotes the :class:`~repro.core.perfstats.SpillStore` to the
    fleet's artifact tier: committed unit payloads are written through
    (content-addressed by unit id, provider fingerprint and dataset
    size) so a resumed or rebuilt run can recover results whose
    checkpoints were lost.  :meth:`get` verifies everything before
    trusting an entry — checkpoint-format checksum, unit metadata, and
    (when the commit log knows the unit) the committed payload digest;
    a failing entry is **quarantined**: evicted from disk, counted, and
    reported as a miss so the caller rebuilds instead of crashing.
    """

    def __init__(self, root: "Path | str") -> None:
        self._store = perfstats.SpillStore(
            root, "unit_results", lambda payload: payload, _decode_payload)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.digest_reuse = 0
        #: sha256 of what this process last wrote per unit — lets a
        #: duplicate commit (stolen lease, rebuilt checkpoint) skip the
        #: redundant disk write instead of re-spilling identical bytes
        self._written: Dict[str, str] = {}

    def key_for(self, unit: WorkUnit) -> Tuple[object, ...]:
        """Content-addressed store key of ``unit``'s result."""
        return ("unit_result", unit.unit_id,
                unit.provider.config_fingerprint(), len(unit.dataset))

    def path_for(self, unit: WorkUnit) -> Path:
        """On-disk location of ``unit``'s entry (for chaos injection)."""
        return self._store.path_for(self.key_for(unit))

    def get(self, unit: WorkUnit,
            expected_sha256: Optional[str] = None) -> Optional[str]:
        """The verified payload for ``unit``, or None (miss/quarantine)."""
        key = self.key_for(unit)
        payload = self._store.get(key)
        if payload is None:
            with self._lock:
                self.misses += 1
            return None
        try:
            result = results_io.loads(payload)
            if (result.model_name != unit.provider.name
                    or result.dataset_name != unit.dataset.name
                    or result.setting != unit.setting
                    or result.resolution_factor != unit.resolution_factor
                    or len(result.records) != len(unit.dataset)):
                raise ValueError("stored result does not match the unit")
            if (expected_sha256 is not None
                    and payload_digest(payload) != expected_sha256):
                raise ValueError(
                    "stored result disagrees with the commit log")
        except (KeyError, TypeError, ValueError):
            self._store.evict(key)
            with self._lock:
                self.quarantined += 1
                self.misses += 1
                # the disk entry is gone: a rebuild's put must rewrite
                # even if it reproduces the exact bytes we spilled
                self._written.pop(unit.unit_id, None)
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put(self, unit: WorkUnit, payload: str,
            digest: Optional[str] = None) -> None:
        """Write ``unit``'s committed payload through to the tier.

        ``digest`` is the payload's sha256 when the caller already
        holds it (the serialize-once commit path always does); the
        reuse is counted in ``store_digest_reuse`` and saves this tier
        its own hash.  Either way the digest keys a write-dedup check:
        re-committing bytes this process already spilled for the unit
        (a stolen lease finishing twice, a rebuilt checkpoint) skips
        the redundant disk write.
        """
        if digest is not None:
            with self._lock:
                self.digest_reuse += 1
        else:
            digest = payload_digest(payload)
        with self._lock:
            if self._written.get(unit.unit_id) == digest:
                return
        self._store.put(self.key_for(unit), payload)
        with self._lock:
            self._written[unit.unit_id] = digest

    def counters(self) -> Dict[str, int]:
        """Traffic counters for the coordinator's stats block."""
        with self._lock:
            return {"store_hits": self.hits,
                    "store_misses": self.misses,
                    "store_quarantined": self.quarantined,
                    "store_digest_reuse": self.digest_reuse}


class Node:
    """One member of the coordinator's fleet.

    ``mode="inline"`` evaluates units on the node's own thread through
    :func:`repro.core.executor.process_worker` — the same code path as
    a worker process, minus the fork; right for the API-bound regime
    and for deterministic tests.  ``mode="process"`` gives the node a
    single-worker process group; a broken group (SIGKILL, segfault)
    raises :class:`~repro.core.faults.NodeKilled`, which is a *node
    death*, not a unit failure — the coordinator requeues the unit and
    retires the node (no respawn; that is
    :class:`~repro.core.executor.ProcessBackend`'s job for worker-level
    deaths).
    """

    def __init__(self, node_id: str, mode: str,
                 clock: Callable[[], float] = time.monotonic,
                 heartbeat_path: "Optional[Path | str]" = None,
                 mp_context=None) -> None:
        if mode not in NODE_BACKENDS:
            raise ValueError(
                f"unknown node backend {mode!r}; expected one of "
                f"{NODE_BACKENDS}")
        self.node_id = node_id
        self.mode = mode
        self._clock = clock
        self.heartbeat_path = (Path(heartbeat_path)
                               if heartbeat_path is not None else None)
        self._mp_context = mp_context
        self.last_beat = clock()
        self._hb_mtime = -1.0
        self.lost = False
        self.busy = False
        self.current_unit: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    def begin(self, unit_id: str, now: float) -> None:
        """Mark the node busy on ``unit_id`` (resets its beat clock)."""
        self.busy = True
        self.current_unit = unit_id
        self.last_beat = now

    def finish(self, now: float) -> None:
        """Mark the node idle again."""
        self.busy = False
        self.current_unit = None
        self.last_beat = now

    def beat(self, now: float) -> None:
        """Record a liveness signal (inline-mode heartbeat)."""
        self.last_beat = now

    def refresh_beat(self, now: float) -> bool:
        """Fold heartbeat-file mtime advancement into ``last_beat``.

        Process-mode nodes beat by touching a file from the worker
        process; the monitor calls this to observe it.  Returns True
        when the node has beaten since the last check.
        """
        if self.heartbeat_path is None:
            return False
        try:
            mtime = self.heartbeat_path.stat().st_mtime
        except OSError:
            return False
        if mtime > self._hb_mtime:
            self._hb_mtime = mtime
            self.last_beat = now
            return True
        return False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=1,
                mp_context=(self._mp_context
                            or executor_mod.default_mp_context()))
        return self._pool

    def execute(self, spec: executor_mod.UnitSpec,
                options: executor_mod.WorkerOptions,
                poll_interval: float = 0.05) -> executor_mod.WorkerResult:
        """Run one unit spec to completion on this node.

        Raises :class:`~repro.core.faults.NodeKilled` when the node's
        process group dies under the unit or the coordinator declared
        the node lost mid-execution (the group is then killed rather
        than left running as a zombie committer).
        """
        if self.mode == "inline":
            return executor_mod.process_worker(spec, options)
        future = self._ensure_pool().submit(
            executor_mod.process_worker, spec, options)
        while True:
            try:
                return future.result(timeout=poll_interval)
            except FutureTimeout:
                if self.lost:
                    self.kill()
                    raise NodeKilled(
                        f"{self.node_id} declared lost while running "
                        f"{spec.setting!r} unit; process group killed")
            except BrokenProcessPool as exc:
                self._pool = None
                raise NodeKilled(
                    f"{self.node_id} worker process died: "
                    f"{type(exc).__name__}") from exc

    def kill(self) -> None:
        """Forcefully terminate the node's process group (if any)."""
        if self._pool is not None:
            executor_mod.ProcessBackend._kill_pool(self._pool)
            self._pool = None

    def shutdown(self) -> None:
        """Release the node's process group without waiting."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class SweepCoordinator:
    """Partition a sweep across N fault-tolerant nodes.

    Drop-in for :class:`~repro.core.runner.ParallelRunner` where sweeps
    consume it (``run(units)`` → :class:`~repro.core.runner.RunOutcome`,
    plus ``last_stats`` and ``workers``), but execution is a *fleet*:
    each node pulls units from a shared queue under a lease, heartbeats
    while evaluating, and commits results exactly once through the
    chained commit log.  See the module docstring for the failure
    model and ``docs/COORDINATOR.md`` for the full matrix.

    ``lease_s`` bounds how long a silent node keeps a unit;
    ``heartbeat_timeout_s`` (default ``2 * lease_s``) is the harsher
    threshold past which a busy, silent node is declared *lost* — its
    unit is stolen either way, but a lost node is also retired from
    the fleet and its late result dropped.  ``drain_timeout_s`` bounds
    the post-run join of healthy node threads.
    """

    def __init__(
        self,
        nodes: int = 2,
        harness=None,
        node_backend: str = "inline",
        run_dir: "Optional[Path | str]" = None,
        resume: bool = True,
        retry: Optional[RetryPolicy] = None,
        fault_boundary: Optional[FaultBoundary] = None,
        quarantine: Optional[QuarantinePolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        deadline_s: Optional[float] = None,
        lease_s: float = 30.0,
        heartbeat_timeout_s: Optional[float] = None,
        poll_interval: float = 0.02,
        drain_timeout_s: float = 10.0,
        store_dir: "Optional[Path | str]" = None,
        spill_dir: "Optional[Path | str]" = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        checkpoint_writer: Optional[Callable[[Path, str], None]] = None,
        mp_context=None,
    ) -> None:
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        if node_backend not in NODE_BACKENDS:
            raise ValueError(
                f"unknown node backend {node_backend!r}; expected one of "
                f"{NODE_BACKENDS}")
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        if harness is None:
            from repro.core.harness import EvaluationHarness
            harness = EvaluationHarness()
        self.harness = harness
        self.nodes = nodes
        self.node_backend = node_backend
        self.retry = retry or RetryPolicy()
        self.fault_boundary = fault_boundary
        #: the artifact/accounting core; per-run commit log and shared
        #: store are attached to it by :meth:`run`, and the admission
        #: views below keep it the single source of truth.
        self.engine = EvalEngine(
            run_dir=run_dir, resume=resume,
            checkpoint_writer=checkpoint_writer,
            admission=AdmissionPolicy(
                breaker=breaker, quarantine=quarantine,
                deadline_s=deadline_s))
        self.lease_s = lease_s
        self.heartbeat_timeout_s = (heartbeat_timeout_s
                                    if heartbeat_timeout_s is not None
                                    else 2.0 * lease_s)
        self.poll_interval = poll_interval
        self.drain_timeout_s = drain_timeout_s
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._clock = clock
        self._sleep = sleep
        self._mp_context = mp_context
        #: RunStats of the most recent :meth:`run` (for CLI summaries).
        self.last_stats: Optional[RunStats] = None
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._fatal: Optional[BaseException] = None
        self._queue: Deque[WorkUnit] = deque()
        self._terminal: Set[str] = set()
        self._target: Set[str] = set()
        self._by_id: Dict[str, WorkUnit] = {}
        self._all_units: Sequence[WorkUnit] = ()
        self._lease = LeaseTable(lease_s)
        self._done = threading.Event()
        self._store: Optional[ResultStore] = None
        self._fleet: List[Node] = []

    @property
    def workers(self) -> int:
        """Fleet width — what sweep windowing sizes itself against."""
        return self.nodes

    # -- engine views (one source of truth: the EvalEngine) ------------------

    @property
    def admission(self) -> AdmissionPolicy:
        return self.engine.admission

    @property
    def run_dir(self) -> Optional[Path]:
        return self.engine.run_dir

    @run_dir.setter
    def run_dir(self, value: "Optional[Path | str]") -> None:
        self.engine.run_dir = Path(value) if value is not None else None

    @property
    def resume(self) -> bool:
        return self.engine.resume

    @resume.setter
    def resume(self, value: bool) -> None:
        self.engine.resume = value

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self.engine.admission.breaker

    @breaker.setter
    def breaker(self, value: Optional[CircuitBreaker]) -> None:
        self.engine.admission.breaker = value

    @property
    def quarantine(self) -> Optional[QuarantinePolicy]:
        return self.engine.admission.quarantine

    @quarantine.setter
    def quarantine(self, value: Optional[QuarantinePolicy]) -> None:
        self.engine.admission.quarantine = value

    @property
    def deadline_s(self) -> Optional[float]:
        return self.engine.admission.deadline_s

    @deadline_s.setter
    def deadline_s(self, value: Optional[float]) -> None:
        self.engine.admission.deadline_s = value

    @property
    def _checkpoint_writer(self) -> Callable[[Path, str], None]:
        return self.engine.checkpoint_writer

    @_checkpoint_writer.setter
    def _checkpoint_writer(self,
                           value: Callable[[Path, str], None]) -> None:
        self.engine.checkpoint_writer = value

    # -- public API ----------------------------------------------------------

    def run(self, units: Sequence[WorkUnit]) -> RunOutcome:
        """Execute all units across the fleet; model faults never raise
        (they land in ``outcome.failures``), but a chaos crash escaping
        a node — like a real ``kill -9`` of the coordinator — does."""
        units = list(units)
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate unit ids in {ids}")
        stats = RunStats()
        self.last_stats = stats
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            log = CommitLog.open(self.run_dir / COMMIT_LOG_NAME,
                                 fresh=not self.resume)
        else:
            log = CommitLog()
        store = (ResultStore(self.store_dir)
                 if self.store_dir is not None else None)
        self._store = store
        self._fatal = None
        self._counters = {
            "nodes": self.nodes,
            "nodes_lost": 0,
            "units_stolen": 0,
            "lease_expirations": 0,
            "duplicate_commits": 0,
            "late_results": 0,
            "commit_repairs": log.repaired,
        }
        self._all_units = units
        self._by_id = {unit.unit_id: unit for unit in units}
        self.engine.commit_log = log
        self.engine.store = store
        collected, pending = self.engine.prepare(units, stats)
        specs = {unit.unit_id: executor_mod.spec_for(unit)
                 for unit in pending}
        if self.spill_dir is not None:
            perfstats.enable_spill(self.spill_dir)
        try:
            if pending:
                self._run_fleet(pending, specs, units, stats, collected,
                                log, store)
        finally:
            if self.spill_dir is not None:
                perfstats.disable_spill()
        if self._fatal is not None:
            raise self._fatal
        stats.record_coordinator(self._snapshot_counters())
        return self.engine.finalize(
            units, stats, collected,
            extra={"coordinator": self._snapshot_counters()})

    # -- fleet machinery -----------------------------------------------------

    def _run_fleet(self, pending: List[WorkUnit],
                   specs: Dict[str, executor_mod.UnitSpec],
                   all_units: Sequence[WorkUnit], stats: RunStats,
                   collected: Dict[str, EvalResult],
                   log: CommitLog, store: Optional[ResultStore]) -> None:
        """Spawn the fleet, monitor leases/heartbeats, join the healthy."""
        self._queue = deque(pending)
        self._terminal = set()
        self._target = {unit.unit_id for unit in pending}
        self._lease = LeaseTable(self.lease_s)
        self._done = threading.Event()
        hb_dir: Optional[Path] = None
        if self.node_backend == "process":
            hb_dir = (self.run_dir / ".heartbeats"
                      if self.run_dir is not None
                      else Path(tempfile.mkdtemp(prefix="repro-hb-")))
            hb_dir.mkdir(parents=True, exist_ok=True)
        fleet = [
            Node(f"node-{index}", self.node_backend, self._clock,
                 heartbeat_path=(hb_dir / f"node-{index}.beat"
                                 if hb_dir is not None else None),
                 mp_context=self._mp_context)
            for index in range(self.nodes)
        ]
        self._fleet = fleet
        if self.node_backend == "process":
            executor_mod.ensure_picklable(
                list(specs.items()), self._node_options(fleet[0]))
        threads = [
            threading.Thread(
                target=self._node_loop,
                args=(node, specs, all_units, stats, collected, log, store),
                name=node.node_id, daemon=True)
            for node in fleet
        ]
        for thread in threads:
            thread.start()
        try:
            self._monitor(fleet, stats)
        finally:
            self._done.set()
            for node, thread in zip(fleet, threads):
                if not node.lost:
                    thread.join(timeout=self.drain_timeout_s)
            for node in fleet:
                node.shutdown()

    def _monitor(self, fleet: List[Node], stats: RunStats) -> None:
        """Lease expiry, heartbeat-loss detection, zero-node degradation."""
        while True:
            with self._lock:
                if self._fatal is not None:
                    return
                if self._target <= self._terminal:
                    return
                now = self._clock()
                for node in fleet:
                    if not node.lost and node.busy and node.refresh_beat(now):
                        self._lease.renew_node(node.node_id, now)
                for unit_id, owner in self._lease.expired(now):
                    self._lease.release(unit_id, owner)
                    self._counters["lease_expirations"] += 1
                    self._requeue_locked(unit_id)
                for node in fleet:
                    if (not node.lost and node.busy
                            and now - node.last_beat
                            > self.heartbeat_timeout_s):
                        self._declare_lost_locked(node)
                if all(node.lost for node in fleet):
                    self._fail_remaining_locked(stats)
                    return
            self._sleep(self.poll_interval)

    def _requeue_locked(self, unit_id: str) -> None:
        """Return a unit to the queue for stealing (fleet lock held)."""
        if (unit_id not in self._terminal
                and all(unit.unit_id != unit_id for unit in self._queue)):
            self._queue.append(self._by_id[unit_id])

    def _declare_lost_locked(self, node: Node) -> None:
        """Retire a silent node and requeue its unit (fleet lock held)."""
        node.lost = True
        self._counters["nodes_lost"] += 1
        unit_id = node.current_unit
        if unit_id is not None:
            self._lease.release(unit_id, node.node_id)
            self._requeue_locked(unit_id)

    def _fail_remaining_locked(self, stats: RunStats) -> None:
        """Every node is gone: fail what is left instead of hanging."""
        for unit_id in self._target - self._terminal:
            unit_stats = stats.unit(unit_id)
            unit_stats.status = "failed"
            unit_stats.error = (
                f"NodeLost: all {self.nodes} node(s) lost before this "
                f"unit completed")
            self._terminal.add(unit_id)

    def _node_died(self, node: Node, unit: WorkUnit,
                   exc: NodeKilled) -> None:
        """Handle a :class:`NodeKilled` escaping a node's execution."""
        with self._lock:
            if not node.lost:
                node.lost = True
                self._counters["nodes_lost"] += 1
            self._lease.release(unit.unit_id, node.node_id)
            node.finish(self._clock())
            self._requeue_locked(unit.unit_id)

    def _record_fatal(self, exc: BaseException) -> None:
        """First unexpected exception wins; the fleet drains and
        :meth:`run` re-raises it (chaos-crash escape semantics)."""
        with self._lock:
            if self._fatal is None:
                self._fatal = exc
        self._done.set()

    def _on_beat(self, node: Node) -> None:
        """Inline-node heartbeat: renew every lease the node holds."""
        now = self._clock()
        node.beat(now)
        with self._lock:
            self._lease.renew_node(node.node_id, now)

    def _node_options(self, node: Node) -> executor_mod.WorkerOptions:
        """Per-node worker options: heartbeat wiring differs by mode."""
        boundary = self.fault_boundary
        heartbeat_file: Optional[str] = None
        spill_root: Optional[str] = None
        if node.mode == "inline":
            # heartbeat first in the chain: the node must register as
            # alive even on crossings where the user boundary raises
            heartbeat = HeartbeatBoundary(
                lambda node=node: self._on_beat(node))
            boundary = (CompositeBoundary(heartbeat, boundary)
                        if boundary is not None else heartbeat)
        else:
            if node.heartbeat_path is not None:
                heartbeat_file = str(node.heartbeat_path)
            if self.spill_dir is not None:
                spill_root = str(self.spill_dir)
        return executor_mod.WorkerOptions(
            harness=self.harness,
            retry=self.retry,
            fault_boundary=boundary,
            quarantine=self.quarantine,
            deadline_s=self.deadline_s,
            spill_root=spill_root,
            heartbeat_file=heartbeat_file,
        )

    def _node_loop(self, node: Node, specs: Dict[str, executor_mod.UnitSpec],
                   all_units: Sequence[WorkUnit], stats: RunStats,
                   collected: Dict[str, EvalResult],
                   log: CommitLog, store: Optional[ResultStore]) -> None:
        """One node's life: acquire → execute → commit, until drained."""
        while True:
            unit = self._acquire_unit(node, stats)
            if unit is None:
                break
            try:
                outcome = node.execute(specs[unit.unit_id],
                                       self._node_options(node),
                                       self.poll_interval)
            except NodeKilled as exc:
                self._node_died(node, unit, exc)
                break
            except BaseException as exc:
                self._record_fatal(exc)
                break
            if node.lost:
                # declared lost mid-unit (heartbeat blackout past the
                # timeout): a retired node must not commit late work
                with self._lock:
                    self._counters["late_results"] += 1
                break
            try:
                self._complete(node, unit, outcome, stats, all_units,
                               collected, log, store)
            except BaseException as exc:
                # includes SimulatedCrash from a chaos checkpoint writer
                # and CommitConflict — both must escape the run
                self._record_fatal(exc)
                break

    def _acquire_unit(self, node: Node,
                      stats: RunStats) -> Optional[WorkUnit]:
        """Pull the next unit under a fresh lease (None = drained)."""
        while True:
            if node.lost or self._done.is_set():
                return None
            fast_failed = False
            with self._lock:
                if self._fatal is not None:
                    return None
                if self._target <= self._terminal:
                    return None
                if self._queue:
                    unit = self._queue.popleft()
                    unit_id = unit.unit_id
                    if unit_id in self._terminal:
                        continue
                    unit_stats = stats.unit(unit_id)
                    refusal = self.admission.refuse_unit(
                        unit.provider.name)
                    if refusal is not None:
                        self.engine.fast_fail(unit_stats, refusal)
                        unit_stats.node = node.node_id
                        self._terminal.add(unit_id)
                        fast_failed = True
                    else:
                        now = self._clock()
                        if self._lease.acquire(unit_id, node.node_id, now):
                            self._counters["units_stolen"] += 1
                            unit_stats.steals += 1
                        node.begin(unit_id, now)
                        return unit
            if fast_failed:
                self._write_manifest(self._all_units, stats)
                continue
            self._sleep(self.poll_interval)

    def _complete(self, node: Node, unit: WorkUnit,
                  outcome: executor_mod.WorkerResult, stats: RunStats,
                  all_units: Sequence[WorkUnit],
                  collected: Dict[str, EvalResult],
                  log: CommitLog, store: Optional[ResultStore]) -> None:
        """Commit one node's finished unit with exactly-once accounting."""
        unit_id = unit.unit_id
        unit_stats = stats.unit(unit_id)
        model_key = unit.provider.name
        with self._lock:
            was_terminal = unit_id in self._terminal
            self._lease.release(unit_id, node.node_id)
            node.finish(self._clock())
        if outcome.status == "completed" and outcome.payload is not None:
            digest = payload_digest(outcome.payload)
            if was_terminal:
                # the original owner of a stolen unit finished late:
                # dedup at commit time, never double-append
                if log.committed(unit_id) is None:
                    with self._lock:
                        self._counters["late_results"] += 1
                elif log.commit(unit_id, digest, node.node_id) == "duplicate":
                    with self._lock:
                        self._counters["duplicate_commits"] += 1
                return
            # serialize-once: the digest computed for the dedup gate
            # above is the one the store and commit log record
            if (self.engine.commit_payload(unit, outcome.payload,
                                           node.node_id,
                                           digest=digest) == "duplicate"):
                # committed before (log survived, checkpoint did not):
                # the rebuild reproduced the committed bytes
                with self._lock:
                    self._counters["duplicate_commits"] += 1
            unit_stats.attempts = outcome.attempts
            unit_stats.retries = outcome.retries
            unit_stats.cache_hits = outcome.cache_hits
            unit_stats.cache_misses = outcome.cache_misses
            unit_stats.quarantined = outcome.quarantined
            unit_stats.wall_time_s = outcome.wall_time_s
            unit_stats.status = "completed"
            unit_stats.node = node.node_id
            if node.mode == "process":
                # inline nodes share our counters; absorbing them too
                # would double-count
                stats.absorb_perf_caches(outcome.perf_delta)
            result = results_io.loads(outcome.payload)
            EvalEngine.attach_telemetry(
                result, unit_stats, outcome.perf_delta)
            collected[unit_id] = result
            self.admission.record_success(model_key)
            self.engine.unit_completed(unit, result,
                                       payload=outcome.payload)
            with self._lock:
                self._terminal.add(unit_id)
        else:
            if was_terminal:
                with self._lock:
                    self._counters["late_results"] += 1
                return
            unit_stats.attempts = outcome.attempts
            unit_stats.retries = outcome.retries
            unit_stats.wall_time_s = outcome.wall_time_s
            unit_stats.status = outcome.status
            unit_stats.error = outcome.error
            unit_stats.node = node.node_id
            if node.mode == "process":
                stats.absorb_perf_caches(outcome.perf_delta)
            self.admission.record_failure(
                model_key, unit_stats.error or "node failure")
            with self._lock:
                self._terminal.add(unit_id)
        self._write_manifest(all_units, stats)

    # -- artifacts -----------------------------------------------------------

    def _snapshot_counters(self) -> Dict[str, int]:
        """Fleet + store counters for stats, manifest and CLI."""
        with self._lock:
            data = dict(self._counters)
        if self._store is not None:
            data.update(self._store.counters())
        return data

    def _write_manifest(self, units: Sequence[WorkUnit],
                        stats: RunStats) -> None:
        """Runner-compatible manifest plus a ``coordinator`` block."""
        self.engine.write_manifest(
            units, stats,
            extra={"coordinator": self._snapshot_counters()})
