"""Few-shot prompting extension.

The paper evaluates zero-shot only ("we pick up the latest checkpoints ...
without alignment/instruction fine-tuning").  This extension adds k-shot
prompt construction — exemplars drawn from *other* categories so no gold
leaks into the evaluated question — plus a calibrated uplift model so the
simulated zoo can be swept over k (an extension study, clearly separated
from paper reproductions).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from repro.core.dataset import Dataset
from repro.core.prompts import SYSTEM_PROMPT, question_user_prompt
from repro.core.question import Category, Question
from repro.models.vlm import CalibrationTable, SimulatedVLM

#: Per-exemplar uplift in absolute pass-rate points, with log saturation.
FEWSHOT_GAIN_PER_UNIT = 0.03
FEWSHOT_UNIT = 2.0


def select_exemplars(dataset: Dataset, target: Question,
                     k: int) -> List[Question]:
    """Deterministic k exemplars that never share the target's category.

    Cross-category selection guarantees no leakage of the evaluated
    question (or near-duplicates from the same generator family) into the
    prompt.  Questions are chosen round-robin over the other categories in
    stable qid order.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    pools: Dict[Category, List[Question]] = {}
    for question in dataset:
        if question.category is target.category:
            continue
        if question.qid == target.qid:
            continue
        pools.setdefault(question.category, []).append(question)
    for pool in pools.values():
        pool.sort(key=lambda q: q.qid)
    exemplars: List[Question] = []
    categories = sorted(pools, key=lambda c: c.value)
    index = 0
    while len(exemplars) < k and any(pools.values()):
        category = categories[index % len(categories)]
        if pools[category]:
            exemplars.append(pools[category].pop(0))
        index += 1
        if index > 10000:  # paranoia against empty pools
            break
    if len(exemplars) < k:
        raise ValueError(f"dataset too small for {k} exemplars")
    return exemplars


def fewshot_prompt(dataset: Dataset, question: Question, k: int) -> str:
    """The full k-shot user prompt: worked exemplars then the question."""
    parts: List[str] = [SYSTEM_PROMPT, ""]
    for index, exemplar in enumerate(select_exemplars(dataset, question, k)):
        parts.append(f"Example {index + 1}:")
        parts.append(question_user_prompt(exemplar))
        parts.append(f"Answer: {exemplar.gold_text}")
        parts.append("")
    parts.append("Now answer this question:")
    parts.append(question_user_prompt(question))
    return "\n".join(parts)


def fewshot_uplift(k: int) -> float:
    """Absolute pass-rate uplift of k-shot prompting (saturating)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return FEWSHOT_GAIN_PER_UNIT * math.log1p(k / FEWSHOT_UNIT) * FEWSHOT_UNIT


def _lifted(rates: Mapping[Category, float], k: int) -> Dict[Category, float]:
    uplift = fewshot_uplift(k)
    return {
        category: min(1.0, rate + uplift * (1.0 - rate))
        for category, rate in rates.items()
    }


def with_fewshot(model: SimulatedVLM, k: int) -> SimulatedVLM:
    """A variant of ``model`` evaluated with k in-context exemplars."""
    if k == 0:
        return model
    calibration = CalibrationTable(
        with_choice=_lifted(model.calibration.with_choice, k),
        no_choice=_lifted(model.calibration.no_choice, k),
    )
    return SimulatedVLM(
        name=f"{model.name}-{k}shot",
        encoder=model.encoder,
        projector=model.projector,
        backbone=model.backbone,
        calibration=calibration,
        supports_system_prompt=model.supports_system_prompt,
        temperature=model.temperature,
    )
