"""Dataset transforms: the MC->SA challenge recast and resolution scaling."""

from __future__ import annotations

import dataclasses

from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Question,
    QuestionType,
    VisualContent,
)


def to_short_answer(question: Question) -> Question:
    """Recast a multiple-choice question as short-answer.

    The prompt stays identical (per Section IV-A of the paper: "the
    prompts remain unchanged, but all answer choices were removed"); the
    gold answer becomes the full text of the correct option.  Short-answer
    questions pass through untouched.
    """
    if question.question_type is QuestionType.SHORT_ANSWER:
        return question
    gold = question.choices[question.correct_choice]
    # Keep the original comparison semantics (numeric/boolean/text) so the
    # judge can still score free-form responses; CHOICE kind degrades to
    # TEXT because there is no option letter to extract any more.
    kind = question.answer.kind
    if kind is AnswerKind.CHOICE:
        kind = AnswerKind.TEXT
    answer = AnswerSpec(
        kind=kind,
        text=gold,
        aliases=question.answer.aliases,
        unit=question.answer.unit,
        rel_tol=question.answer.rel_tol,
        variables=question.answer.variables,
        requires_manual_check=question.answer.requires_manual_check,
    )
    return dataclasses.replace(
        question,
        question_type=QuestionType.SHORT_ANSWER,
        choices=(),
        correct_choice=-1,
        answer=answer,
    )


def with_resolution_factor(question: Question, factor: int) -> Question:
    """Mark a question's visuals as downsampled by ``factor``.

    The renderer still rasterises at native size; the encoder applies the
    factor when computing perception, so this transform simply rescales
    the declared legibility (the smallest essential feature shrinks by
    ``factor``) and the nominal dimensions.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return question

    def scale(visual: VisualContent) -> VisualContent:
        return dataclasses.replace(
            visual,
            width=max(1, visual.width // factor),
            height=max(1, visual.height // factor),
            legibility_scale=visual.legibility_scale / factor,
        )

    return dataclasses.replace(
        question,
        visual=scale(question.visual),
        extra_visuals=tuple(scale(v) for v in question.extra_visuals),
    )
