"""Dataset-collection pipeline — the paper's first item of future work.

Section V: "Future works include ChipVQA-oriented dataset collection".
This module models the paper's own curation process (Section III-A2:
drafts from source material, expert review, ~200 human-hours) as an
explicit workflow:

* a :class:`GeneratorRegistry` of question generators per discipline,
* near-duplicate screening (token-shingle Jaccard against the corpus),
* an annotation workflow (draft -> expert review -> accept/reject) with
  review rules mirroring the paper's quality bar (distinct plausible
  options, visual required, difficulty annotated),
* balancing reports that show what a growing collection needs next.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.dataset import Dataset
from repro.core.question import Category, Question
from repro.tokenizer import default_tokenizer


# -- near-duplicate screening ----------------------------------------------------

def _shingles(text: str, k: int = 3) -> Set[Tuple[str, ...]]:
    tokens = default_tokenizer().tokenize(text)
    if len(tokens) < k:
        return {tuple(tokens)} if tokens else set()
    return {tuple(tokens[i:i + k]) for i in range(len(tokens) - k + 1)}


def prompt_similarity(a: str, b: str) -> float:
    """Jaccard similarity of token 3-shingles, in [0, 1]."""
    sa, sb = _shingles(a), _shingles(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def find_near_duplicates(candidate: Question, corpus: Iterable[Question],
                         threshold: float = 0.6) -> List[Tuple[str, float]]:
    """Existing questions whose prompts are suspiciously similar."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    hits = []
    for existing in corpus:
        if existing.qid == candidate.qid:
            continue
        score = prompt_similarity(candidate.prompt, existing.prompt)
        if score >= threshold:
            hits.append((existing.qid, score))
    hits.sort(key=lambda pair: -pair[1])
    return hits


# -- review workflow --------------------------------------------------------------

class ReviewStatus(enum.Enum):
    """Lifecycle of a submitted question."""

    DRAFT = "draft"
    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass
class ReviewRecord:
    question: Question
    status: ReviewStatus = ReviewStatus.DRAFT
    issues: List[str] = field(default_factory=list)
    reviewer: str = ""


def review_question(question: Question,
                    corpus: Sequence[Question] = (),
                    duplicate_threshold: float = 0.6) -> List[str]:
    """The expert-review checklist; returns the list of blocking issues.

    Mirrors the paper's stated quality bar: every question carries a
    visual, MC options are distinct and plausible (non-trivially long or
    numeric), difficulty is annotated, topics are tagged, and the prompt
    is not a near-duplicate of an existing question.
    """
    issues: List[str] = []
    if not question.all_visuals:
        issues.append("no visual component")
    if not question.topics:
        issues.append("missing topic tags")
    if question.difficulty in (0.0, 1.0):
        issues.append("difficulty not calibrated (saturated value)")
    tokenizer = default_tokenizer()
    if tokenizer.count(question.prompt) < 5:
        issues.append("prompt too short to be self-contained")
    if question.is_multiple_choice:
        if len(set(question.choices)) != 4:
            issues.append("options not distinct")
        gold = question.choices[question.correct_choice]
        if any(len(choice) == 0 for choice in question.choices):
            issues.append("empty option")
        lookalikes = sum(
            1 for choice in question.choices
            if abs(len(choice) - len(gold)) <= max(2, len(gold) // 2))
        if lookalikes < 3:
            # advisory only: length is a crude proxy for plausibility, so
            # this flags for human attention rather than auto-rejecting
            issues.append(
                "advisory: options not syntactically similar to the gold")
    duplicates = find_near_duplicates(question, corpus,
                                      duplicate_threshold)
    if duplicates:
        worst = duplicates[0]
        issues.append(
            f"near-duplicate of {worst[0]} (similarity {worst[1]:.2f})")
    return issues


class CollectionPipeline:
    """Grow a collection through the draft -> review -> accept workflow."""

    def __init__(self, seed_corpus: Optional[Dataset] = None,
                 duplicate_threshold: float = 0.6):
        self._records: Dict[str, ReviewRecord] = {}
        self._accepted: List[Question] = list(seed_corpus or [])
        self.duplicate_threshold = duplicate_threshold

    def submit(self, question: Question) -> ReviewRecord:
        if question.qid in self._records or any(
                q.qid == question.qid for q in self._accepted):
            raise ValueError(f"duplicate qid {question.qid!r}")
        record = ReviewRecord(question)
        self._records[question.qid] = record
        return record

    def review(self, qid: str, reviewer: str = "expert") -> ReviewRecord:
        record = self._records[qid]
        record.issues = review_question(record.question, self._accepted,
                                        self.duplicate_threshold)
        record.reviewer = reviewer
        blocking = [issue for issue in record.issues
                    if not issue.startswith("advisory:")]
        if blocking:
            record.status = ReviewStatus.REJECTED
        else:
            record.status = ReviewStatus.ACCEPTED
            self._accepted.append(record.question)
        return record

    def review_all(self, reviewer: str = "expert") -> Dict[str, ReviewStatus]:
        outcome = {}
        for qid, record in list(self._records.items()):
            if record.status is ReviewStatus.DRAFT:
                outcome[qid] = self.review(qid, reviewer).status
        return outcome

    @property
    def accepted(self) -> Dataset:
        return Dataset(self._accepted, name="collection")

    def acceptance_rate(self) -> float:
        reviewed = [r for r in self._records.values()
                    if r.status is not ReviewStatus.DRAFT]
        if not reviewed:
            raise ValueError("nothing reviewed yet")
        accepted = sum(1 for r in reviewed
                       if r.status is ReviewStatus.ACCEPTED)
        return accepted / len(reviewed)


# -- balancing -------------------------------------------------------------------

def balance_report(dataset: Dataset,
                   target_per_category: int) -> Dict[Category, int]:
    """Questions still needed per discipline to reach a uniform target."""
    if target_per_category < 0:
        raise ValueError("target must be non-negative")
    counts = dataset.category_counts()
    return {
        category: max(0, target_per_category - counts[category])
        for category in Category
    }


def mc_sa_report(dataset: Dataset,
                 target_sa_fraction: float = 0.3) -> Dict[Category, int]:
    """Short-answer questions needed per category to reach a SA fraction."""
    if not 0.0 <= target_sa_fraction <= 1.0:
        raise ValueError("fraction must be a probability")
    needed: Dict[Category, int] = {}
    mc_counts = dataset.mc_counts_by_category()
    for category, total in dataset.category_counts().items():
        sa = total - mc_counts[category]
        target = int(round(target_sa_fraction * total))
        needed[category] = max(0, target - sa)
    return needed
