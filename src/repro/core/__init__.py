"""Core: question schema, dataset, benchmark assembly, harness, metrics."""

from repro.core import collection, fewshot, perfstats, significance
from repro.core.benchmark import (
    BenchmarkIntegrityError,
    build_chipvqa,
    build_chipvqa_challenge,
    validate_chipvqa,
)
from repro.core.dataset import Dataset, TokenStats
from repro.core.faults import (
    ChaosCheckpointWriter,
    FaultBoundary,
    LatencyBoundary,
    PermanentError,
    SimulatedCrash,
    TransientModelError,
)
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.metrics import EvalRecord, EvalResult, bootstrap_ci
from repro.core.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    QuarantinePolicy,
    Watchdog,
)
from repro.core.runcache import RunCache, question_key
from repro.core.runner import (
    ParallelRunner,
    RetryPolicy,
    RunOutcome,
    RunStats,
    WorkUnit,
)
from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    Question,
    QuestionType,
    VisualContent,
    VisualType,
)
from repro.core.transforms import to_short_answer, with_resolution_factor

__all__ = [
    "AnswerKind",
    "collection",
    "fewshot",
    "perfstats",
    "significance",
    "AnswerSpec",
    "BenchmarkIntegrityError",
    "Category",
    "ChaosCheckpointWriter",
    "CircuitBreaker",
    "CircuitOpenError",
    "Dataset",
    "Deadline",
    "DeadlineExceeded",
    "QuarantinePolicy",
    "SimulatedCrash",
    "Watchdog",
    "EvalRecord",
    "EvalResult",
    "EvaluationHarness",
    "FaultBoundary",
    "LatencyBoundary",
    "ParallelRunner",
    "PermanentError",
    "Question",
    "RetryPolicy",
    "RunCache",
    "RunOutcome",
    "RunStats",
    "TransientModelError",
    "WorkUnit",
    "question_key",
    "QuestionType",
    "TokenStats",
    "VisualContent",
    "VisualType",
    "bootstrap_ci",
    "build_chipvqa",
    "build_chipvqa_challenge",
    "run_table2",
    "to_short_answer",
    "validate_chipvqa",
    "with_resolution_factor",
]
