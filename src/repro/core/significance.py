"""Statistical significance for model comparisons on a shared question set.

Benchmark papers compare models on the *same* 142 questions, so paired
tests are the right tool: McNemar's exact test on the discordant pairs and
a paired-bootstrap confidence interval on the pass@1 difference.  Both are
implemented from first principles (no scipy dependency at runtime).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.metrics import EvalResult


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing two models question-by-question."""

    model_a: str
    model_b: str
    both_correct: int
    both_wrong: int
    only_a: int     # A correct, B wrong
    only_b: int     # B correct, A wrong
    p_value: float  # McNemar exact (two-sided)
    diff: float     # pass@1(A) - pass@1(B)
    ci_low: float
    ci_high: float

    @property
    def n(self) -> int:
        return (self.both_correct + self.both_wrong
                + self.only_a + self.only_b)

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05

    def summary(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (f"{self.model_a} vs {self.model_b}: "
                f"diff={self.diff:+.3f} "
                f"[{self.ci_low:+.3f}, {self.ci_high:+.3f}], "
                f"McNemar p={self.p_value:.4f} ({verdict})")


def _binom_two_sided_p(k: int, n: int) -> float:
    """Two-sided exact binomial p-value at p=0.5 (McNemar's exact test)."""
    if n == 0:
        return 1.0
    tail = min(k, n - k)
    cumulative = 0.0
    for i in range(tail + 1):
        cumulative += math.comb(n, i)
    p = 2.0 * cumulative / (2.0 ** n)
    return min(1.0, p)


def _aligned_flags(a: EvalResult, b: EvalResult) -> Tuple[List[bool], List[bool]]:
    by_qid_a = {r.qid: r.correct for r in a.records}
    by_qid_b = {r.qid: r.correct for r in b.records}
    if set(by_qid_a) != set(by_qid_b):
        raise ValueError("results cover different question sets")
    qids = sorted(by_qid_a)
    return ([by_qid_a[q] for q in qids], [by_qid_b[q] for q in qids])


def mcnemar(a: EvalResult, b: EvalResult) -> Tuple[int, int, float]:
    """(only-A-correct, only-B-correct, exact two-sided p) on shared qids."""
    flags_a, flags_b = _aligned_flags(a, b)
    only_a = sum(1 for x, y in zip(flags_a, flags_b) if x and not y)
    only_b = sum(1 for x, y in zip(flags_a, flags_b) if y and not x)
    return only_a, only_b, _binom_two_sided_p(only_a, only_a + only_b)


def paired_bootstrap_diff(a: EvalResult, b: EvalResult,
                          confidence: float = 0.95, resamples: int = 4000,
                          seed: int = 13) -> Tuple[float, float]:
    """CI of pass@1(A) - pass@1(B) by resampling questions jointly."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    flags_a, flags_b = _aligned_flags(a, b)
    n = len(flags_a)
    rng = random.Random(seed)
    diffs = []
    for _ in range(resamples):
        indices = [rng.randrange(n) for _ in range(n)]
        diff = sum(flags_a[i] for i in indices) \
            - sum(flags_b[i] for i in indices)
        diffs.append(diff / n)
    diffs.sort()
    alpha = (1.0 - confidence) / 2.0
    low = diffs[int(alpha * resamples)]
    high = diffs[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return low, high


def compare(a: EvalResult, b: EvalResult) -> PairedComparison:
    """Full paired comparison of two evaluation runs."""
    flags_a, flags_b = _aligned_flags(a, b)
    only_a, only_b, p_value = mcnemar(a, b)
    ci_low, ci_high = paired_bootstrap_diff(a, b)
    return PairedComparison(
        model_a=a.model_name,
        model_b=b.model_name,
        both_correct=sum(1 for x, y in zip(flags_a, flags_b) if x and y),
        both_wrong=sum(1 for x, y in zip(flags_a, flags_b)
                       if not x and not y),
        only_a=only_a,
        only_b=only_b,
        p_value=p_value,
        diff=(sum(flags_a) - sum(flags_b)) / len(flags_a),
        ci_low=ci_low,
        ci_high=ci_high,
    )


def rank_models(results: Dict[str, EvalResult]) -> List[Tuple[str, float]]:
    """Models sorted by pass@1, descending (ties broken by name)."""
    return sorted(
        ((name, result.pass_at_1()) for name, result in results.items()),
        key=lambda pair: (-pair[1], pair[0]),
    )
