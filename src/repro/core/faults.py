"""Fault taxonomy, pluggable fault boundaries, and the chaos harness.

Real VLM evaluation is dominated by remote model calls that fail in two
distinct ways: *transient* faults (rate limits, timeouts, connection
resets) that a retry absorbs, and *permanent* faults (content filters,
revoked credentials, malformed requests) that no amount of retrying
fixes.  The :class:`~repro.core.runner.ParallelRunner` threads every
model call through a **fault boundary** — a pluggable hook invoked once
per (unit, question) evaluation — so tests can inject either class of
failure deterministically and benchmarks can emulate the call latency
that parallel workers exist to hide.

Beyond boundary faults, the chaos harness injects failures at the
*artifact* layer: :class:`ChaosCheckpointWriter` simulates process
kills mid-checkpoint (:class:`SimulatedCrash`) and silent torn writes,
which the checksummed resume path of :mod:`repro.core.results_io` must
detect and repair.  ``tests/test_chaos.py`` proves a run under the full
stack (flakes + poison + judge faults + crashes + tears) converges to
artifacts byte-identical to a fault-free run.

All boundaries here are thread-safe: the runner invokes them
concurrently from its worker pool.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from pathlib import Path
from typing import (
    Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
)


class ModelCallError(RuntimeError):
    """Base class for simulated model-call failures."""


class TransientModelError(ModelCallError):
    """A retryable failure (timeout, rate limit, dropped connection)."""


class PermanentError(ModelCallError):
    """A non-retryable failure; the unit is recorded as failed and
    skipped without killing the rest of the run."""


class SimulatedCrash(RuntimeError):
    """A simulated process kill (chaos injection).

    Deliberately *not* a :class:`ModelCallError`: the runner's fault
    handling must not absorb it — like a real ``kill -9`` it escapes
    the run, leaving whatever artifacts were (partially) written for
    the next launch to resume from.
    """


class NodeKilled(RuntimeError):
    """A coordinator node died mid-unit (chaos injection or real).

    Raised when a :class:`~repro.core.coordinator.Node`'s process group
    breaks (``BrokenProcessPool``, SIGKILL) or when the chaos harness
    scripts an in-process node death.  Like :class:`SimulatedCrash` it
    is *not* a :class:`ModelCallError` — no retry/quarantine layer may
    absorb it; only the coordinator's lease/steal machinery handles it,
    by requeueing the node's unit for a healthy sibling.
    """


class FaultBoundary:
    """Base boundary: never faults.

    Subclasses override :meth:`check`, which is called once per
    evaluated question *before* its answer is accepted; raising
    :class:`TransientModelError` triggers the runner's retry/backoff
    path, raising :class:`PermanentError` fails the unit.
    """

    def check(self, unit_id: str, qid: str) -> None:
        """Hook point; the default implementation is a no-op."""

    def __call__(self, unit_id: str, qid: str) -> None:
        self.check(unit_id, qid)


class RecordingBoundary(FaultBoundary):
    """Counts boundary crossings without ever faulting (test spy).

    ``calls`` retains every ``(unit_id, qid)`` pair in invocation order;
    :meth:`calls_for` filters by unit — the resume tests use this to
    prove finished units are not re-evaluated.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls: List[Tuple[str, str]] = []

    def check(self, unit_id: str, qid: str) -> None:
        with self._lock:
            self.calls.append((unit_id, qid))

    def calls_for(self, unit_id: str) -> List[str]:
        with self._lock:
            return [qid for uid, qid in self.calls if uid == unit_id]

    def units_evaluated(self) -> List[str]:
        """Unique unit ids that crossed the boundary, in first-call order."""
        seen: List[str] = []
        with self._lock:
            for uid, _ in self.calls:
                if uid not in seen:
                    seen.append(uid)
        return seen


class ScriptedFaults(FaultBoundary):
    """Raise a scripted sequence of exceptions per question id.

    ``script`` maps a qid (or ``"unit_id::qid"`` for unit-scoped
    entries) to a list of exceptions consumed one per boundary crossing;
    once the list is exhausted the question succeeds.  This makes
    "fails twice then recovers" one line of test setup::

        ScriptedFaults({"dig-01": [TransientModelError("429"),
                                   TransientModelError("timeout")]})
    """

    def __init__(self, script: Mapping[str, Sequence[Exception]]):
        self._lock = threading.Lock()
        self._pending: Dict[str, List[Exception]] = {
            key: list(faults) for key, faults in script.items()
        }

    def check(self, unit_id: str, qid: str) -> None:
        with self._lock:
            for key in (f"{unit_id}::{qid}", qid):
                pending = self._pending.get(key)
                if pending:
                    raise pending.pop(0)

    def exhausted(self) -> bool:
        """True once every scripted fault has been raised."""
        with self._lock:
            return not any(self._pending.values())


class FlakyBoundary(FaultBoundary):
    """Deterministic pseudo-random transient faults.

    A stable fraction ``rate`` of (unit, question) pairs — chosen by
    hashing, so independent of thread scheduling — fail with
    :class:`TransientModelError` on their first ``failures`` crossings
    and succeed afterwards.  A run under this boundary must converge to
    artifacts byte-identical to a fault-free run.
    """

    def __init__(self, rate: float = 0.1, failures: int = 1, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if failures < 1:
            raise ValueError("failures must be >= 1")
        self.rate = rate
        self.failures = failures
        self.seed = seed
        self._lock = threading.Lock()
        self._crossings: Dict[Tuple[str, str], int] = {}

    def _is_flaky(self, unit_id: str, qid: str) -> bool:
        digest = hashlib.sha256(
            f"{self.seed}|{unit_id}|{qid}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") / 2 ** 32 < self.rate

    def check(self, unit_id: str, qid: str) -> None:
        if not self._is_flaky(unit_id, qid):
            return
        key = (unit_id, qid)
        with self._lock:
            crossing = self._crossings.get(key, 0)
            self._crossings[key] = crossing + 1
        if crossing < self.failures:
            raise TransientModelError(
                f"injected flake {crossing + 1}/{self.failures} for {qid}")


class LatencyBoundary(FaultBoundary):
    """Emulate per-call model latency (never faults).

    Real sweeps are dominated by network round-trips, which is exactly
    what thread workers overlap; the scaling benchmark uses this
    boundary so speedups reflect the API-bound regime rather than
    single-core CPU contention.  ``sleep`` is injectable for tests.
    """

    def __init__(self, per_question: float = 0.001,
                 sleep: Callable[[float], None] = time.sleep):
        if per_question < 0:
            raise ValueError("per_question latency must be >= 0")
        self.per_question = per_question
        self._sleep = sleep

    def check(self, unit_id: str, qid: str) -> None:
        if self.per_question:
            self._sleep(self.per_question)


class BusyBoundary(FaultBoundary):
    """Burn CPU while *holding the GIL* on every crossing (never faults).

    The inverse of :class:`LatencyBoundary`: instead of sleeping (which
    releases the GIL and lets thread workers overlap), each crossing
    runs a tight ``sha256`` chain over tiny buffers — pure Python-level
    compute the interpreter cannot parallelise across threads.  The
    process-scaling benchmark uses this to model the CPU-bound regime
    where only :class:`~repro.core.executor.ProcessBackend` scales.
    Stateless, hence trivially picklable for process workers.
    """

    def __init__(self, spins: int = 400):
        if spins < 0:
            raise ValueError("spins must be >= 0")
        self.spins = spins

    def check(self, unit_id: str, qid: str) -> None:
        digest = hashlib.sha256(f"{unit_id}|{qid}".encode("utf-8")).digest()
        for _ in range(self.spins):
            # small buffers keep hashlib from releasing the GIL
            digest = hashlib.sha256(digest).digest()


class WorkerKillBoundary(FaultBoundary):
    """SIGKILL the current process at a scripted (unit, question) crossing.

    Simulates a real worker-process death — OOM kill, segfault, operator
    ``kill -9`` — which no in-process exception handling can observe;
    only the parent's broken-pool recovery (or a relaunch, for in-process
    backends) can handle it.  ``kill_on`` is a qid or ``"unit_id::qid"``
    as in :class:`ScriptedFaults`.

    The one-shot latch is a *file*, not memory, so it survives both the
    process boundary and relaunches: the first worker to reach the
    scripted crossing claims ``flag_path`` atomically (``O_EXCL``) and
    dies; every later crossing — same run, sibling worker, or a resumed
    launch — sees the flag and passes.  No locks, so instances pickle
    cleanly into process-backend workers.
    """

    def __init__(self, flag_path: "Path | str", kill_on: str):
        self.flag_path = str(flag_path)
        self.kill_on = kill_on

    def check(self, unit_id: str, qid: str) -> None:
        if qid != self.kill_on and f"{unit_id}::{qid}" != self.kill_on:
            return
        try:
            fd = os.open(self.flag_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)


class NodeCrashBoundary(FaultBoundary):
    """Kill the executing coordinator node at a scripted crossing.

    The in-process analogue of :class:`WorkerKillBoundary` for
    coordinator chaos tests: instead of SIGKILLing a worker process it
    raises :class:`NodeKilled`, which escapes the evaluation stack
    (nothing below the coordinator absorbs it) and takes the node out
    of the fleet mid-unit.  ``crash_on`` is a qid or ``"unit_id::qid"``.
    The one-shot latch is a flag file claimed with ``O_EXCL`` — exactly
    as in :class:`WorkerKillBoundary` — so the crossing faults once per
    flag even across the re-execution that work-stealing triggers.
    """

    def __init__(self, flag_path: "Path | str", crash_on: str):
        self.flag_path = str(flag_path)
        self.crash_on = crash_on

    def check(self, unit_id: str, qid: str) -> None:
        if qid != self.crash_on and f"{unit_id}::{qid}" != self.crash_on:
            return
        try:
            fd = os.open(self.flag_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        raise NodeKilled(f"injected node death at {unit_id}::{qid}")


class GateBoundary(FaultBoundary):
    """Wedge the executing node at a scripted crossing (never faults).

    Models a heartbeat blackout: the node thread blocks inside the
    crossing, so it stops beating and stops renewing its lease while
    remaining alive — the coordinator must steal its unit and a healthy
    node must finish it.  ``block_on`` is a qid or ``"unit_id::qid"``.
    The flag-file latch makes the gate one-shot, so the stolen
    re-execution of the same unit passes straight through.  The block
    releases when :meth:`release` is called or after ``max_block_s``
    (so a test's wedged thread always unwinds before the run is torn
    down).  Thread-state (an Event) makes this inline-node only.
    """

    def __init__(self, flag_path: "Path | str", block_on: str,
                 max_block_s: float = 30.0):
        if max_block_s <= 0:
            raise ValueError("max_block_s must be > 0")
        self.flag_path = str(flag_path)
        self.block_on = block_on
        self.max_block_s = max_block_s
        self._gate = threading.Event()

    def release(self) -> None:
        """Unblock a currently-gated (and any future) crossing."""
        self._gate.set()

    def check(self, unit_id: str, qid: str) -> None:
        if qid != self.block_on and f"{unit_id}::{qid}" != self.block_on:
            return
        try:
            fd = os.open(self.flag_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        self._gate.wait(timeout=self.max_block_s)


class HeartbeatBoundary(FaultBoundary):
    """Invoke a beat callback on every crossing (never faults).

    The coordinator composes this *first* in a node's boundary chain so
    each evaluated question doubles as a liveness signal: the callback
    renews the node's lease.  Carries a live callable, hence not
    picklable — inline nodes only; process nodes use
    :class:`FileHeartbeatBoundary`.
    """

    def __init__(self, beat: Callable[[], None]):
        self._beat = beat

    def check(self, unit_id: str, qid: str) -> None:
        self._beat()


class FileHeartbeatBoundary(FaultBoundary):
    """Touch a file on every crossing (never faults; picklable).

    The cross-process heartbeat: a worker process cannot call back into
    the coordinator, so it bumps a per-node file's mtime instead and
    the coordinator's monitor reads the advancing mtime as liveness.
    No locks or live objects, so instances pickle cleanly into process
    workers.
    """

    def __init__(self, path: "Path | str"):
        self.path = str(path)

    def check(self, unit_id: str, qid: str) -> None:
        with open(self.path, "ab"):
            pass
        os.utime(self.path, None)


class CompositeBoundary(FaultBoundary):
    """Chain several boundaries; each crossing visits all in order.

    A raising boundary short-circuits the chain: boundaries after it
    are not consulted for that crossing (so e.g. a latency boundary
    placed *after* a fault injector does not sleep for calls that
    failed before reaching the provider).
    """

    def __init__(self, *boundaries: FaultBoundary):
        self.boundaries = boundaries

    def check(self, unit_id: str, qid: str) -> None:
        for boundary in self.boundaries:
            boundary.check(unit_id, qid)


class PoisonedQuestions(FaultBoundary):
    """Permanently fail a fixed set of questions on *every* crossing.

    Keys are qids or ``"unit_id::qid"`` for unit-scoped poison.  Unlike
    :class:`ScriptedFaults` the fault never exhausts — this models a
    genuinely poison input (a request the provider always rejects),
    the case question-level quarantine exists to salvage.
    """

    def __init__(self, keys: Iterable[str], message: str = "poison input"):
        self._keys = frozenset(keys)
        self.message = message

    def check(self, unit_id: str, qid: str) -> None:
        if qid in self._keys or f"{unit_id}::{qid}" in self._keys:
            raise PermanentError(f"{self.message}: {qid}")


class ChaosCheckpointWriter:
    """Injectable checkpoint writer that simulates kills and torn writes.

    The runner checkpoints through a pluggable ``(path, text)`` writer
    (default: :func:`repro.core.results_io.atomic_write_text`).  This
    chaos variant consults two one-shot scripts keyed by the artifact's
    file stem (the unit id):

    * ``crash_on`` — write only ``keep_fraction`` of the payload
      *directly to the final path* (a non-atomic torn write, as a
      pre-rename kill of a naive writer would leave) and raise
      :class:`SimulatedCrash`, aborting the run mid-checkpoint;
    * ``tear_on`` — the same torn write, but silently: the run carries
      on believing the checkpoint landed, and only a checksum-verifying
      resume or ``repro verify-run`` can tell.

    Each stem faults once; subsequent writes go through atomically, so
    a relaunch loop converges.  ``crashes`` and ``tears`` record the
    stems actually faulted, in order, for assertions.
    """

    def __init__(self, crash_on: Iterable[str] = (),
                 tear_on: Iterable[str] = (),
                 keep_fraction: float = 0.5):
        if not 0.0 <= keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")
        self._lock = threading.Lock()
        self._pending_crash = set(crash_on)
        self._pending_tear = set(tear_on)
        self.keep_fraction = keep_fraction
        self.crashes: List[str] = []
        self.tears: List[str] = []

    def pending(self) -> bool:
        """True while any scripted crash or tear has not fired yet."""
        with self._lock:
            return bool(self._pending_crash or self._pending_tear)

    def __call__(self, path: "Path | str", text: str) -> None:
        from repro.core.results_io import atomic_write_text

        path = Path(path)
        stem = path.stem
        with self._lock:
            if stem in self._pending_crash:
                self._pending_crash.discard(stem)
                self.crashes.append(stem)
                mode = "crash"
            elif stem in self._pending_tear:
                self._pending_tear.discard(stem)
                self.tears.append(stem)
                mode = "tear"
            else:
                mode = "clean"
        if mode == "clean":
            atomic_write_text(path, text)
            return
        torn = text[: max(1, int(len(text) * self.keep_fraction))]
        path.write_text(torn, encoding="utf-8")
        if mode == "crash":
            raise SimulatedCrash(f"simulated kill mid-checkpoint of {stem}")
