"""The evaluation harness: run models over datasets and judge responses.

:class:`EvaluationHarness` reproduces the paper's protocol (Section IV):
zero-shot prompting at temperature 0.1, MC options in the prompt for the
standard collection, the challenge collection with options removed, hybrid
auto/manual judging, and the resolution-study variant.

Sweeps (``run_table2``, :meth:`EvaluationHarness.resolution_study`) are
executed through :class:`~repro.core.runner.ParallelRunner`, which adds
sharding, per-question memoization, retry and checkpoint/resume on top of
the per-unit evaluation below; ``workers=1`` (the default) preserves the
serial path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.benchmark import build_chipvqa, build_chipvqa_challenge
from repro.core.dataset import Dataset
from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category, Question
from repro.core.runner import ParallelRunner, WorkUnit
from repro.judge.llm_judge import HybridJudge
from repro.models.providers import ModelProvider, as_provider
from repro.models.vlm import NO_CHOICE, WITH_CHOICE, ModelAnswer


class EvaluationHarness:
    """Zero-shot VQA evaluation through the provider abstraction.

    Models are addressed as :class:`~repro.models.providers.ModelProvider`
    instances; raw ``answer_all``-compatible objects (a
    :class:`~repro.models.vlm.SimulatedVLM`, the chip-designer agent, a
    fine-tuned variant) are accepted everywhere and coerced via
    :func:`~repro.models.providers.as_provider`.
    """

    def __init__(self, judge: Optional[HybridJudge] = None,
                 use_raster: bool = False):
        """``use_raster=True`` grounds perception in rendered pixels
        (slower); the default analytic mode is used for the big Table II
        sweeps and agrees with the raster mode on outcome plans at native
        resolution."""
        self.judge = judge or HybridJudge()
        self.use_raster = use_raster

    def judge_answer(self, question: Question,
                     answer: ModelAnswer) -> EvalRecord:
        """Judge one model answer into an :class:`EvalRecord`.

        The single judging entry point shared by :meth:`evaluate` and
        the parallel runner, so judge configuration (manual overrides,
        transcripts) applies uniformly however a run is executed.
        """
        verdict = self.judge.judge(question, answer.text)
        return EvalRecord(
            qid=question.qid,
            category=question.category,
            response=answer.text,
            correct=verdict.correct,
            judge_method=verdict.method,
            perception=answer.perception,
        )

    def evaluate(self, model: ModelProvider, dataset: Dataset,
                 setting: str, resolution_factor: int = 1,
                 use_raster: Optional[bool] = None) -> EvalResult:
        """Run one (provider, dataset, setting) evaluation.

        ``use_raster`` overrides the harness-level perception mode for
        this call only (``None`` keeps the configured default).
        """
        raster = self.use_raster if use_raster is None else use_raster
        provider = as_provider(model)
        questions = list(dataset)
        answers = provider.answer_batch(questions, setting,
                                        resolution_factor,
                                        use_raster=raster)
        result = EvalResult(model_name=provider.name,
                            dataset_name=dataset.name, setting=setting,
                            resolution_factor=resolution_factor)
        for question, answer in zip(questions, answers):
            result.add(self.judge_answer(question, answer))
        return result

    # -- paper protocols -----------------------------------------------------

    def zero_shot_standard(self, model: ModelProvider) -> EvalResult:
        """Table II, left half: the standard collection with choices."""
        return self.evaluate(model, build_chipvqa(), WITH_CHOICE)

    def zero_shot_challenge(self, model: ModelProvider) -> EvalResult:
        """Table II, right half: all MC questions recast as short answer."""
        return self.evaluate(model, build_chipvqa_challenge(), NO_CHOICE)

    def resolution_study(self, model: ModelProvider,
                         category: Category = Category.DIGITAL,
                         factors: Sequence[int] = (1, 8, 16),
                         runner: Optional[ParallelRunner] = None,
                         workers: int = 1,
                         backend: Optional[str] = None
                         ) -> Dict[int, EvalResult]:
        """Section IV-B: one category evaluated at downsampled resolutions.

        Raster-grounded perception is forced on per work unit (the study
        is about image quality) while *this* harness — its judge, manual
        overrides and any subclass behaviour — is reused unchanged; no
        fresh harness is constructed.  Pass ``runner`` to share a cache
        or checkpoint directory, ``workers`` to fan the factors out, or
        ``backend`` to pick the execution backend (see
        :mod:`repro.core.executor`).
        """
        subset = build_chipvqa().by_category(category)
        if runner is None:
            runner = ParallelRunner(harness=self, workers=workers,
                                    backend=backend)
        units = [
            WorkUnit(model=model, dataset=subset, setting=WITH_CHOICE,
                     resolution_factor=factor, use_raster=True)
            for factor in factors
        ]
        outcome = runner.run(units).raise_on_failure()
        return {
            unit.resolution_factor: outcome.result_for(unit)
            for unit in units
        }


def run_table2(models: "Sequence[ModelProvider | str]",
               harness: Optional[EvaluationHarness] = None,
               *,
               runner: Optional[ParallelRunner] = None,
               workers: int = 1,
               run_dir: "Optional[Path | str]" = None,
               resume: bool = True,
               backend: Optional[str] = None,
               spill_dir: "Optional[Path | str]" = None,
               ) -> Dict[str, Dict[str, EvalResult]]:
    """Evaluate a provider list in both Table II settings.

    ``models`` entries may be providers, raw models, or provider
    registry names (strings).  Execution goes through
    :class:`~repro.core.runner.ParallelRunner`: ``workers`` shards the
    (provider, setting) cells over an execution backend (``backend``
    picks serial / thread / process fan-out, defaulting to serial at
    ``workers=1`` and threads otherwise — see
    :mod:`repro.core.executor`), ``run_dir`` checkpoints completed
    cells so an interrupted sweep resumes instead of restarting, and
    ``spill_dir`` turns on the cross-process on-disk cache tier.  Pass
    a pre-configured ``runner`` for caches, retry policies or fault
    boundaries.

    Returns ``{provider name: {"with_choice": ..., "no_choice": ...}}``.
    """
    harness = harness or EvaluationHarness()
    if runner is None:
        runner = ParallelRunner(harness=harness, workers=workers,
                                run_dir=run_dir, resume=resume,
                                backend=backend, spill_dir=spill_dir)
    standard = build_chipvqa()
    challenge = build_chipvqa_challenge()
    units: List[WorkUnit] = []
    for model in models:
        units.append(WorkUnit(model=model, dataset=standard,
                              setting=WITH_CHOICE))
        units.append(WorkUnit(model=model, dataset=challenge,
                              setting=NO_CHOICE))
    outcome = runner.run(units).raise_on_failure()
    results: Dict[str, Dict[str, EvalResult]] = {}
    for unit in units:
        results.setdefault(unit.provider.name, {})[unit.setting] = \
            outcome.result_for(unit)
    return results
