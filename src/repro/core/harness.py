"""The evaluation harness: run models over datasets and judge responses.

:class:`EvaluationHarness` reproduces the paper's protocol (Section IV):
zero-shot prompting at temperature 0.1, MC options in the prompt for the
standard collection, the challenge collection with options removed, hybrid
auto/manual judging, and the resolution-study variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.benchmark import build_chipvqa, build_chipvqa_challenge
from repro.core.dataset import Dataset
from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category
from repro.judge.llm_judge import HybridJudge
from repro.models.vlm import NO_CHOICE, WITH_CHOICE, SimulatedVLM


class EvaluationHarness:
    """Zero-shot VQA evaluation of simulated VLMs."""

    def __init__(self, judge: Optional[HybridJudge] = None,
                 use_raster: bool = False):
        """``use_raster=True`` grounds perception in rendered pixels
        (slower); the default analytic mode is used for the big Table II
        sweeps and agrees with the raster mode on outcome plans at native
        resolution."""
        self.judge = judge or HybridJudge()
        self.use_raster = use_raster

    def evaluate(self, model: SimulatedVLM, dataset: Dataset,
                 setting: str, resolution_factor: int = 1) -> EvalResult:
        """Run one (model, dataset, setting) evaluation."""
        questions = list(dataset)
        answers = model.answer_all(questions, setting,
                                   resolution_factor,
                                   use_raster=self.use_raster)
        result = EvalResult(model_name=model.name,
                            dataset_name=dataset.name, setting=setting)
        for question, answer in zip(questions, answers):
            verdict = self.judge.judge(question, answer.text)
            result.add(EvalRecord(
                qid=question.qid,
                category=question.category,
                response=answer.text,
                correct=verdict.correct,
                judge_method=verdict.method,
                perception=answer.perception,
            ))
        return result

    # -- paper protocols -----------------------------------------------------

    def zero_shot_standard(self, model: SimulatedVLM) -> EvalResult:
        """Table II, left half: the standard collection with choices."""
        return self.evaluate(model, build_chipvqa(), WITH_CHOICE)

    def zero_shot_challenge(self, model: SimulatedVLM) -> EvalResult:
        """Table II, right half: all MC questions recast as short answer."""
        return self.evaluate(model, build_chipvqa_challenge(), NO_CHOICE)

    def resolution_study(self, model: SimulatedVLM,
                         category: Category = Category.DIGITAL,
                         factors: Sequence[int] = (1, 8, 16)) -> Dict[int, EvalResult]:
        """Section IV-B: one category evaluated at downsampled resolutions.

        Raster-grounded perception is forced on (the study is about image
        quality), regardless of the harness default.
        """
        subset = build_chipvqa().by_category(category)
        results: Dict[int, EvalResult] = {}
        raster_harness = EvaluationHarness(judge=self.judge, use_raster=True)
        for factor in factors:
            results[factor] = raster_harness.evaluate(
                model, subset, WITH_CHOICE, resolution_factor=factor)
        return results


def run_table2(models: Sequence[SimulatedVLM],
               harness: Optional[EvaluationHarness] = None
               ) -> Dict[str, Dict[str, EvalResult]]:
    """Evaluate a model list in both Table II settings.

    Returns ``{model name: {"with_choice": ..., "no_choice": ...}}``.
    """
    harness = harness or EvaluationHarness()
    results: Dict[str, Dict[str, EvalResult]] = {}
    for model in models:
        results[model.name] = {
            WITH_CHOICE: harness.zero_shot_standard(model),
            NO_CHOICE: harness.zero_shot_challenge(model),
        }
    return results
