"""ChipVQA benchmark assembly and structural validation.

:func:`build_chipvqa` gathers the five per-discipline generators into the
142-question standard collection and validates every Table I constraint
(category counts, MC/SA split, visual-type counts).  The "challenge
collection" — all multiple-choice questions replaced by short-answer ones —
is produced by :func:`build_chipvqa_challenge` via
:mod:`repro.core.transforms`.
"""

from __future__ import annotations

from typing import List

from repro.core import perfstats
from repro.core.dataset import Dataset
from repro.core.question import (
    CATEGORY_COUNTS,
    CATEGORY_MC_COUNTS,
    Category,
    Question,
    QuestionType,
    TOTAL_MULTIPLE_CHOICE,
    TOTAL_QUESTIONS,
    TOTAL_SHORT_ANSWER,
    VISUAL_TYPE_COUNTS,
)


def _all_questions() -> List[Question]:
    # imports are local so `repro.core` stays importable without the
    # discipline packages (and to avoid import cycles at package init).
    from repro.analog import generate_analog_questions
    from repro.arch import generate_architecture_questions
    from repro.digital import generate_digital_questions
    from repro.manufacturing import generate_manufacturing_questions
    from repro.physical import generate_physical_questions

    questions: List[Question] = []
    questions += generate_digital_questions()
    questions += generate_analog_questions()
    questions += generate_architecture_questions()
    questions += generate_manufacturing_questions()
    questions += generate_physical_questions()
    return questions


class BenchmarkIntegrityError(AssertionError):
    """The assembled benchmark violates a Table I constraint."""


def validate_chipvqa(dataset: Dataset) -> None:
    """Check every structural constraint Table I reports; raise on drift."""
    if len(dataset) != TOTAL_QUESTIONS:
        raise BenchmarkIntegrityError(
            f"expected {TOTAL_QUESTIONS} questions, got {len(dataset)}")
    type_counts = dataset.type_counts()
    if type_counts[QuestionType.MULTIPLE_CHOICE] != TOTAL_MULTIPLE_CHOICE:
        raise BenchmarkIntegrityError(
            f"expected {TOTAL_MULTIPLE_CHOICE} MC questions, got "
            f"{type_counts[QuestionType.MULTIPLE_CHOICE]}")
    if type_counts[QuestionType.SHORT_ANSWER] != TOTAL_SHORT_ANSWER:
        raise BenchmarkIntegrityError(
            f"expected {TOTAL_SHORT_ANSWER} SA questions, got "
            f"{type_counts[QuestionType.SHORT_ANSWER]}")
    for category, expected in CATEGORY_COUNTS.items():
        actual = dataset.category_counts()[category]
        if actual != expected:
            raise BenchmarkIntegrityError(
                f"{category.short}: expected {expected} questions, got "
                f"{actual}")
    for category, expected in CATEGORY_MC_COUNTS.items():
        actual = dataset.mc_counts_by_category()[category]
        if actual != expected:
            raise BenchmarkIntegrityError(
                f"{category.short}: expected {expected} MC questions, got "
                f"{actual}")
    visual_counts = dataset.visual_counts()
    for visual_type, expected in VISUAL_TYPE_COUNTS.items():
        actual = visual_counts.get(visual_type, 0)
        if actual != expected:
            raise BenchmarkIntegrityError(
                f"visual {visual_type.value!r}: expected {expected}, got "
                f"{actual}")


#: Content-frozen dataset cache.  Both collections are deterministic
#: pure builds (the generators are seeded), so one assembled ``Dataset``
#: per name serves every harness, runner thread and CLI invocation; a
#: duplicate build under a thread race produces an identical dataset and
#: is benign.  Counters are exported via :mod:`repro.core.perfstats`.
_DATASET_CACHE = perfstats.LruCache(capacity=8, name="dataset")


def build_chipvqa(validate: bool = True) -> Dataset:
    """The 142-question ChipVQA standard collection (cached)."""
    dataset = _DATASET_CACHE.get("chipvqa")
    if dataset is None:
        dataset = Dataset(_all_questions(), name="chipvqa")
        dataset.build_spec = ("chipvqa",)
        if validate:
            validate_chipvqa(dataset)
        _DATASET_CACHE.put("chipvqa", dataset)
    return dataset


def build_chipvqa_challenge() -> Dataset:
    """The challenge collection: every MC question recast as short-answer.

    Prompts are unchanged; the answer options are simply removed, exactly
    as Section IV-A of the paper describes.  Cached like
    :func:`build_chipvqa` — the MC->SA transform no longer re-runs per
    call.
    """
    from repro.core.transforms import to_short_answer

    dataset = _DATASET_CACHE.get("chipvqa-challenge")
    if dataset is None:
        standard = build_chipvqa()
        dataset = standard.map(to_short_answer, name="chipvqa-challenge")
        dataset.build_spec = ("chipvqa-challenge",)
        _DATASET_CACHE.put("chipvqa-challenge", dataset)
    return dataset
