"""ChipVQA benchmark assembly and structural validation.

:func:`build_chipvqa` gathers the five per-discipline generators into the
142-question standard collection and validates every Table I constraint
(category counts, MC/SA split, visual-type counts).  The "challenge
collection" — all multiple-choice questions replaced by short-answer ones —
is produced by :func:`build_chipvqa_challenge` via
:mod:`repro.core.transforms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional

from repro.core import perfstats
from repro.core.dataset import Dataset
from repro.core.question import (
    CATEGORY_COUNTS,
    CATEGORY_MC_COUNTS,
    Category,
    Question,
    QuestionType,
    TOTAL_MULTIPLE_CHOICE,
    TOTAL_QUESTIONS,
    TOTAL_SHORT_ANSWER,
    VISUAL_TYPE_COUNTS,
    VisualType,
)


def _all_questions() -> List[Question]:
    # imports are local so `repro.core` stays importable without the
    # discipline packages (and to avoid import cycles at package init).
    from repro.analog import generate_analog_questions
    from repro.arch import generate_architecture_questions
    from repro.digital import generate_digital_questions
    from repro.manufacturing import generate_manufacturing_questions
    from repro.physical import generate_physical_questions

    questions: List[Question] = []
    questions += generate_digital_questions()
    questions += generate_analog_questions()
    questions += generate_architecture_questions()
    questions += generate_manufacturing_questions()
    questions += generate_physical_questions()
    return questions


class BenchmarkIntegrityError(AssertionError):
    """The assembled benchmark violates a Table I constraint."""


@dataclass(frozen=True)
class BuildExpectations:
    """Structural constraints a built collection must satisfy.

    Validation is a property of the *build spec*, not of a single
    global constant: the canonical 142-question build checks the
    Table I counts verbatim (:meth:`table1`), while an ``n``-question
    scaled build checks the exact composition implied by the
    interleaved scaling scheme (:meth:`scaled`).
    """

    total: int
    type_counts: Mapping[QuestionType, int]
    category_counts: Mapping[Category, int]
    category_mc_counts: Mapping[Category, int]
    visual_type_counts: Optional[Mapping[VisualType, int]] = None

    @classmethod
    def table1(cls) -> "BuildExpectations":
        """The canonical Table I constraints (142 questions)."""
        return cls(
            total=TOTAL_QUESTIONS,
            type_counts={
                QuestionType.MULTIPLE_CHOICE: TOTAL_MULTIPLE_CHOICE,
                QuestionType.SHORT_ANSWER: TOTAL_SHORT_ANSWER,
            },
            category_counts=dict(CATEGORY_COUNTS),
            category_mc_counts=dict(CATEGORY_MC_COUNTS),
            visual_type_counts=dict(VISUAL_TYPE_COUNTS),
        )

    @classmethod
    def scaled(cls, total: int) -> "BuildExpectations":
        """Exact expectations of an ``n``-question scaled build."""
        from repro.core.databuild import expected_composition

        composition = expected_composition(total)
        return cls(
            total=composition.total,
            type_counts=composition.type_counts,
            category_counts=composition.category_counts,
            category_mc_counts=composition.category_mc_counts,
            visual_type_counts=composition.visual_type_counts,
        )


def validate_chipvqa(
    dataset: Dataset,
    expectations: Optional[BuildExpectations] = None,
) -> None:
    """Check a build's structural constraints; raise on drift.

    With no ``expectations`` the canonical Table I constraints apply
    (exactly the historical behaviour, including error messages).
    """
    spec = expectations or BuildExpectations.table1()
    if len(dataset) != spec.total:
        raise BenchmarkIntegrityError(
            f"expected {spec.total} questions, got {len(dataset)}")
    type_counts = dataset.type_counts()
    expected_mc = spec.type_counts.get(QuestionType.MULTIPLE_CHOICE, 0)
    if type_counts[QuestionType.MULTIPLE_CHOICE] != expected_mc:
        raise BenchmarkIntegrityError(
            f"expected {expected_mc} MC questions, got "
            f"{type_counts[QuestionType.MULTIPLE_CHOICE]}")
    expected_sa = spec.type_counts.get(QuestionType.SHORT_ANSWER, 0)
    if type_counts[QuestionType.SHORT_ANSWER] != expected_sa:
        raise BenchmarkIntegrityError(
            f"expected {expected_sa} SA questions, got "
            f"{type_counts[QuestionType.SHORT_ANSWER]}")
    for category, expected in spec.category_counts.items():
        actual = dataset.category_counts()[category]
        if actual != expected:
            raise BenchmarkIntegrityError(
                f"{category.short}: expected {expected} questions, got "
                f"{actual}")
    for category, expected in spec.category_mc_counts.items():
        actual = dataset.mc_counts_by_category()[category]
        if actual != expected:
            raise BenchmarkIntegrityError(
                f"{category.short}: expected {expected} MC questions, got "
                f"{actual}")
    if spec.visual_type_counts is not None:
        visual_counts = dataset.visual_counts()
        for visual_type, expected in spec.visual_type_counts.items():
            actual = visual_counts.get(visual_type, 0)
            if actual != expected:
                raise BenchmarkIntegrityError(
                    f"visual {visual_type.value!r}: expected {expected}, got "
                    f"{actual}")


#: Content-frozen dataset cache.  Both collections are deterministic
#: pure builds (the generators are seeded), so one assembled ``Dataset``
#: per name serves every harness, runner thread and CLI invocation; a
#: duplicate build under a thread race produces an identical dataset and
#: is benign.  Counters are exported via :mod:`repro.core.perfstats`.
_DATASET_CACHE = perfstats.LruCache(capacity=8, name="dataset")


def build_chipvqa(validate: bool = True) -> Dataset:
    """The 142-question ChipVQA standard collection (cached)."""
    dataset = _DATASET_CACHE.get("chipvqa")
    if dataset is None:
        dataset = Dataset(_all_questions(), name="chipvqa")
        dataset.build_spec = ("chipvqa",)
        if validate:
            validate_chipvqa(dataset)
        _DATASET_CACHE.put("chipvqa", dataset)
    return dataset


def build_chipvqa_challenge() -> Dataset:
    """The challenge collection: every MC question recast as short-answer.

    Prompts are unchanged; the answer options are simply removed, exactly
    as Section IV-A of the paper describes.  Cached like
    :func:`build_chipvqa` — the MC->SA transform no longer re-runs per
    call.
    """
    from repro.core.transforms import to_short_answer

    dataset = _DATASET_CACHE.get("chipvqa-challenge")
    if dataset is None:
        standard = build_chipvqa()
        dataset = standard.map(to_short_answer, name="chipvqa-challenge")
        dataset.build_spec = ("chipvqa-challenge",)
        _DATASET_CACHE.put("chipvqa-challenge", dataset)
    return dataset


def build_chipvqa_scaled(
    total: int,
    seed: int = 0,
    *,
    shard_size: Optional[int] = None,
    backend: Any = None,
    workers: int = 1,
    validate: bool = True,
    challenge: bool = False,
) -> Dataset:
    """An ``n``-question procedurally scaled ChipVQA collection.

    The global question sequence repeats the canonical collection in an
    interleaved order that preserves the Table I family proportions in
    every contiguous window; cycles beyond the first are seeded
    variants (fresh qids, permuted MC options, jittered difficulty)
    whose solver-derived gold answers are inherited unchanged.
    ``build_chipvqa_scaled(142, seed)`` therefore reproduces the seed
    dataset exactly, for every seed.

    Shards are built through the content-addressed build cache in
    :mod:`repro.core.databuild` — optionally in parallel across an
    executor ``backend`` — so warm rebuilds are near-free when a disk
    tier is attached (``--spill-dir`` /
    :func:`repro.core.perfstats.enable_spill`).
    """
    from repro.core.databuild import build_scaled

    return build_scaled(
        total, seed, shard_size=shard_size, backend=backend,
        workers=workers, validate=validate, challenge=challenge)
