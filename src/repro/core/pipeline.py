"""Bounded-lookahead prefetching for pipelined scaled sweeps.

:func:`repro.core.sweep.run_scaled_table2` historically ran its stages
strictly serialized: build shard *i*, evaluate it, commit it, build
shard *i+1*.  On a scaled sweep the build stage is pure CPU over the
procedural generator while evaluation waits on providers, so the two
overlap almost perfectly — a :class:`Prefetcher` runs a small builder
pool that keeps shards *i+1..i+k* building while shard *i* evaluates.

The design is a backpressured producer/consumer with **ordered
delivery**:

* a pool of builder threads claims shard indices in order and builds
  each through :func:`repro.core.databuild.build_shard` — i.e. through
  the content-addressed shard cache and its on-disk spill tier, the
  same tiers the executor-backend bulk builds
  (:func:`~repro.core.databuild.build_shards`,
  :func:`~repro.core.databuild.prime_build_cache`) populate, so a
  prefetched sweep shares warm shards with any prior run;
  ``builder="process"`` moves the build CPU itself into a small child
  pool (the threads become dispatchers), sidestepping the GIL when the
  evaluating consumer is itself CPU-hungry;
* a **lookahead budget** of ``k`` bounds the number of items that are
  building or built-but-unconsumed at any instant, so resident memory
  stays O(lookahead × shard) no matter how far the builders could run
  ahead (:attr:`Prefetcher.max_resident` exposes the high-water mark,
  pinned by the property tests);
* :meth:`Prefetcher.get` delivers item *i* when asked for item *i* —
  builders may *finish* out of order, but the consumer observes shard
  order, which is what keeps a prefetched sweep's accumulation order
  (and therefore its artifacts) byte-identical to the serial loop's.

Time the consumer spends blocked in :meth:`~Prefetcher.get` is
recorded as the ``build_wait`` stage in
:mod:`repro.core.perfstats` — on a well-overlapped sweep it collapses
to near zero while the serial loop charges the full build time there,
which is exactly the delta ``benchmarks/bench_sweep_pipeline.py``
measures.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core import databuild, perfstats
from repro.core.databuild import StreamingDataset
from repro.core.dataset import Dataset

__all__ = ["Prefetcher", "ShardPrefetcher"]

#: Builder pools a :class:`ShardPrefetcher` can run.
PREFETCH_BUILDERS = ("thread", "process")


def _cpu_cores() -> int:
    """Cores actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _builder_init(spill_root: Optional[str]) -> None:
    """Initializer for process-pool builders (runs once per child).

    Warms the canonical build (mirroring
    :func:`repro.core.databuild.build_shards`' pre-fork warm) and
    attaches the same on-disk shard tier the parent uses, so child
    builds write through to disk and later runs start warm.
    """
    databuild.canonical_cycle()
    if spill_root is not None:
        databuild.enable_build_cache(spill_root)


def _warm_question_digests(built: Dict[str, Dataset]) -> None:
    """Precompute every question's content digest while still inside
    the build stage.

    :func:`repro.core.runcache.question_digest` memoises on the
    (frozen) question instance, so warming here moves the
    serialise-and-hash the runner's cache keys need off the eval
    critical path and into the overlapped prefetch — part of handing
    the consumer a shard that is *ready*, not merely built.
    """
    from repro.core.runcache import question_digest

    for dataset in built.values():
        for question in dataset:
            question_digest(question)


def _build_shard_job(streams: Dict[str, StreamingDataset],
                     index: int) -> Dict[str, Dataset]:
    """Worker body for process builders (top-level, picklable).

    The streams are plain value objects (total/seed/shard size), so the
    job pickle is tiny; the built shard travels back as the result
    pickle — a few hundred kilobytes, far cheaper for the parent to
    unpickle than to generate.  Digests warmed here ride along in each
    question's instance state.
    """
    built = {setting: stream.shard(index)
             for setting, stream in streams.items()}
    _warm_question_digests(built)
    return built


class Prefetcher:
    """Bounded-lookahead background builder with in-order delivery.

    ``build(index)`` is called from ``workers`` daemon threads for
    ``index`` in ``0..count-1``; :meth:`get` blocks until the requested
    item is ready and hands it over.  At most ``lookahead`` items are
    ever *resident* (claimed-and-building plus built-but-unconsumed):
    builders park on the lookahead budget until the consumer drains an
    item, so a slow evaluator applies backpressure instead of letting
    builds pile up.

    Each index must be consumed exactly once (consuming releases its
    budget slot).  A build exception is captured and re-raised from the
    matching :meth:`get`, not on the builder thread.  Use as a context
    manager; :meth:`close` is idempotent and safe to call with builds
    still in flight (they finish and are discarded).
    """

    #: Longest a builder defers a claimed build waiting for a consumer
    #: idle window before proceeding anyway (liveness backstop).
    YIELD_MAX_WAIT_S = 0.05

    def __init__(self, build: Callable[[int], Any], count: int, *,
                 lookahead: int, workers: int = 1,
                 name: str = "prefetch",
                 yield_to_consumer: bool = False) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if count < 0:
            raise ValueError("count must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._build = build
        self.count = count
        self.lookahead = lookahead
        self.workers = min(workers, lookahead)
        self.name = name
        #: On one CPU, a builder that becomes runnable mid-compute
        #: timeslices ~50/50 against the consumer (the GIL forces a
        #: handoff every switch interval), displacing consumer wall
        #: time with build work that would have fit into the
        #: consumer's next transport wait anyway.  With this flag the
        #: builders instead start each build inside a consumer idle
        #: window (:func:`repro.core.perfstats.idle_window`) or once
        #: the consumer is blocked in :meth:`get` — phase-aligning
        #: build CPU with eval dead air.
        self.yield_to_consumer = yield_to_consumer
        self._starved = threading.Event()
        self._slots = threading.Semaphore(lookahead)
        self._cond = threading.Condition()
        self._ready: Dict[int, Any] = {}
        self._errors: Dict[int, BaseException] = {}
        self._next = 0
        self._resident = 0
        #: high-water mark of items building or awaiting consumption —
        #: the backpressure invariant is ``max_resident <= lookahead``
        self.max_resident = 0
        self._stopped = False
        self._threads: List[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Prefetcher":
        """Launch the builder pool (no-op if already started)."""
        if self._threads:
            return self
        for worker in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-{worker}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def close(self) -> None:
        """Stop claiming new work, wake everyone, join the pool."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            self._cond.notify_all()
        # unblock builders parked on the lookahead budget
        for _ in self._threads:
            self._slots.release()
        for thread in self._threads:
            thread.join(timeout=30.0)

    def __enter__(self) -> "Prefetcher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- producer side -------------------------------------------------------

    def _await_idle_window(self) -> None:
        """Park (briefly) until a consumer idle window opens.

        Only active under ``yield_to_consumer``.  Returns immediately
        when the consumer is blocked in :meth:`get` (it has nothing to
        yield to), and unconditionally after :attr:`YIELD_MAX_WAIT_S`
        so a consumer that never waits off-CPU cannot stall the pool.
        """
        if not self.yield_to_consumer:
            return
        idle = perfstats.idle_event()
        deadline = time.monotonic() + self.YIELD_MAX_WAIT_S
        while not (idle.is_set() or self._starved.is_set()
                   or self._stopped):
            if time.monotonic() >= deadline:
                return
            idle.wait(0.002)

    def _worker_loop(self) -> None:
        while True:
            self._slots.acquire()
            with self._cond:
                if self._stopped or self._next >= self.count:
                    self._slots.release()
                    return
                index = self._next
                self._next += 1
                self._resident += 1
                if self._resident > self.max_resident:
                    self.max_resident = self._resident
            self._await_idle_window()
            try:
                value = self._build(index)
            except BaseException as exc:  # delivered via get()
                with self._cond:
                    self._errors[index] = exc
                    self._cond.notify_all()
            else:
                with self._cond:
                    self._ready[index] = value
                    self._cond.notify_all()

    # -- consumer side -------------------------------------------------------

    def get(self, index: int) -> Any:
        """Item ``index``, blocking until its build completes.

        The blocked time is charged to the ``build_wait`` stage timer.
        Raises the build's exception if it failed, ``RuntimeError`` if
        the prefetcher was closed before the item could be produced.
        """
        if not self._threads:
            raise RuntimeError("prefetcher not started")
        exc: Optional[BaseException] = None
        with perfstats.stage("build_wait"):
            with self._cond:
                # while blocked here the consumer has no CPU phase for
                # builders to collide with — flag it so gated builders
                # (yield_to_consumer) start immediately
                self._starved.set()
                try:
                    while (index not in self._ready
                           and index not in self._errors):
                        if self._stopped:
                            raise RuntimeError(
                                f"prefetcher closed before item {index}")
                        self._cond.wait()
                finally:
                    self._starved.clear()
                self._resident -= 1
                if index in self._errors:
                    exc = self._errors.pop(index)
                else:
                    value = self._ready.pop(index)
        self._slots.release()
        if exc is not None:
            raise exc
        return value


class ShardPrefetcher(Prefetcher):
    """A :class:`Prefetcher` over one or more :class:`StreamingDataset`
    views of the same scaled build.

    Each item is ``{setting: Dataset}`` — shard ``index`` materialised
    under every setting's stream (the challenge stream is a per-shard
    map over the same base build, so the underlying generator work is
    shared through the shard cache).  All streams must agree on the
    shard plan.

    ``builder`` selects where the build CPU runs.  ``"thread"``
    (default) builds on the pool threads — zero setup cost, but on
    CPython the GIL serialises builder CPU against the evaluating
    consumer, capping the overlap.  ``"process"`` dispatches each build
    to a small :class:`~concurrent.futures.ProcessPoolExecutor` (the
    pool threads become dispatchers blocking on futures), buying true
    build/eval parallelism for a per-sweep pool spawn plus a
    result-unpickle per shard; ``spill_dir`` is forwarded so child
    builds write through the same on-disk shard tier.  Ordering,
    backpressure and error delivery are identical in both modes.
    """

    def __init__(self, streams: Mapping[str, StreamingDataset], *,
                 lookahead: int, workers: int = 1,
                 builder: str = "thread",
                 spill_dir: Optional[Any] = None,
                 yield_to_consumer: Optional[bool] = None) -> None:
        if not streams:
            raise ValueError("no streams to prefetch")
        if builder not in PREFETCH_BUILDERS:
            raise ValueError(
                f"unknown prefetch builder {builder!r}; "
                f"choose from {PREFETCH_BUILDERS}")
        self.streams = dict(streams)
        self.builder = builder
        self.spill_dir = str(spill_dir) if spill_dir is not None else None
        self._pool: Optional[ProcessPoolExecutor] = None
        counts = {stream.num_shards for stream in self.streams.values()}
        if len(counts) != 1:
            raise ValueError(
                f"streams disagree on shard count: {sorted(counts)}")
        if yield_to_consumer is None:
            # thread builders on one core contend with the consumer for
            # the GIL; phase-align them with consumer idle windows.
            # Process builders (or real parallelism) don't need it.
            yield_to_consumer = builder == "thread" and _cpu_cores() == 1
        if yield_to_consumer:
            # more gated builders just queue behind the same idle
            # windows; one keeps the phasing crisp
            workers = 1
        super().__init__(self._build_shard, counts.pop(),
                         lookahead=lookahead, workers=workers,
                         name="shard-prefetch",
                         yield_to_consumer=yield_to_consumer)

    def start(self) -> "ShardPrefetcher":
        if (self.builder == "process" and self._pool is None
                and not self._threads):
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_builder_init,
                initargs=(self.spill_dir,))
        super().start()
        return self

    def close(self) -> None:
        super().close()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _build_shard(self, index: int) -> Dict[str, Dataset]:
        if self._pool is not None:
            # the dispatcher thread blocks GIL-free on the future while
            # the child process does the build CPU
            built = self._pool.submit(
                _build_shard_job, self.streams, index).result()
            # mirror the process path of databuild.build_shards: re-enter
            # the returned base shard into the parent's cache (warm for
            # resume / later windows), then charge residency against the
            # parent-side streams, where the shard now actually lives
            for setting, dataset in built.items():
                stream = self.streams[setting]
                if not stream.challenge:
                    key = stream.shard_specs()[index].cache_key()
                    if key not in databuild._SHARD_CACHE:
                        # memory tier only: the child wrote the disk
                        # entry already, re-encoding it here would put
                        # the offloaded build CPU right back on the
                        # consumer's core
                        databuild._SHARD_CACHE._store(
                            key, tuple(dataset))
                stream._observe(len(dataset))
            return built
        built = {setting: stream.shard(index)
                 for setting, stream in self.streams.items()}
        _warm_question_digests(built)
        return built
