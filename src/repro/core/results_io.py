"""Persistence for evaluation results: JSONL records + run manifests.

An :class:`~repro.core.metrics.EvalResult` round-trips to a JSONL file
whose first line is a manifest (model, dataset, setting) and whose
remaining lines are per-question records — the artifact format a
benchmark leaderboard would ingest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category

FORMAT_VERSION = 1


def dumps(result: EvalResult, telemetry: bool = True) -> str:
    """Serialise a result to JSONL text.

    ``telemetry=False`` omits the (timing-dependent) telemetry block so
    callers that need byte-stable artifacts — the parallel runner's
    checkpoints — can write a canonical form.
    """
    manifest = {
        "format_version": FORMAT_VERSION,
        "model": result.model_name,
        "dataset": result.dataset_name,
        "setting": result.setting,
        "resolution_factor": result.resolution_factor,
        "records": len(result.records),
    }
    if telemetry and result.telemetry is not None:
        manifest["telemetry"] = {
            key: round(float(value), 6)
            for key, value in sorted(result.telemetry.items())
        }
    lines = [json.dumps(manifest, sort_keys=True)]
    for record in result.records:
        lines.append(json.dumps({
            "qid": record.qid,
            "category": record.category.value,
            "response": record.response,
            "correct": record.correct,
            "judge_method": record.judge_method,
            "perception": round(record.perception, 6),
        }, sort_keys=True))
    return "\n".join(lines)


def loads(text: str) -> EvalResult:
    """Inverse of :func:`dumps`.

    Unknown manifest and record keys are ignored (forward
    compatibility): a file written by a newer minor revision with extra
    fields still loads, as long as the format version matches.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty results file")
    manifest = json.loads(lines[0])
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format {manifest.get('format_version')}")
    result = EvalResult(
        model_name=manifest["model"],
        dataset_name=manifest["dataset"],
        setting=manifest["setting"],
        resolution_factor=manifest.get("resolution_factor", 1),
        telemetry=manifest.get("telemetry"),
    )
    for line in lines[1:]:
        data = json.loads(line)
        result.add(EvalRecord(
            qid=data["qid"],
            category=Category(data["category"]),
            response=data["response"],
            correct=data["correct"],
            judge_method=data["judge_method"],
            perception=data["perception"],
        ))
    if len(result.records) != manifest["records"]:
        raise ValueError(
            f"manifest promises {manifest['records']} records, file has "
            f"{len(result.records)} (truncated?)")
    return result


def save(result: EvalResult, path: "Path | str") -> Path:
    """Write a result to ``path`` as JSONL."""
    path = Path(path)
    path.write_text(dumps(result) + "\n", encoding="utf-8")
    return path


def load(path: "Path | str") -> EvalResult:
    """Read a result previously written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))


def save_run(results: Dict[str, Dict[str, EvalResult]],
             out_dir: "Path | str") -> List[Path]:
    """Persist a full run_table2-style result tree, one file per cell."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for model_name, settings in results.items():
        for setting, result in settings.items():
            written.append(
                save(result, out_dir / f"{model_name}__{setting}.jsonl"))
    return written


def load_run(out_dir: "Path | str") -> Dict[str, Dict[str, EvalResult]]:
    """Inverse of :func:`save_run` over a directory of result files."""
    out_dir = Path(out_dir)
    results: Dict[str, Dict[str, EvalResult]] = {}
    for path in sorted(out_dir.glob("*__*.jsonl")):
        model_name, _, setting = path.stem.partition("__")
        results.setdefault(model_name, {})[setting] = load(path)
    if not results:
        raise ValueError(f"no result files in {out_dir}")
    return results
