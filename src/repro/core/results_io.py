"""Persistence for evaluation results: JSONL records + run manifests.

An :class:`~repro.core.metrics.EvalResult` round-trips to a JSONL file
whose first line is a manifest (model, dataset, setting) and whose
remaining lines are per-question records — the artifact format a
benchmark leaderboard would ingest.

Format version 2 adds **integrity checksums**: the manifest line
carries the SHA-256 of the record lines, writers are atomic
(write-to-temp + rename, so a kill cannot leave a half-written file),
and :func:`loads` rejects files whose bytes no longer match their
checksum — a torn write or bit flip surfaces as a
:class:`ValueError` instead of silently skewing a resumed sweep.
Version-1 files (no checksum) still load.  :func:`verify_file` /
:func:`verify_run` audit artifacts without deserialising them into a
run, backing the ``repro verify-run`` CLI subcommand.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category

FORMAT_VERSION = 2
#: Versions :func:`loads` accepts; v1 predates checksums.
SUPPORTED_VERSIONS = (1, 2)
#: The sweep coordinator's commit log inside a run directory.  It is a
#: JSONL file but *not* a checkpoint: :func:`verify_run` audits it via
#: the coordinator's hash-chain verifier instead of :func:`verify_file`.
COMMIT_LOG_NAME = "commits.jsonl"


def atomic_write_text(path: "Path | str", text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    The rename is atomic on POSIX, so readers observe either the old
    file or the complete new one — never a torn intermediate.  Shared
    by :func:`save`, the runner's checkpoints and its manifest writer.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)
    return path


def write_summary(path: "Path | str", payload: dict) -> Path:
    """Write a checksummed JSON summary artifact atomically.

    Used for run-level aggregates that do not fit the per-record JSONL
    format — e.g. the multi-sample pass@k summaries of a scaled sweep.
    The envelope carries a ``format_version`` and the SHA-256 of the
    canonical payload dump, so a torn write or edit is detectable; the
    ``.json`` suffix keeps these artifacts invisible to
    :func:`verify_run`'s ``*.jsonl`` glob.
    """
    body = json.dumps(payload, sort_keys=True)
    envelope = {
        "format_version": FORMAT_VERSION,
        "sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
        "payload": payload,
    }
    return atomic_write_text(
        path, json.dumps(envelope, sort_keys=True, indent=2) + "\n")


def read_summary(path: "Path | str") -> dict:
    """Load and integrity-check a :func:`write_summary` artifact."""
    envelope = json.loads(Path(path).read_text(encoding="utf-8"))
    body = json.dumps(envelope["payload"], sort_keys=True)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if digest != envelope.get("sha256"):
        raise ValueError(f"summary checksum mismatch in {path}")
    return envelope["payload"]


def _records_checksum(record_lines: List[str]) -> str:
    """SHA-256 over the serialised record lines (joined with ``\\n``)."""
    payload = "\n".join(record_lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def dumps(result: EvalResult, telemetry: bool = True) -> str:
    """Serialise a result to JSONL text.

    ``telemetry=False`` omits the (timing-dependent) telemetry block so
    callers that need byte-stable artifacts — the parallel runner's
    checkpoints — can write a canonical form.  The manifest line
    embeds a ``sha256`` over the record lines in both modes.
    """
    record_lines = [
        json.dumps({
            "qid": record.qid,
            "category": record.category.value,
            "response": record.response,
            "correct": record.correct,
            "judge_method": record.judge_method,
            "perception": round(record.perception, 6),
        }, sort_keys=True)
        for record in result.records
    ]
    manifest = {
        "format_version": FORMAT_VERSION,
        "model": result.model_name,
        "dataset": result.dataset_name,
        "setting": result.setting,
        "resolution_factor": result.resolution_factor,
        "records": len(result.records),
        "sha256": _records_checksum(record_lines),
    }
    if telemetry and result.telemetry is not None:
        manifest["telemetry"] = {
            key: round(float(value), 6)
            for key, value in sorted(result.telemetry.items())
        }
    return "\n".join([json.dumps(manifest, sort_keys=True)] + record_lines)


def loads(text: str) -> EvalResult:
    """Inverse of :func:`dumps`.

    Unknown manifest and record keys are ignored (forward
    compatibility): a file written by a newer minor revision with extra
    fields still loads, as long as the format version is supported.
    Truncation (record-count mismatch) and corruption (checksum
    mismatch) both raise :class:`ValueError`; files declaring version 1
    have no checksum and skip that check.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty results file")
    manifest = json.loads(lines[0])
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported results format {version}")
    result = EvalResult(
        model_name=manifest["model"],
        dataset_name=manifest["dataset"],
        setting=manifest["setting"],
        resolution_factor=manifest.get("resolution_factor", 1),
        telemetry=manifest.get("telemetry"),
    )
    for line in lines[1:]:
        data = json.loads(line)
        result.add(EvalRecord(
            qid=data["qid"],
            category=Category(data["category"]),
            response=data["response"],
            correct=data["correct"],
            judge_method=data["judge_method"],
            perception=data["perception"],
        ))
    if len(result.records) != manifest["records"]:
        raise ValueError(
            f"manifest promises {manifest['records']} records, file has "
            f"{len(result.records)} (truncated?)")
    expected = manifest.get("sha256")
    if expected is None:
        if version >= 2:
            raise ValueError("format v2 file is missing its sha256 checksum")
    else:
        actual = _records_checksum(lines[1:])
        if actual != expected:
            raise ValueError(
                f"checksum mismatch: manifest promises sha256 {expected}, "
                f"records hash to {actual} (corrupt file?)")
    return result


def save(result: EvalResult, path: "Path | str") -> Path:
    """Write a result to ``path`` as JSONL, atomically.

    Uses :func:`atomic_write_text` (temp file + rename) so a process
    kill mid-save cannot leave a half-written artifact behind.
    """
    return atomic_write_text(path, dumps(result) + "\n")


def load(path: "Path | str") -> EvalResult:
    """Read a result previously written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))


def save_run(results: Dict[str, Dict[str, EvalResult]],
             out_dir: "Path | str") -> List[Path]:
    """Persist a full run_table2-style result tree, one file per cell."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for model_name, settings in results.items():
        for setting, result in settings.items():
            written.append(
                save(result, out_dir / f"{model_name}__{setting}.jsonl"))
    return written


def load_run(out_dir: "Path | str") -> Dict[str, Dict[str, EvalResult]]:
    """Inverse of :func:`save_run` over a directory of result files.

    The stem is split on the *last* ``__`` (settings never contain
    ``__``; model names may), so ``llava__next__no_choice.jsonl`` maps
    back to model ``llava__next``.
    """
    out_dir = Path(out_dir)
    results: Dict[str, Dict[str, EvalResult]] = {}
    for path in sorted(out_dir.glob("*__*.jsonl")):
        model_name, _, setting = path.stem.rpartition("__")
        results.setdefault(model_name, {})[setting] = load(path)
    if not results:
        raise ValueError(f"no result files in {out_dir}")
    return results


# -- integrity audit ----------------------------------------------------------

@dataclass(frozen=True)
class FileAudit:
    """Verdict for one artifact in a run directory."""

    name: str
    status: str             # ok | legacy | corrupt | missing
    records: int = 0
    detail: str = ""


@dataclass
class RunAudit:
    """Aggregate verdict of :func:`verify_run` over a run directory."""

    run_dir: str
    files: List[FileAudit] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no artifact is corrupt or missing."""
        return all(f.status in ("ok", "legacy") for f in self.files)

    def counts(self) -> Dict[str, int]:
        """Number of audited files per status."""
        totals: Dict[str, int] = {}
        for entry in self.files:
            totals[entry.status] = totals.get(entry.status, 0) + 1
        return totals


def verify_file(path: "Path | str") -> FileAudit:
    """Audit one JSONL artifact: parse, record count, checksum.

    ``ok`` means the file loads and its checksum verifies; ``legacy``
    means a version-1 file with no checksum to verify; ``corrupt``
    covers truncation, checksum mismatch and parse failures.
    """
    path = Path(path)
    if not path.exists():
        return FileAudit(name=path.name, status="missing",
                         detail="file not found")
    text = path.read_text(encoding="utf-8")
    try:
        result = loads(text)
    except (ValueError, KeyError, TypeError) as exc:
        return FileAudit(name=path.name, status="corrupt",
                         detail=f"{type(exc).__name__}: {exc}")
    head = json.loads(text.splitlines()[0])
    status = "ok" if head.get("sha256") else "legacy"
    detail = "" if status == "ok" else "v1 file, no checksum"
    return FileAudit(name=path.name, status=status,
                     records=len(result.records), detail=detail)


def _verify_commit_log(path: Path) -> FileAudit:
    """Audit a coordinator commit log through its sha256 hash chain."""
    # imported lazily: coordinator imports this module at load time
    from repro.core.coordinator import audit_commit_log

    valid, total, detail = audit_commit_log(path)
    if valid == total:
        return FileAudit(name=path.name, status="ok", records=valid)
    return FileAudit(
        name=path.name, status="corrupt", records=valid,
        detail=f"chain broken at entry {valid + 1}/{total}: {detail}")


def verify_run(run_dir: "Path | str",
               manifest_name: str = "manifest.json") -> RunAudit:
    """Audit every artifact in a run directory.

    Checks each ``*.jsonl`` checkpoint (parse + record count +
    checksum) and, when a runner ``manifest.json`` is present, that
    every checkpoint it references exists on disk.  A coordinator
    commit log (:data:`COMMIT_LOG_NAME`) is audited through its hash
    chain rather than the checkpoint parser.  Stray ``*.tmp`` files
    (evidence of an interrupted atomic write) are ignored — the rename
    discipline means the final artifacts are still whole.
    """
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise ValueError(f"not a run directory: {run_dir}")
    audit = RunAudit(run_dir=str(run_dir))
    seen = set()
    for path in sorted(run_dir.glob("*.jsonl")):
        seen.add(path.name)
        if path.name == COMMIT_LOG_NAME:
            audit.files.append(_verify_commit_log(path))
        else:
            audit.files.append(verify_file(path))
    manifest_path = run_dir / manifest_name
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            audit.files.append(FileAudit(
                name=manifest_name, status="corrupt",
                detail=f"unparseable manifest: {exc}"))
            return audit
        for unit in manifest.get("units", []):
            name = unit.get("path")
            status = unit.get("status")
            if not name or name in seen:
                continue
            if status in ("completed", "resumed"):
                audit.files.append(FileAudit(
                    name=name, status="missing",
                    detail=f"manifest lists unit as {status} but the "
                           f"checkpoint is absent"))
    return audit
