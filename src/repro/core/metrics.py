"""Evaluation records and pass@1 metrics with per-category breakdowns."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.question import Category


@dataclass(frozen=True)
class EvalRecord:
    """One judged model response."""

    qid: str
    category: Category
    response: str
    correct: bool
    judge_method: str = "auto"
    perception: float = 1.0


@dataclass
class EvalResult:
    """All records of one (model, dataset, setting) evaluation run.

    ``resolution_factor`` pins the Section IV-B axis the run used, and
    ``telemetry`` optionally carries runner-emitted measurements
    (wall time, retry counts, cache hits — see ``docs/RUNNER.md``).
    Both round-trip through :mod:`repro.core.results_io`.
    """

    model_name: str
    dataset_name: str
    setting: str
    records: List[EvalRecord] = field(default_factory=list)
    resolution_factor: int = 1
    telemetry: Optional[Dict[str, float]] = None

    def add(self, record: EvalRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- pass@1 ---------------------------------------------------------------

    def pass_at_1(self) -> float:
        """Overall pass@1 (fraction of correct first attempts)."""
        if not self.records:
            raise ValueError("no records")
        return sum(r.correct for r in self.records) / len(self.records)

    def pass_at_1_by_category(self) -> Dict[Category, float]:
        buckets: Dict[Category, List[bool]] = {}
        for record in self.records:
            buckets.setdefault(record.category, []).append(record.correct)
        return {
            category: sum(flags) / len(flags)
            for category, flags in buckets.items()
        }

    def correct_count(self) -> int:
        return sum(r.correct for r in self.records)

    def category_counts(self) -> Dict[Category, Tuple[int, int]]:
        """(correct, total) per category."""
        buckets: Dict[Category, List[bool]] = {}
        for record in self.records:
            buckets.setdefault(record.category, []).append(record.correct)
        return {
            category: (sum(flags), len(flags))
            for category, flags in buckets.items()
        }

    def row(self, categories: Sequence[Category]) -> List[float]:
        """Per-category pass@1 followed by the overall rate (a Table II row)."""
        by_category = self.pass_at_1_by_category()
        values = [by_category.get(c, 0.0) for c in categories]
        values.append(self.pass_at_1())
        return values

    def manual_check_count(self) -> int:
        return sum(1 for r in self.records if r.judge_method == "manual")

    def quarantined_count(self) -> int:
        """Questions salvaged by quarantine (``judge_method ==
        "quarantined"``); always counted incorrect — see
        :mod:`repro.core.resilience`."""
        return sum(1 for r in self.records
                   if r.judge_method == "quarantined")


def pass_at_k(n: int, c: int, k: int) -> float:
    """The unbiased pass@k estimator of Chen et al. (2021).

    Given ``n`` independent samples of which ``c`` were correct, the
    probability that at least one of ``k`` uniformly drawn samples is
    correct is ``1 - C(n-c, k) / C(n, k)``, computed exactly with
    integer binomials (no floating-point product drift).  ``k`` is
    clamped to ``n`` — with fewer samples than ``k`` the estimate
    degrades to pass@n, the standard convention for ragged sweeps.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    if not 0 <= c <= n:
        raise ValueError(f"correct count {c} outside [0, {n}]")
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n)
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - math.comb(n - c, k) / math.comb(n, k)


@dataclass
class MultiSampleResult:
    """All samples of one (model, dataset, setting) multi-sample sweep.

    ``samples[s]`` holds sample ``s``'s records for the same question
    sequence (every sample evaluates every question; the runner's
    sample-salted providers re-roll the per-question jitter while
    keeping the model's calibration).  Aggregates the per-question
    correct counts into unbiased :func:`pass_at_k` and majority-vote
    ``consensus@k`` scores.
    """

    model_name: str
    dataset_name: str
    setting: str
    samples: List[EvalResult] = field(default_factory=list)

    def add_sample(self, result: EvalResult) -> None:
        """Append one sample's :class:`EvalResult`."""
        self.samples.append(result)

    @property
    def sample_count(self) -> int:
        """Number of samples collected."""
        return len(self.samples)

    @property
    def question_count(self) -> int:
        """Number of questions per sample."""
        return len(self.samples[0].records) if self.samples else 0

    def _check(self) -> None:
        if not self.samples:
            raise ValueError("no samples")
        counts = {len(s.records) for s in self.samples}
        if len(counts) != 1:
            raise ValueError(
                f"ragged samples: record counts {sorted(counts)}")

    def _per_question(self) -> List[Tuple[EvalRecord, int]]:
        """(first-sample record, correct-count) per question position."""
        self._check()
        pairs = []
        for i, record in enumerate(self.samples[0].records):
            correct = sum(s.records[i].correct for s in self.samples)
            pairs.append((record, correct))
        return pairs

    def pass_at_k(self, k: int) -> float:
        """Mean unbiased pass@k over questions (n = sample count)."""
        pairs = self._per_question()
        n = self.sample_count
        return sum(pass_at_k(n, c, k) for _, c in pairs) / len(pairs)

    def pass_at_k_by_category(self, k: int) -> Dict[Category, float]:
        """Per-category mean unbiased pass@k."""
        buckets: Dict[Category, List[float]] = {}
        n = self.sample_count
        for record, c in self._per_question():
            buckets.setdefault(record.category, []).append(
                pass_at_k(n, c, k))
        return {category: sum(scores) / len(scores)
                for category, scores in buckets.items()}

    def consensus_at_k(self, k: Optional[int] = None) -> float:
        """Majority-vote accuracy over the first ``k`` samples.

        Per question, the most frequent response string across samples
        wins (ties break toward the earliest-appearing response); the
        question scores correct iff a sample giving the winning
        response was judged correct.  ``k=None`` uses every sample.
        """
        self._check()
        k = self.sample_count if k is None else min(k, self.sample_count)
        if k < 1:
            raise ValueError("k must be >= 1")
        used = self.samples[:k]
        total = len(used[0].records)
        score = 0
        for i in range(total):
            votes: Dict[str, int] = {}
            verdicts: Dict[str, bool] = {}
            for sample in used:
                record = sample.records[i]
                votes[record.response] = votes.get(record.response, 0) + 1
                verdicts.setdefault(record.response, record.correct)
            winner = max(votes, key=lambda r: (votes[r],
                                               -list(votes).index(r)))
            score += verdicts[winner]
        return score / total

    def as_dict(self, ks: Sequence[int] = (1, 5)) -> Dict[str, object]:
        """JSON-serialisable summary (results_io artifacts, manifests)."""
        usable = [k for k in ks if k >= 1]
        return {
            "model": self.model_name,
            "dataset": self.dataset_name,
            "setting": self.setting,
            "samples": self.sample_count,
            "questions": self.question_count,
            "pass_at_k": {str(k): self.pass_at_k(k) for k in usable},
            "consensus_at_k": {
                str(k): self.consensus_at_k(k) for k in usable},
        }


def bootstrap_ci(flags: Sequence[bool], confidence: float = 0.95,
                 resamples: int = 2000, seed: int = 7) -> Tuple[float, float]:
    """Bootstrap confidence interval of a pass rate."""
    if not flags:
        raise ValueError("no observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(flags)
    rates = sorted(
        sum(rng.choice(flags) for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * resamples)
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return rates[low_index], rates[high_index]


def mc_sa_gap(with_choice: EvalResult, no_choice: EvalResult) -> float:
    """The 'MC-as-RAG' gap: pass@1 drop when options are removed."""
    return with_choice.pass_at_1() - no_choice.pass_at_1()


def agreement(a: Sequence[bool], b: Sequence[bool]) -> float:
    """Fraction of positions where two verdict vectors agree."""
    if len(a) != len(b) or not a:
        raise ValueError("vectors must be equal-length and non-empty")
    return sum(x == y for x, y in zip(a, b)) / len(a)


def spearman_rank_correlation(x: Sequence[float],
                              y: Sequence[float]) -> float:
    """Spearman rho — used by the backbone-scaling ablation."""
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two equal-length sequences of >= 2 points")

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while (j + 1 < len(order)
                   and values[order[j + 1]] == values[order[i]]):
                j += 1
            mean_rank = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                result[order[k]] = mean_rank
            i = j + 1
        return result

    rank_x = ranks(x)
    rank_y = ranks(y)
    mean_x = sum(rank_x) / len(rank_x)
    mean_y = sum(rank_y) / len(rank_y)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    var_x = sum((a - mean_x) ** 2 for a in rank_x)
    var_y = sum((b - mean_y) ** 2 for b in rank_y)
    if var_x == 0 or var_y == 0:
        raise ValueError("constant sequence has no rank correlation")
    return cov / math.sqrt(var_x * var_y)
