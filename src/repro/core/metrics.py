"""Evaluation records and pass@1 metrics with per-category breakdowns."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.question import Category, Question


@dataclass(frozen=True)
class EvalRecord:
    """One judged model response."""

    qid: str
    category: Category
    response: str
    correct: bool
    judge_method: str = "auto"
    perception: float = 1.0


@dataclass
class EvalResult:
    """All records of one (model, dataset, setting) evaluation run.

    ``resolution_factor`` pins the Section IV-B axis the run used, and
    ``telemetry`` optionally carries runner-emitted measurements
    (wall time, retry counts, cache hits — see ``docs/RUNNER.md``).
    Both round-trip through :mod:`repro.core.results_io`.
    """

    model_name: str
    dataset_name: str
    setting: str
    records: List[EvalRecord] = field(default_factory=list)
    resolution_factor: int = 1
    telemetry: Optional[Dict[str, float]] = None

    def add(self, record: EvalRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- pass@1 ---------------------------------------------------------------

    def pass_at_1(self) -> float:
        """Overall pass@1 (fraction of correct first attempts)."""
        if not self.records:
            raise ValueError("no records")
        return sum(r.correct for r in self.records) / len(self.records)

    def pass_at_1_by_category(self) -> Dict[Category, float]:
        buckets: Dict[Category, List[bool]] = {}
        for record in self.records:
            buckets.setdefault(record.category, []).append(record.correct)
        return {
            category: sum(flags) / len(flags)
            for category, flags in buckets.items()
        }

    def correct_count(self) -> int:
        return sum(r.correct for r in self.records)

    def category_counts(self) -> Dict[Category, Tuple[int, int]]:
        """(correct, total) per category."""
        buckets: Dict[Category, List[bool]] = {}
        for record in self.records:
            buckets.setdefault(record.category, []).append(record.correct)
        return {
            category: (sum(flags), len(flags))
            for category, flags in buckets.items()
        }

    def row(self, categories: Sequence[Category]) -> List[float]:
        """Per-category pass@1 followed by the overall rate (a Table II row)."""
        by_category = self.pass_at_1_by_category()
        values = [by_category.get(c, 0.0) for c in categories]
        values.append(self.pass_at_1())
        return values

    def manual_check_count(self) -> int:
        return sum(1 for r in self.records if r.judge_method == "manual")

    def quarantined_count(self) -> int:
        """Questions salvaged by quarantine (``judge_method ==
        "quarantined"``); always counted incorrect — see
        :mod:`repro.core.resilience`."""
        return sum(1 for r in self.records
                   if r.judge_method == "quarantined")


def bootstrap_ci(flags: Sequence[bool], confidence: float = 0.95,
                 resamples: int = 2000, seed: int = 7) -> Tuple[float, float]:
    """Bootstrap confidence interval of a pass rate."""
    if not flags:
        raise ValueError("no observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(flags)
    rates = sorted(
        sum(rng.choice(flags) for _ in range(n)) / n
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * resamples)
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return rates[low_index], rates[high_index]


def mc_sa_gap(with_choice: EvalResult, no_choice: EvalResult) -> float:
    """The 'MC-as-RAG' gap: pass@1 drop when options are removed."""
    return with_choice.pass_at_1() - no_choice.pass_at_1()


def agreement(a: Sequence[bool], b: Sequence[bool]) -> float:
    """Fraction of positions where two verdict vectors agree."""
    if len(a) != len(b) or not a:
        raise ValueError("vectors must be equal-length and non-empty")
    return sum(x == y for x, y in zip(a, b)) / len(a)


def spearman_rank_correlation(x: Sequence[float],
                              y: Sequence[float]) -> float:
    """Spearman rho — used by the backbone-scaling ablation."""
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two equal-length sequences of >= 2 points")

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while (j + 1 < len(order)
                   and values[order[j + 1]] == values[order[i]]):
                j += 1
            mean_rank = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                result[order[k]] = mean_rank
            i = j + 1
        return result

    rank_x = ranks(x)
    rank_y = ranks(y)
    mean_x = sum(rank_x) / len(rank_x)
    mean_y = sum(rank_y) / len(rank_y)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    var_x = sum((a - mean_x) ** 2 for a in rank_x)
    var_y = sum((b - mean_y) ** 2 for b in rank_y)
    if var_x == 0 or var_y == 0:
        raise ValueError("constant sequence has no rank correlation")
    return cov / math.sqrt(var_x * var_y)
