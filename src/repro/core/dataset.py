"""Dataset container: an ordered, queryable collection of questions.

:class:`Dataset` wraps a sequence of :class:`~repro.core.question.Question`
objects and provides the filtering, grouping, serialisation and statistics
operations the benchmark harness and the Table I reproduction rely on.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.question import (
    Category,
    Question,
    QuestionType,
    VisualType,
)
from repro.tokenizer import default_tokenizer


@dataclass(frozen=True)
class TokenStats:
    """Summary statistics of prompt token lengths (Table I, bottom block)."""

    mean: float
    std: float
    minimum: int
    p25: float
    p50: float
    p75: float
    maximum: int

    def as_rows(self) -> List[tuple]:
        return [
            ("mean", round(self.mean, 2)),
            ("std", round(self.std, 2)),
            ("min", self.minimum),
            ("25%", self.p25),
            ("50%", self.p50),
            ("75%", self.p75),
            ("max", self.maximum),
        ]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (matches numpy's default)."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = q / 100.0 * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_values[low])
    frac = rank - low
    return float(sorted_values[low] * (1 - frac) + sorted_values[high] * frac)


class Dataset:
    """An immutable ordered collection of ChipVQA questions."""

    def __init__(self, questions: Iterable[Question], name: str = "chipvqa"):
        self._questions: List[Question] = list(questions)
        self.name = name
        #: Picklable recipe for rebuilding this dataset in another process
        #: (``None`` for ad-hoc datasets): a root builder name followed by
        #: ``("by_category", value)`` / ``("by_type", value)`` operations.
        #: Set by the benchmark builders and propagated by the derivation
        #: methods below; resolved by ``repro.core.executor``.
        self.build_spec: Optional[Tuple[str, ...]] = None
        seen = set()
        for question in self._questions:
            if question.qid in seen:
                raise ValueError(f"duplicate question id: {question.qid}")
            seen.add(question.qid)
        self._by_qid = {q.qid: q for q in self._questions}

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._questions)

    def __iter__(self) -> Iterator[Question]:
        return iter(self._questions)

    def __getitem__(self, index: int) -> Question:
        return self._questions[index]

    def __contains__(self, qid: object) -> bool:
        return qid in self._by_qid

    def get(self, qid: str) -> Question:
        """Look a question up by id; raises ``KeyError`` if absent."""
        return self._by_qid[qid]

    @property
    def questions(self) -> Sequence[Question]:
        return tuple(self._questions)

    # -- filtering / grouping ------------------------------------------------

    def filter(
        self, predicate: Callable[[Question], bool], name: Optional[str] = None
    ) -> "Dataset":
        """A new dataset containing questions for which ``predicate`` holds."""
        return Dataset(
            (q for q in self._questions if predicate(q)),
            name=name or self.name,
        )

    def by_category(self, category: Category) -> "Dataset":
        subset = self.filter(
            lambda q: q.category is category,
            name=f"{self.name}/{category.short.lower()}",
        )
        if self.build_spec is not None:
            subset.build_spec = self.build_spec + (
                "by_category", category.value)
        return subset

    def by_type(self, question_type: QuestionType) -> "Dataset":
        subset = self.filter(
            lambda q: q.question_type is question_type,
            name=f"{self.name}/{question_type.value}",
        )
        if self.build_spec is not None:
            subset.build_spec = self.build_spec + (
                "by_type", question_type.value)
        return subset

    def split_by_category(self) -> Dict[Category, "Dataset"]:
        return {c: self.by_category(c) for c in Category}

    def map(
        self, transform: Callable[[Question], Question], name: Optional[str] = None
    ) -> "Dataset":
        """A new dataset with ``transform`` applied to every question."""
        return Dataset(
            (transform(q) for q in self._questions), name=name or self.name
        )

    # -- statistics (Table I) -------------------------------------------------

    def category_counts(self) -> Dict[Category, int]:
        counts = Counter(q.category for q in self._questions)
        return {c: counts.get(c, 0) for c in Category}

    def type_counts(self) -> Dict[QuestionType, int]:
        counts = Counter(q.question_type for q in self._questions)
        return {t: counts.get(t, 0) for t in QuestionType}

    def visual_counts(self) -> Dict[VisualType, int]:
        """Counts of visual components by type (questions may have >1)."""
        counts: Counter = Counter()
        for question in self._questions:
            for visual in question.all_visuals:
                counts[visual.visual_type] += 1
        return {v: counts[v] for v in VisualType if counts[v]}

    def visual_component_total(self) -> int:
        return sum(len(q.all_visuals) for q in self._questions)

    def mc_counts_by_category(self) -> Dict[Category, int]:
        counts: Counter = Counter(
            q.category
            for q in self._questions
            if q.question_type is QuestionType.MULTIPLE_CHOICE
        )
        return {c: counts.get(c, 0) for c in Category}

    def prompt_token_lengths(self) -> List[int]:
        tokenizer = default_tokenizer()
        return [tokenizer.count(q.prompt) for q in self._questions]

    def token_stats(self) -> TokenStats:
        lengths = sorted(self.prompt_token_lengths())
        if not lengths:
            raise ValueError("token stats of an empty dataset")
        n = len(lengths)
        mean = sum(lengths) / n
        variance = sum((x - mean) ** 2 for x in lengths) / (n - 1) if n > 1 else 0.0
        return TokenStats(
            mean=mean,
            std=math.sqrt(variance),
            minimum=lengths[0],
            p25=_percentile(lengths, 25),
            p50=_percentile(lengths, 50),
            p75=_percentile(lengths, 75),
            maximum=lengths[-1],
        )

    def difficulty_histogram(self, bins: int = 5) -> List[int]:
        """Counts of questions per equal-width difficulty bin over [0, 1]."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        histogram = [0] * bins
        for question in self._questions:
            index = min(int(question.difficulty * bins), bins - 1)
            histogram[index] += 1
        return histogram

    # -- serialisation ---------------------------------------------------------

    def content_digest(self) -> str:
        """Hex sha256 of the question contents, independent of order.

        The canonical JSON line of every question (``Question.to_json``
        is key-sorted) is hashed in sorted-line order, so two datasets
        built shard-by-shard in different orders — or by different
        executor backends — digest identically iff they contain the
        same questions.
        """
        hasher = hashlib.sha256()
        for line in sorted(q.to_json() for q in self._questions):
            hasher.update(line.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def to_jsonl(self) -> str:
        return "\n".join(q.to_json() for q in self._questions)

    @classmethod
    def from_jsonl(cls, text: str, name: str = "chipvqa") -> "Dataset":
        questions = [
            Question.from_json(line)
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(questions, name=name)

    def save(self, path: "Path | str") -> None:
        Path(path).write_text(self.to_jsonl() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: "Path | str", name: str = "chipvqa") -> "Dataset":
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"), name=name)
