"""Pluggable execution backends: serial, thread and process fan-out.

The evaluation stack is CPU-bound pure Python/numpy — rendering,
legibility, perception, quota-IRT planning — so a thread pool is capped
by the GIL no matter how many workers it has.  This module gives
:class:`~repro.core.runner.ParallelRunner` a pluggable execution layer:

* :class:`SerialBackend` — in-process, in-order (the ``workers=1`` path);
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` sharing one address
  space (the historical ``workers=N`` path; right for latency-bound
  remote providers);
* :class:`ProcessBackend` — a ``ProcessPoolExecutor`` fanning units out
  across cores for true multicore scaling on CPU-bound sweeps;
* :class:`AsyncBackend` — a single asyncio event loop holding many
  provider calls in flight at once: the API-bound regime (remote
  endpoints), where concurrency is bounded by the provider's request
  budget rather than cores.  Built on the async provider seam
  (:mod:`repro.models.providers`): sync providers adapt via
  ``as_async_provider``, and an ``AsyncCallScheduler`` adds
  per-provider token-bucket pacing and hedged requests.

Processes cannot share live objects, so the process backend ships each
unit as a picklable :class:`UnitSpec` — a provider *registry name* (or,
failing that, a pickled provider), a dataset *build spec* (see
:attr:`repro.core.dataset.Dataset.build_spec`), the setting and the
resolution factor.  The worker rebuilds the unit, evaluates it through
the runner's own retry/quarantine machinery, and returns the serialized
checkpoint payload — the parent writes it verbatim, so process-backend
artifacts are byte-identical to the serial and thread paths (pinned by
``tests/test_executor.py``).

Worker failure is part of the contract: a dead worker process
(``BrokenProcessPool``) rebuilds the pool and re-runs the interrupted
units one at a time so the culprit is identified without collateral
damage; a unit whose solo worker keeps dying is recorded ``failed``.  A
wedged worker — one that blows past the parent-side hard deadline — is
killed and its unit recorded ``timed_out``.  See ``docs/RUNNER.md``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import pickle
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Awaitable,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
    Tuple,
    Union,
)

from repro.core import perfstats, results_io
from repro.core.faults import FaultBoundary, ModelCallError
from repro.core.resilience import (
    Deadline,
    DeadlineExceeded,
    QuarantinePolicy,
)
from repro.models.providers import (
    AsyncCallScheduler,
    HedgePolicy,
    create_provider,
    provider_names,
)

if TYPE_CHECKING:  # runtime imports are deferred: runner imports us
    from repro.core.runner import RetryPolicy, WorkUnit

#: Names accepted by :func:`create_backend` (and ``--backend``).
BACKEND_NAMES: Tuple[str, ...] = ("serial", "thread", "process", "async")


class ExecutorConfigError(ValueError):
    """A unit or option set cannot be shipped to the chosen backend."""


# -- picklable unit specs ----------------------------------------------------


@dataclass(frozen=True)
class UnitSpec:
    """A picklable recipe for rebuilding one :class:`WorkUnit`.

    The provider travels as a registry name whenever the default
    registry rebuilds an identically-fingerprinted provider; otherwise
    as a pickle (wrapped providers such as a remote stub with a
    non-default failure rate are not registry-reconstructible).  The
    dataset travels as its build spec.  Both forms are resolved in the
    worker process by :meth:`build_unit`.
    """

    provider_name: Optional[str]
    dataset_spec: Tuple[str, ...]
    setting: str
    resolution_factor: int = 1
    use_raster: Optional[bool] = None
    provider_pickle: Optional[bytes] = None

    def build_unit(self) -> "WorkUnit":
        """Materialise the work unit in the current process."""
        from repro.core.runner import WorkUnit

        if self.provider_pickle is not None:
            provider: Any = pickle.loads(self.provider_pickle)
        elif self.provider_name is not None:
            provider = create_provider(self.provider_name)
        else:  # pragma: no cover - spec_for never builds this
            raise ExecutorConfigError("unit spec carries no provider")
        return WorkUnit(
            model=provider,
            dataset=dataset_from_spec(self.dataset_spec),
            setting=self.setting,
            resolution_factor=self.resolution_factor,
            use_raster=self.use_raster,
        )


def spec_for(unit: "WorkUnit") -> UnitSpec:
    """Derive the picklable :class:`UnitSpec` for a live work unit.

    Raises :class:`ExecutorConfigError` when the unit cannot cross a
    process boundary: its dataset has no build spec, or its provider is
    neither registry-resolvable (same name *and* configuration
    fingerprint) nor picklable.
    """
    dataset_spec = getattr(unit.dataset, "build_spec", None)
    if dataset_spec is None:
        raise ExecutorConfigError(
            f"unit {unit.unit_id!r}: dataset {unit.dataset.name!r} has no "
            f"build_spec; register a builder via "
            f"register_dataset_builder() or use the thread backend")
    provider = unit.provider
    provider_name: Optional[str] = None
    provider_pickle: Optional[bytes] = None
    if provider.name in provider_names():
        rebuilt = create_provider(provider.name)
        if rebuilt.config_fingerprint() == provider.config_fingerprint():
            provider_name = provider.name
    if provider_name is None:
        try:
            provider_pickle = pickle.dumps(provider)
        except Exception as exc:
            raise ExecutorConfigError(
                f"unit {unit.unit_id!r}: provider {provider.name!r} is "
                f"neither registry-resolvable nor picklable ({exc}); "
                f"register a provider factory or use the thread backend"
            ) from exc
    return UnitSpec(
        provider_name=provider_name,
        dataset_spec=tuple(dataset_spec),
        setting=unit.setting,
        resolution_factor=unit.resolution_factor,
        use_raster=unit.use_raster,
        provider_pickle=provider_pickle,
    )


#: Extra dataset-spec roots registered at runtime (tests, extensions).
#: With the default ``fork`` start method, worker processes inherit
#: parent registrations automatically.
_DATASET_BUILDERS: Dict[str, Callable[[], Any]] = {}


def register_dataset_builder(name: str,
                             factory: Callable[[], Any]) -> None:
    """Register ``factory`` as the builder for dataset-spec root ``name``."""
    _DATASET_BUILDERS[name] = factory


def dataset_from_spec(spec: Sequence[str]) -> Any:
    """Rebuild a dataset from its build spec (root builder + ops)."""
    if not spec:
        raise ExecutorConfigError("empty dataset spec")
    root, ops = spec[0], list(spec[1:])
    factory = _DATASET_BUILDERS.get(root)
    if factory is None:
        from repro.core.benchmark import (
            build_chipvqa,
            build_chipvqa_challenge,
        )

        builtin: Dict[str, Callable[[], Any]] = {
            "chipvqa": build_chipvqa,
            "chipvqa-challenge": build_chipvqa_challenge,
        }
        factory = builtin.get(root)
    if factory is None and root.startswith("chipvqa-scaled:"):
        from repro.core.databuild import dataset_from_scaled_root

        def factory(root: str = root) -> Any:
            return dataset_from_scaled_root(root)
    if factory is None:
        raise ExecutorConfigError(f"unknown dataset builder {root!r}")
    dataset = factory()
    from repro.core.question import Category, QuestionType

    while ops:
        if len(ops) < 2:
            raise ExecutorConfigError(f"malformed dataset spec {tuple(spec)!r}")
        op, value = ops[0], ops[1]
        ops = ops[2:]
        if op == "by_category":
            dataset = dataset.by_category(Category(value))
        elif op == "by_type":
            dataset = dataset.by_type(QuestionType(value))
        else:
            raise ExecutorConfigError(f"unknown dataset op {op!r}")
    return dataset


# -- worker-side execution ---------------------------------------------------


@dataclass
class WorkerOptions:
    """Everything a worker process needs besides the unit spec.

    Must pickle cleanly — :func:`ensure_picklable` enforces this in the
    parent before any fork/submit, so misconfiguration fails fast with
    a clear error instead of a cryptic one from the pool machinery.
    """

    harness: Any = None
    retry: "Optional[RetryPolicy]" = None
    fault_boundary: Optional[FaultBoundary] = None
    quarantine: Optional[QuarantinePolicy] = None
    deadline_s: Optional[float] = None
    spill_root: Optional[str] = None
    #: when set, the worker touches this file at every fault-boundary
    #: crossing (a cross-process heartbeat for the sweep coordinator)
    heartbeat_file: Optional[str] = None


@dataclass
class WorkerResult:
    """What one worker evaluation produced, in picklable form.

    ``payload`` is the canonical serialized checkpoint
    (``results_io.dumps(result, telemetry=False)``), written verbatim by
    the parent — the property that keeps process-backend artifacts
    byte-identical to the thread path.  ``perf_delta`` is the worker's
    perception-substrate counter movement, folded back into
    :attr:`~repro.core.runner.RunStats.perf_caches` by the parent.
    """

    unit_id: str
    status: str  # completed | failed | timed_out
    payload: Optional[str] = None
    error: Optional[str] = None
    attempts: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    quarantined: int = 0
    wall_time_s: float = 0.0
    worker_respawns: int = 0  # filled in by the parent
    perf_delta: Dict[str, Dict[str, int]] = field(default_factory=dict)


def process_worker(spec: UnitSpec, options: WorkerOptions) -> WorkerResult:
    """Evaluate one unit spec in a worker process.

    Top-level (not a closure) so it is picklable by every start method.
    Rebuilds the unit, runs it through the runner's own
    retry/cache/quarantine path — the single code path that guarantees
    byte-identity with in-process execution — and reports the canonical
    checkpoint payload plus telemetry.  Model faults and cooperative
    deadline overruns are converted to statuses here; anything else
    propagates to the parent like an in-process exception would.
    """
    from repro.core.runner import ParallelRunner, UnitStats

    if options.spill_root is not None:
        perfstats.enable_spill(options.spill_root)
    boundary = options.fault_boundary
    if options.heartbeat_file is not None:
        from repro.core.faults import CompositeBoundary, FileHeartbeatBoundary

        # heartbeat first: the node must register as alive even on
        # crossings where a composed fault injector raises
        heartbeat = FileHeartbeatBoundary(options.heartbeat_file)
        boundary = (CompositeBoundary(heartbeat, boundary)
                    if boundary is not None else heartbeat)
    perf_before = perfstats.snapshot()
    start = time.perf_counter()
    unit = spec.build_unit()
    unit_stats = UnitStats(unit_id=unit.unit_id)
    runner = ParallelRunner(
        harness=options.harness,
        workers=1,
        retry=options.retry,
        fault_boundary=boundary,
        quarantine=options.quarantine,
    )
    deadline = (Deadline(options.deadline_s)
                if options.deadline_s is not None else None)
    payload: Optional[str] = None
    error: Optional[str] = None
    status = "completed"
    try:
        eval_start = time.perf_counter_ns()
        result = runner.evaluate_unit(unit, unit_stats, deadline)
        perfstats.record_stage(
            "eval", time.perf_counter_ns() - eval_start)
        # the worker-side serialize-once site: these bytes cross the
        # process boundary and are checkpointed/streamed verbatim by
        # the parent (stage time rides home in perf_delta)
        with perfstats.stage("serialize"):
            payload = results_io.dumps(result, telemetry=False) + "\n"
    except DeadlineExceeded as exc:
        status, error = "timed_out", f"{type(exc).__name__}: {exc}"
    except ModelCallError as exc:
        status, error = "failed", f"{type(exc).__name__}: {exc}"
    return WorkerResult(
        unit_id=unit.unit_id,
        status=status,
        payload=payload,
        error=error,
        attempts=unit_stats.attempts,
        retries=unit_stats.retries,
        cache_hits=unit_stats.cache_hits,
        cache_misses=unit_stats.cache_misses,
        quarantined=unit_stats.quarantined,
        wall_time_s=time.perf_counter() - start,
        perf_delta=perfstats.delta(perf_before, perfstats.snapshot()),
    )


def ensure_picklable(items: Sequence[Tuple[str, UnitSpec]],
                     options: WorkerOptions) -> None:
    """Fail fast in the parent on work that cannot cross a process.

    ``ProcessPoolExecutor`` pickles lazily on a feeder thread, which
    turns an unpicklable harness or fault boundary into an opaque
    broken-pool error; probing here yields an actionable one instead.
    """
    try:
        pickle.dumps(options)
    except Exception as exc:
        raise ExecutorConfigError(
            f"process backend requires picklable worker options (harness, "
            f"retry policy, fault boundary, quarantine): {exc}") from exc
    for unit_id, spec in items:
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise ExecutorConfigError(
                f"unit {unit_id!r}: spec is not picklable: {exc}") from exc


# -- backends ----------------------------------------------------------------


class SerialBackend:
    """In-process, in-order execution — the ``workers=1`` path."""

    name = "serial"

    def map_units(self, units: Sequence[Any],
                  fn: Callable[[Any], Any]) -> List[Any]:
        """Apply ``fn`` to every unit, in order, on the calling thread."""
        return [fn(unit) for unit in units]


class ThreadBackend:
    """Fan units out over a ``ThreadPoolExecutor`` (shared memory).

    Right for latency-bound work — remote providers, I/O — where
    workers overlap waiting; the GIL caps speedup on CPU-bound sweeps
    (use :class:`ProcessBackend` there).
    """

    name = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def map_units(self, units: Sequence[Any],
                  fn: Callable[[Any], Any]) -> List[Any]:
        """Apply ``fn`` to every unit across the thread pool.

        Results come back in submission order; the first exception
        propagates after the pool drains, exactly like the historical
        inline pool in :meth:`ParallelRunner.run`.
        """
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(fn, unit) for unit in units]
            return [future.result() for future in futures]


def default_mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` when available: workers inherit warm caches and
    runtime registrations (providers, dataset builders); fall back to
    the platform default elsewhere.  Shared by :class:`ProcessBackend`
    and the sweep coordinator's process-mode nodes."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


#: Backwards-compatible private alias.
_default_context = default_mp_context


class ProcessBackend:
    """Fan unit specs out over a ``ProcessPoolExecutor``.

    Submission is windowed — at most ``workers`` units in flight — so
    circuit-breaker decisions are made against current state, exactly
    like thread-pool execution order would.

    Failure handling (see the module docstring):

    * ``BrokenProcessPool`` — the pool is rebuilt and every interrupted
      unit re-run *one at a time*; a pool that breaks with a single
      unit in flight convicts that unit, and ``max_respawns`` solo
      deaths mark it ``failed`` without poisoning its neighbours.
    * hard deadline — with ``deadline_s`` set, a worker is given
      ``deadline_s * hard_deadline_factor + hard_deadline_grace``
      seconds of wall time (the cooperative in-worker deadline should
      fire long before this); past that the unit is recorded
      ``timed_out``, the wedged pool is killed and innocent in-flight
      units are resubmitted.
    """

    name = "process"

    def __init__(
        self,
        workers: int,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        max_respawns: int = 2,
        poll_interval: float = 0.05,
        hard_deadline_factor: float = 2.0,
        hard_deadline_grace: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.max_respawns = max_respawns
        self.poll_interval = poll_interval
        self.hard_deadline_factor = hard_deadline_factor
        self.hard_deadline_grace = hard_deadline_grace
        self._mp_context = mp_context or _default_context()

    def hard_deadline(self, deadline_s: Optional[float]) -> Optional[float]:
        """Parent-side wall bound per worker (``None`` = unbounded)."""
        if deadline_s is None:
            return None
        return (deadline_s * self.hard_deadline_factor
                + self.hard_deadline_grace)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=self._mp_context)

    def map_units(self, units: Sequence[Any],
                  fn: Callable[[Any], Any]) -> List[Any]:
        """Apply a top-level picklable ``fn`` across the process pool.

        The generic fan-out path (dataset shard builds and other pure
        CPU-bound jobs) — no retry/deadline machinery, results in
        submission order, first exception propagates.  Evaluation units
        go through :meth:`run_units`, which layers respawn and
        hard-deadline handling on top of the pool.
        """
        with self._new_pool() as pool:
            return list(pool.map(fn, units, chunksize=1))

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcefully terminate a pool whose worker is wedged."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.kill()
        pool.shutdown(wait=False, cancel_futures=True)

    def run_units(
        self,
        items: Sequence[Tuple[str, UnitSpec]],
        options: WorkerOptions,
        should_submit: Callable[[str], bool],
        on_result: Callable[[str, WorkerResult], None],
    ) -> None:
        """Drive ``items`` (unit-id, spec pairs) to completion.

        ``should_submit`` is consulted immediately before each (re-)
        submission — returning ``False`` skips the unit (the runner
        uses this for circuit-breaker fast-fails).  ``on_result``
        receives exactly one terminal :class:`WorkerResult` per
        non-skipped unit.  Unexpected worker exceptions (anything that
        is not a model fault) propagate to the caller, matching
        in-process semantics.
        """
        ensure_picklable(items, options)
        pending: Deque[Tuple[str, UnitSpec]] = deque(items)
        solo: Deque[Tuple[str, UnitSpec]] = deque()
        deaths: Dict[str, int] = {}
        hard = self.hard_deadline(options.deadline_s)
        in_flight: Dict[Future, Tuple[str, UnitSpec, float]] = {}
        pool = self._new_pool()
        try:
            while pending or solo or in_flight:
                if solo:
                    # crash recovery: run interrupted units one at a
                    # time so a repeat death convicts exactly one unit
                    if not in_flight:
                        unit_id, spec = solo.popleft()
                        if should_submit(unit_id):
                            in_flight[pool.submit(
                                process_worker, spec, options)] = (
                                    unit_id, spec, time.monotonic())
                        else:
                            continue
                else:
                    while pending and len(in_flight) < self.workers:
                        unit_id, spec = pending.popleft()
                        if not should_submit(unit_id):
                            continue
                        in_flight[pool.submit(
                            process_worker, spec, options)] = (
                                unit_id, spec, time.monotonic())
                if not in_flight:
                    continue
                done, _ = wait(set(in_flight), timeout=self.poll_interval,
                               return_when=FIRST_COMPLETED)
                interrupted: List[Tuple[str, UnitSpec]] = []
                broken = False
                flight_size = len(in_flight)
                for future in done:
                    unit_id, spec, _started = in_flight.pop(future)
                    exc = future.exception()
                    if exc is None:
                        outcome = future.result()
                        outcome.worker_respawns = deaths.get(unit_id, 0)
                        on_result(unit_id, outcome)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                        interrupted.append((unit_id, spec))
                    else:
                        raise exc
                if broken:
                    # the pool is unusable; everything still in flight
                    # died with it
                    interrupted.extend(
                        (uid, uspec)
                        for uid, uspec, _ in in_flight.values())
                    in_flight.clear()
                    if flight_size == 1:
                        uid = interrupted[0][0]
                        deaths[uid] = deaths.get(uid, 0) + 1
                        if deaths[uid] > self.max_respawns:
                            on_result(uid, WorkerResult(
                                unit_id=uid,
                                status="failed",
                                error=(f"WorkerCrash: worker process died "
                                       f"{deaths[uid]} time(s) running "
                                       f"this unit"),
                                worker_respawns=deaths[uid]))
                            interrupted = []
                    solo.extend(interrupted)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._new_pool()
                    continue
                if hard is not None and in_flight:
                    now = time.monotonic()
                    expired = [
                        (future, entry)
                        for future, entry in in_flight.items()
                        if now - entry[2] > hard
                    ]
                    if expired:
                        for future, (unit_id, spec, _started) in expired:
                            del in_flight[future]
                            on_result(unit_id, WorkerResult(
                                unit_id=unit_id,
                                status="timed_out",
                                error=(f"DeadlineExceeded: no result within "
                                       f"the {hard:.3f}s hard deadline; "
                                       f"worker process killed"),
                                worker_respawns=deaths.get(unit_id, 0)))
                        # only killing the pool frees a wedged worker;
                        # innocents restart with a fresh clock
                        survivors = [
                            (uid, uspec)
                            for uid, uspec, _ in in_flight.values()]
                        in_flight.clear()
                        self._kill_pool(pool)
                        pool = self._new_pool()
                        pending.extendleft(reversed(survivors))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


class AsyncBackend:
    """Drive units as coroutines on one asyncio event loop.

    The backend for the API-bound regime: evaluation work per unit is
    tiny next to a remote call's round-trip, so one event loop holding
    ``workers`` units in flight matches a thread pool's throughput at a
    fraction of the footprint — and, unlike threads, ``workers`` may
    far exceed the core count (concurrency is bounded by the endpoint's
    request budget, not the GIL).

    The backend owns the scheduling policy the async provider seam
    offers: ``rate_limit_per_s``/``rate_burst`` build per-provider
    token buckets the scheduler *awaits* before dispatching (client-
    side pacing), and ``hedge_after_s``/``max_hedges`` duplicate
    straggling calls, first success wins.  :meth:`make_scheduler`
    builds one fresh :class:`AsyncCallScheduler` per run so telemetry
    never bleeds across runs.

    Determinism is unchanged: the runner's cache/cohort/judge pipeline
    is the same code path the sync backends share, so artifacts stay
    byte-identical (pinned by the cross-backend golden-digest test).
    """

    name = "async"

    def __init__(
        self,
        workers: int,
        rate_limit_per_s: Optional[float] = None,
        rate_burst: Optional[int] = None,
        hedge_after_s: Optional[float] = None,
        max_hedges: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if rate_limit_per_s is not None and rate_limit_per_s <= 0:
            raise ValueError("rate_limit_per_s must be > 0")
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ValueError("hedge_after_s must be >= 0")
        if max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")
        self.workers = workers
        self.rate_limit_per_s = rate_limit_per_s
        self.rate_burst = rate_burst
        self.hedge_after_s = hedge_after_s
        self.max_hedges = max_hedges
        #: scheduler of the most recent run (telemetry for summaries)
        self.last_scheduler: Optional[AsyncCallScheduler] = None

    def make_scheduler(self) -> AsyncCallScheduler:
        """A fresh per-run scheduler carrying this backend's policy."""
        hedge = (HedgePolicy(self.hedge_after_s, self.max_hedges)
                 if self.hedge_after_s is not None else None)
        scheduler = AsyncCallScheduler(
            rate_limit_per_s=self.rate_limit_per_s,
            rate_burst=self.rate_burst,
            hedge=hedge)
        self.last_scheduler = scheduler
        return scheduler

    def map_units(self, units: Sequence[Any],
                  fn: Callable[[Any], Awaitable[Any]]) -> List[Any]:
        """Run ``fn`` (an async callable) over every unit on one loop.

        At most ``workers`` units run concurrently (semaphore-bounded);
        results come back in submission order.  An unexpected exception
        (anything the runner's evaluation path did not absorb — e.g. an
        injected crash from the chaos harness) propagates to the
        caller and *stops the world*: sibling tasks are cancelled
        before they can keep completing (and checkpointing) past the
        failure, matching what a process death leaves behind.  The
        ``sleep(0)`` after admission pins a suspension point at the
        start of every unit, so cancellation can land even on units
        whose evaluation never otherwise yields (zero simulated
        latency).
        """
        async def main() -> List[Any]:
            semaphore = asyncio.Semaphore(self.workers)

            async def guarded(unit: Any) -> Any:
                async with semaphore:
                    await asyncio.sleep(0)
                    return await fn(unit)

            tasks = [asyncio.ensure_future(guarded(unit))
                     for unit in units]
            try:
                return list(await asyncio.gather(*tasks))
            except BaseException:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                raise

        return asyncio.run(main())


#: Any of the four concrete backends.
ExecutionBackend = Union[SerialBackend, ThreadBackend, ProcessBackend,
                         AsyncBackend]


def create_backend(name: str, workers: int) -> ExecutionBackend:
    """Build the backend called ``name`` (one of :data:`BACKEND_NAMES`)."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    if name == "process":
        return ProcessBackend(workers)
    if name == "async":
        return AsyncBackend(workers)
    raise ExecutorConfigError(
        f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")


def resolve_backend(backend: "Optional[str | ExecutionBackend]",
                    workers: int) -> ExecutionBackend:
    """Coerce a backend argument to an instance.

    ``None`` preserves the historical default — serial at ``workers=1``,
    threads otherwise; a string goes through :func:`create_backend`;
    an instance passes through untouched.
    """
    if backend is None:
        return SerialBackend() if workers == 1 else ThreadBackend(workers)
    if isinstance(backend, str):
        return create_backend(backend, workers)
    return backend
