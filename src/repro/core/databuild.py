"""Sharded, parallel, content-addressed procedural dataset builds.

ROADMAP item 3: every ChipVQA question family computes its gold answer
from a real solver, so the benchmark scales procedurally beyond the
canonical 142 questions.  This module is the build substrate:

* **Scaling scheme** — the global question sequence is an infinite
  repetition of the canonical collection in an *interleaved* order that
  spreads the five disciplines evenly (:func:`interleaved_order`), so
  any contiguous shard window preserves the Table I family proportions
  within rounding.  Global index ``g`` maps to cycle ``g // 142`` and
  canonical slot ``g % 142``; cycle 0 reproduces the canonical
  questions verbatim (``build_chipvqa_scaled(142, seed)`` is a fixed
  point of the seed dataset for every seed), and cycles >= 1 derive
  seeded *variants* (:func:`derive_variant`): fresh qid, permuted MC
  options with the gold re-indexed, jittered difficulty.  Gold answers
  are inherited from the solver-derived canonical question, so validity
  is preserved by construction.

* **Shards** — :class:`ShardSpec` names one contiguous window of the
  global sequence; :func:`build_shard` materialises it.  Shards are
  built in parallel across the executor backends
  (:func:`build_shards`), and each shard's output lives in a
  **content-addressed build cache**: a :class:`~repro.core.perfstats.
  LruCache` named ``dataset_build`` whose spill codec serialises whole
  shards (questions *including* ``render_spec``), so the standard
  :class:`~repro.core.perfstats.SpillStore` machinery provides the
  on-disk tier.  Keys are ``(schema, generator fingerprint, seed,
  start, stop)`` tuples — the store addresses entries by the sha256 of
  the key, warm rebuilds never re-run a generator, and hit/miss/spill
  counters flow into ``RunStats.perf_caches`` like every other
  perception-substrate cache.

* **Streaming** — :class:`StreamingDataset` exposes a scaled build
  shard-by-shard so a 100k-question sweep through
  :class:`~repro.core.runner.ParallelRunner` holds O(shard) questions
  in memory instead of O(n) (see :mod:`repro.core.sweep`).

See ``docs/DATASET_FORMAT.md`` for the build-cache key schema and the
scaling cookbook, and ``benchmarks/bench_dataset_scaleout.py`` for the
pinned cold/warm and parallel-build performance shapes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import threading
from collections import Counter
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core import perfstats
from repro.core.dataset import Dataset
from repro.core.question import (
    Category,
    Question,
    QuestionType,
    TOTAL_QUESTIONS,
    VisualContent,
    VisualType,
)

#: Version of the shard wire format and of the scaling scheme itself.
#: Bump when the interleaving, variant derivation or serialisation
#: changes — stale build-cache entries then miss instead of lying.
SHARD_SCHEMA_VERSION = 1

#: Default shard size: one canonical cycle per shard.
DEFAULT_SHARD_SIZE = TOTAL_QUESTIONS

#: Registry name of the shard build cache (``perfstats`` counters and
#: the on-disk spill tier both key off this).
BUILD_CACHE_NAME = "dataset_build"


class ScaleConfigError(ValueError):
    """A scaled-build parameter set is invalid."""


# -- canonical cycle ---------------------------------------------------------


_CYCLE_LOCK = threading.Lock()
_CYCLE: Optional[Tuple[Question, ...]] = None


def canonical_cycle() -> Tuple[Question, ...]:
    """The 142 canonical questions in interleaved (scaled) order.

    Computed once per process from :func:`~repro.core.benchmark.
    build_chipvqa`; the canonical build is itself cached, so this is
    cheap after first use.
    """
    global _CYCLE
    with _CYCLE_LOCK:
        if _CYCLE is None:
            from repro.core.benchmark import build_chipvqa

            canonical = tuple(build_chipvqa())
            order = interleaved_order(tuple(q.category for q in canonical))
            _CYCLE = tuple(canonical[i] for i in order)
        return _CYCLE


def reset_canonical_cycle() -> None:
    """Forget the process-cached canonical cycle.

    Benchmarks emulate a cold process with this (paired with
    :func:`repro.core.perfstats.reset`): the next build re-runs the
    canonical solvers instead of reusing the in-process cycle.
    """
    global _CYCLE
    with _CYCLE_LOCK:
        _CYCLE = None


def interleaved_order(categories: Sequence[Category]) -> Tuple[int, ...]:
    """A permutation of ``range(len(categories))`` spreading families evenly.

    The canonical collection is family-blocked (all Digital questions,
    then all Analog, ...), so a contiguous window of it would be
    single-discipline.  Each question is instead keyed by its
    fractional position within its family — the ``j``-th of ``k``
    members sorts at ``(j + 0.5) / k`` — and the whole collection is
    ordered by that key.  Family members then sit at near-arithmetic
    global positions, so every window of length ``L`` contains
    ``L * k / total`` members of each family within rounding.
    """
    totals = Counter(categories)
    seen: Dict[Category, int] = {}
    keyed: List[Tuple[float, int]] = []
    for index, category in enumerate(categories):
        j = seen.get(category, 0)
        seen[category] = j + 1
        keyed.append(((j + 0.5) / totals[category], index))
    keyed.sort()
    return tuple(index for _, index in keyed)


# -- generator fingerprints --------------------------------------------------


def generator_versions() -> Dict[str, str]:
    """Per-family generator version strings (see each ``questions.py``)."""
    from repro.analog import questions as analog_questions
    from repro.arch import questions as arch_questions
    from repro.digital import questions as digital_questions
    from repro.manufacturing import questions as manufacturing_questions
    from repro.physical import questions as physical_questions

    return {
        "analog": analog_questions.GENERATOR_VERSION,
        "architecture": arch_questions.GENERATOR_VERSION,
        "digital": digital_questions.GENERATOR_VERSION,
        "manufacturing": manufacturing_questions.GENERATOR_VERSION,
        "physical": physical_questions.GENERATOR_VERSION,
    }


def generator_fingerprint() -> str:
    """Digest of every family generator version plus the schema version.

    Part of every shard cache key: bumping any family's
    ``GENERATOR_VERSION`` (or :data:`SHARD_SCHEMA_VERSION`) invalidates
    all cached shards at once, so a stale on-disk cache can never serve
    questions from an older generator.
    """
    payload = json.dumps(
        {"schema": SHARD_SCHEMA_VERSION,
         "families": generator_versions()},
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- variant derivation ------------------------------------------------------


def derive_variant(question: Question, cycle: int, seed: int) -> Question:
    """The ``cycle``-th seeded variant of a canonical question.

    Cycle 0 is the canonical question itself.  Later cycles keep the
    solver-derived gold answer but present the question differently:

    * a fresh unique qid (``<base>~c<cycle>s<seed>``) — which also gives
      the variant an independent quota-IRT jitter realisation in the
      simulated zoo;
    * multiple-choice options in a seeded permutation, with
      ``correct_choice`` re-indexed (the gold *text* is unchanged);
    * difficulty jittered within [0.05, 0.95];
    * ``source`` tagged with the cycle and seed.

    Derivation is a pure function of ``(qid, cycle, seed)`` — stable
    across processes and platforms.
    """
    if cycle == 0:
        return question
    token = f"chipvqa-scale|{seed}|{cycle}|{question.qid}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    difficulty = question.difficulty + (rng.random() - 0.5) * 0.1
    difficulty = min(0.95, max(0.05, difficulty))
    fields: Dict[str, Any] = {
        "qid": f"{question.qid}~c{cycle}s{seed}",
        "difficulty": difficulty,
        "source": f"scaled:c{cycle}:s{seed}",
    }
    if question.is_multiple_choice:
        permutation = rng.sample(range(4), 4)
        fields["choices"] = tuple(
            question.choices[i] for i in permutation)
        fields["correct_choice"] = permutation.index(
            question.correct_choice)
    return dataclasses.replace(question, **fields)


def question_at(index: int, seed: int) -> Question:
    """The question at global index ``index`` of the seeded sequence."""
    if index < 0:
        raise ScaleConfigError("global index must be >= 0")
    cycle_questions = canonical_cycle()
    cycle, slot = divmod(index, len(cycle_questions))
    return derive_variant(cycle_questions[slot], cycle, seed)


def family_scaled_questions(
    category: Category,
    seed: int,
    shard_index: int,
    shard_size: int,
    total: Optional[int] = None,
) -> List[Question]:
    """One family's members of shard ``shard_index``, in global order.

    The per-family entry point the discipline packages re-export (e.g.
    ``generate_digital_questions_scaled``): the union of the five
    families' slices for a shard is exactly :func:`build_shard`'s
    output.  ``total`` clips the final shard of an ``n``-question build;
    omitted, the shard is taken at full ``shard_size``.
    """
    if shard_index < 0:
        raise ScaleConfigError("shard_index must be >= 0")
    stop = (shard_index + 1) * shard_size
    if total is not None:
        stop = min(stop, total)
    spec = ShardSpec(total=stop, seed=seed, shard_size=shard_size,
                     index=shard_index)
    return [q for q in build_shard(spec) if q.category is category]


# -- shard specs and the build cache -----------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous window of a seeded scaled build.

    ``total`` is the size of the *whole* build (it clips the final
    shard); the window itself is ``[start, stop)``.  The cache key
    deliberately omits ``total`` and ``shard_size`` in favour of
    ``(start, stop)``: two builds of different sizes share cached
    shards wherever their windows coincide.
    """

    total: int
    seed: int
    shard_size: int
    index: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ScaleConfigError("total must be >= 1")
        if self.shard_size < 1:
            raise ScaleConfigError("shard_size must be >= 1")
        if not 0 <= self.index * self.shard_size < self.total:
            raise ScaleConfigError(
                f"shard index {self.index} out of range for a "
                f"{self.total}-question build at shard_size "
                f"{self.shard_size}")

    @property
    def start(self) -> int:
        """First global question index of the shard (inclusive)."""
        return self.index * self.shard_size

    @property
    def stop(self) -> int:
        """Last global question index of the shard (exclusive)."""
        return min(self.start + self.shard_size, self.total)

    @property
    def size(self) -> int:
        """Number of questions in the shard."""
        return self.stop - self.start

    def cache_key(self) -> Tuple[Any, ...]:
        """The content-addressed build-cache key of this shard.

        A tuple of primitives — the :class:`~repro.core.perfstats.
        SpillStore` stores the entry under the sha256 of its ``repr``,
        which is deterministic across processes.  The generator
        fingerprint folds in every family's ``GENERATOR_VERSION`` and
        the schema version (see :func:`generator_fingerprint`).
        """
        return ("chipvqa-shard", generator_fingerprint(), self.seed,
                self.start, self.stop)

    def cache_key_digest(self) -> str:
        """Hex sha256 the on-disk tier files this shard under."""
        return hashlib.sha256(
            repr(self.cache_key()).encode("utf-8")).hexdigest()


def plan_shards(total: int, seed: int,
                shard_size: Optional[int] = None) -> List[ShardSpec]:
    """All shard specs of an ``n``-question build, in order."""
    if total < 1:
        raise ScaleConfigError("total must be >= 1")
    shard_size = DEFAULT_SHARD_SIZE if shard_size is None else shard_size
    if shard_size < 1:
        raise ScaleConfigError("shard_size must be >= 1")
    count = (total + shard_size - 1) // shard_size
    return [ShardSpec(total=total, seed=seed, shard_size=shard_size,
                      index=i) for i in range(count)]


def _question_payload(question: Question) -> dict:
    """JSON-serialisable form of a question *including* render specs.

    ``Question.to_dict`` deliberately drops ``render_spec`` (prompt
    artifacts do not need it); the build cache must round-trip it, or a
    warm rebuild could not drive raster-mode evaluation.  Scenes are
    JSON-like lists of primitive-op dicts, so they serialise directly;
    tuples inside come back as lists, which renders identically and
    hashes identically under the canonical JSON content keys.
    """
    payload = question.to_dict()
    payload["visual"]["render_spec"] = _jsonable(
        question.visual.render_spec)
    for entry, visual in zip(payload["extra_visuals"],
                             question.extra_visuals):
        entry["render_spec"] = _jsonable(visual.render_spec)
    return payload


def _jsonable(value: Any) -> Any:
    """Recursively coerce tuples to lists so ``json`` round-trips."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


def _question_from_payload(payload: dict) -> Question:
    """Inverse of :func:`_question_payload` (restores render specs)."""
    question = Question.from_dict(payload)

    def restore(visual: VisualContent, entry: dict) -> VisualContent:
        return dataclasses.replace(
            visual, render_spec=tuple(entry.get("render_spec", ())))

    return dataclasses.replace(
        question,
        visual=restore(question.visual, payload["visual"]),
        extra_visuals=tuple(
            restore(v, e) for v, e in zip(question.extra_visuals,
                                          payload["extra_visuals"])),
    )


def _encode_shard(questions: Sequence[Question]) -> List[dict]:
    """Spill codec: shard -> JSON-serialisable payload list."""
    return [_question_payload(q) for q in questions]


def _decode_shard(payload: Sequence[dict]) -> Tuple[Question, ...]:
    """Spill codec: payload list -> shard (tuple of questions)."""
    return tuple(_question_from_payload(entry) for entry in payload)


#: The shard build cache.  The memory tier holds a handful of recently
#: built shards (keeping streaming sweeps O(shard) in memory); the
#: codec makes it spill-capable, so ``perfstats.enable_spill`` /
#: ``--spill-dir`` attach the content-addressed on-disk tier alongside
#: the perception caches, and counters flow into ``RunStats.
#: perf_caches`` / run manifests like every other substrate cache.
_SHARD_CACHE = perfstats.LruCache(
    capacity=8, name=BUILD_CACHE_NAME,
    spill_codec=(_encode_shard, _decode_shard))


def enable_build_cache(root: "Any") -> None:
    """Attach the on-disk shard cache tier rooted at ``root``.

    Equivalent to the ``dataset_build`` slice of
    :func:`repro.core.perfstats.enable_spill`, for callers who want
    warm dataset rebuilds without spilling the perception caches.
    """
    _SHARD_CACHE.attach_spill(perfstats.SpillStore(
        root, BUILD_CACHE_NAME, _encode_shard, _decode_shard))


def disable_build_cache() -> None:
    """Detach the on-disk shard cache tier (entries on disk are kept)."""
    _SHARD_CACHE.detach_spill()


def _generate_shard(spec: ShardSpec) -> Tuple[Question, ...]:
    """Generate a shard's questions from the family generators (no cache)."""
    return tuple(question_at(g, spec.seed)
                 for g in range(spec.start, spec.stop))


def build_shard(spec: ShardSpec) -> Tuple[Question, ...]:
    """Build (or fetch) one shard through the content-addressed cache."""
    key = spec.cache_key()
    cached = _SHARD_CACHE.get(key)
    if cached is not None:
        return cached
    questions = _generate_shard(spec)
    _SHARD_CACHE.put(key, questions)
    return questions


def build_shards(
    specs: Sequence[ShardSpec],
    backend: Any = None,
    workers: int = 1,
) -> List[Tuple[Question, ...]]:
    """Build many shards across an executor backend, in spec order.

    ``backend`` accepts anything :func:`repro.core.executor.
    resolve_backend` does (a name, an instance, or ``None`` for serial
    at ``workers=1`` / threads otherwise).  The async backend is
    rejected: shard generation is CPU-bound pure Python with no await
    points, so an event loop would serialise it with extra ceremony.
    Process workers return their shards to the parent, which re-enters
    them into the build cache (write-through to the disk tier when one
    is attached).
    """
    from repro.core.executor import (
        AsyncBackend,
        ExecutorConfigError,
        ProcessBackend,
        resolve_backend,
    )

    resolved = resolve_backend(backend, workers)
    if isinstance(resolved, AsyncBackend):
        raise ExecutorConfigError(
            "shard builds are CPU-bound; use the serial, thread or "
            "process backend")
    specs = list(specs)
    if isinstance(resolved, ProcessBackend):
        canonical_cycle()  # warm before the fork so workers inherit it
        shards = resolved.map_units(specs, build_shard)
        for spec, shard in zip(specs, shards):
            key = spec.cache_key()
            if key not in _SHARD_CACHE:
                _SHARD_CACHE.put(key, tuple(shard))
        return [tuple(shard) for shard in shards]
    return resolved.map_units(specs, build_shard)


def _prime_shard_job(job: Tuple[ShardSpec, str]) -> int:
    """Worker body of :func:`prime_build_cache`; returns 1 when built.

    Top-level (picklable) and self-contained: the cache directory
    travels in the job, so the worker needs no inherited global state
    beyond the imported generators.
    """
    spec, root = job
    store = perfstats.SpillStore(root, BUILD_CACHE_NAME,
                                 _encode_shard, _decode_shard)
    key = spec.cache_key()
    if store.path_for(key).exists():
        return 0
    store.put(key, _generate_shard(spec))
    return 1


def prime_build_cache(
    total: int,
    seed: int = 0,
    *,
    cache_dir: "Any",
    shard_size: Optional[int] = None,
    backend: Any = None,
    workers: int = 1,
) -> Dict[str, int]:
    """Populate the on-disk shard cache for an ``n``-question build.

    The parallel *producer* path: workers generate shards and write
    them straight to the content-addressed store (tiny result pickles
    — one int per shard — so process fan-out scales with cores rather
    than with IPC volume).  Existing entries are skipped.  Returns
    ``{"shards": ..., "built": ..., "reused": ...}``.
    """
    from repro.core.executor import (
        AsyncBackend,
        ExecutorConfigError,
        ProcessBackend,
        resolve_backend,
    )

    resolved = resolve_backend(backend, workers)
    if isinstance(resolved, AsyncBackend):
        raise ExecutorConfigError(
            "shard builds are CPU-bound; use the serial, thread or "
            "process backend")
    specs = plan_shards(total, seed, shard_size)
    if isinstance(resolved, ProcessBackend):
        canonical_cycle()  # warm before the fork so workers inherit it
    jobs = [(spec, str(cache_dir)) for spec in specs]
    built = sum(resolved.map_units(jobs, _prime_shard_job))
    return {"shards": len(specs), "built": built,
            "reused": len(specs) - built}


# -- expected composition ----------------------------------------------------


@dataclass(frozen=True)
class Composition:
    """Exact expected structural composition of a scaled build."""

    total: int
    type_counts: Mapping[QuestionType, int]
    category_counts: Mapping[Category, int]
    category_mc_counts: Mapping[Category, int]
    visual_type_counts: Mapping[VisualType, int]


def expected_composition(total: int) -> Composition:
    """The exact composition an ``n``-question scaled build must have.

    Variants change presentation, never structure, so composition is a
    pure function of the canonical cycle: full cycles contribute the
    Table I counts verbatim and the residual prefix is counted off the
    interleaved order.  ``validate_chipvqa`` compares a scaled build
    against this — equality, not tolerance.
    """
    if total < 1:
        raise ScaleConfigError("total must be >= 1")
    cycle = canonical_cycle()
    cycles, remainder = divmod(total, len(cycle))
    members = list(cycle) * min(cycles, 1)
    categories: Counter = Counter()
    mc_categories: Counter = Counter()
    types: Counter = Counter()
    visuals: Counter = Counter()

    def tally(question: Question, weight: int) -> None:
        categories[question.category] += weight
        types[question.question_type] += weight
        if question.is_multiple_choice:
            mc_categories[question.category] += weight
        for visual in question.all_visuals:
            visuals[visual.visual_type] += weight

    if cycles:
        for question in members:
            tally(question, cycles)
    for question in cycle[:remainder]:
        tally(question, 1)
    return Composition(
        total=total,
        type_counts={t: types.get(t, 0) for t in QuestionType},
        category_counts={c: categories.get(c, 0) for c in Category},
        category_mc_counts={c: mc_categories.get(c, 0)
                            for c in Category},
        visual_type_counts={v: visuals[v] for v in VisualType
                            if visuals[v]},
    )


# -- scaled builds and dataset specs -----------------------------------------


def scaled_name(total: int, seed: int, challenge: bool = False) -> str:
    """Display name of a scaled collection."""
    base = f"chipvqa-scaled-n{total}-s{seed}"
    return f"{base}-challenge" if challenge else base


def scaled_root(total: int, seed: int, shard_size: int,
                shard: Optional[int] = None,
                challenge: bool = False) -> str:
    """The build-spec root string of a scaled (or shard) dataset.

    Parameters are encoded *inside* the root token
    (``chipvqa-scaled:<n>:<seed>:<shard_size>[:shard=<i>][:challenge]``)
    so the spec tuple's remaining elements stay free for the standard
    ``by_category`` / ``by_type`` op pairs.
    """
    root = f"chipvqa-scaled:{total}:{seed}:{shard_size}"
    if shard is not None:
        root += f":shard={shard}"
    if challenge:
        root += ":challenge"
    return root


def parse_scaled_root(root: str) -> Tuple[int, int, int,
                                          Optional[int], bool]:
    """Parse a :func:`scaled_root` token; raises on malformed input."""
    tokens = root.split(":")
    if tokens[0] != "chipvqa-scaled" or len(tokens) < 4:
        raise ScaleConfigError(f"not a scaled dataset root: {root!r}")
    try:
        total, seed, shard_size = (int(tokens[1]), int(tokens[2]),
                                   int(tokens[3]))
    except ValueError as exc:
        raise ScaleConfigError(
            f"malformed scaled dataset root {root!r}") from exc
    shard: Optional[int] = None
    challenge = False
    for token in tokens[4:]:
        if token.startswith("shard="):
            shard = int(token[len("shard="):])
        elif token == "challenge":
            challenge = True
        else:
            raise ScaleConfigError(
                f"unknown token {token!r} in scaled root {root!r}")
    return total, seed, shard_size, shard, challenge


def _challenge_map(dataset: Dataset, name: str) -> Dataset:
    """Recast every MC question of ``dataset`` as short-answer."""
    from repro.core.transforms import to_short_answer

    return dataset.map(to_short_answer, name=name)


def shard_dataset(total: int, seed: int, shard_size: int, index: int,
                  challenge: bool = False) -> Dataset:
    """One shard as a :class:`Dataset` with a process-portable spec."""
    spec = ShardSpec(total=total, seed=seed, shard_size=shard_size,
                     index=index)
    base = scaled_name(total, seed)
    dataset = Dataset(build_shard(spec),
                      name=f"{base}/shard{index:05d}")
    if challenge:
        dataset = _challenge_map(
            dataset,
            f"{scaled_name(total, seed, challenge=True)}"
            f"/shard{index:05d}")
    dataset.build_spec = (scaled_root(total, seed, shard_size,
                                      shard=index, challenge=challenge),)
    return dataset


def build_scaled(
    total: int,
    seed: int = 0,
    *,
    shard_size: Optional[int] = None,
    backend: Any = None,
    workers: int = 1,
    validate: bool = True,
    challenge: bool = False,
) -> Dataset:
    """Materialise a full ``n``-question scaled collection.

    The workhorse behind :func:`repro.core.benchmark.
    build_chipvqa_scaled`; shards go through the build cache (and any
    attached disk tier), optionally in parallel across ``backend``.
    """
    shard_size = DEFAULT_SHARD_SIZE if shard_size is None else shard_size
    specs = plan_shards(total, seed, shard_size)
    questions: List[Question] = []
    for shard in build_shards(specs, backend=backend, workers=workers):
        questions.extend(shard)
    dataset = Dataset(questions, name=scaled_name(total, seed))
    dataset.build_spec = (scaled_root(total, seed, shard_size),)
    if validate:
        from repro.core.benchmark import BuildExpectations, validate_chipvqa

        validate_chipvqa(dataset, BuildExpectations.scaled(total))
    if challenge:
        mapped = _challenge_map(
            dataset, scaled_name(total, seed, challenge=True))
        mapped.build_spec = (scaled_root(total, seed, shard_size,
                                         challenge=True),)
        return mapped
    return dataset


def dataset_from_scaled_root(root: str) -> Dataset:
    """Rebuild a scaled dataset (or one shard) from its root token.

    The hook :func:`repro.core.executor.dataset_from_spec` uses to
    resolve ``chipvqa-scaled:...`` roots in worker processes.
    """
    total, seed, shard_size, shard, challenge = parse_scaled_root(root)
    if shard is not None:
        return shard_dataset(total, seed, shard_size, shard,
                             challenge=challenge)
    return build_scaled(total, seed, shard_size=shard_size,
                        validate=False, challenge=challenge)


# -- streaming ---------------------------------------------------------------


class StreamingDataset:
    """A scaled collection consumed shard-by-shard, O(shard) in memory.

    Never materialises the whole build: :meth:`shard` returns one
    window as a regular :class:`Dataset` (built through the shard
    cache), and iteration walks shards in order, releasing each before
    the next is built.  Resident questions are bounded by the shard
    cache's memory tier (a handful of shards) plus whatever the caller
    holds — :attr:`peak_resident_questions` tracks the high-water mark
    observed through this instance.

    ``challenge=True`` recasts every MC question as short-answer per
    shard (the scaled analogue of the challenge collection).
    """

    def __init__(self, total: int, seed: int = 0,
                 shard_size: Optional[int] = None,
                 challenge: bool = False) -> None:
        if total < 1:
            raise ScaleConfigError("total must be >= 1")
        self.total = total
        self.seed = seed
        self.shard_size = (DEFAULT_SHARD_SIZE if shard_size is None
                           else shard_size)
        if self.shard_size < 1:
            raise ScaleConfigError("shard_size must be >= 1")
        self.challenge = challenge
        self.name = scaled_name(total, seed, challenge=challenge)
        self._peak = 0

    def __len__(self) -> int:
        return self.total

    @property
    def num_shards(self) -> int:
        """Number of shards the build is split into."""
        return (self.total + self.shard_size - 1) // self.shard_size

    def shard_specs(self) -> List[ShardSpec]:
        """All shard specs, in order."""
        return plan_shards(self.total, self.seed, self.shard_size)

    def shard(self, index: int) -> Dataset:
        """Materialise shard ``index`` (through the build cache)."""
        dataset = shard_dataset(self.total, self.seed, self.shard_size,
                                index, challenge=self.challenge)
        self._observe(len(dataset))
        return dataset

    def iter_shards(self) -> Iterator[Dataset]:
        """Yield every shard in order, one materialised at a time."""
        for index in range(self.num_shards):
            yield self.shard(index)

    def __iter__(self) -> Iterator[Question]:
        for shard in self.iter_shards():
            for question in shard:
                yield question

    def materialize(self, backend: Any = None,
                    workers: int = 1) -> Dataset:
        """The full collection as one :class:`Dataset` (O(n) memory)."""
        return build_scaled(self.total, self.seed,
                            shard_size=self.shard_size,
                            backend=backend, workers=workers,
                            validate=False, challenge=self.challenge)

    @property
    def peak_resident_questions(self) -> int:
        """High-water mark of questions resident in the build cache's
        memory tier (plus the shard being handed out) at any
        :meth:`shard` call through this instance."""
        return self._peak

    def _observe(self, current: int) -> None:
        resident = current + sum(
            len(entry) for entry in _SHARD_CACHE.values()
            if isinstance(entry, tuple))
        if resident > self._peak:
            self._peak = resident
