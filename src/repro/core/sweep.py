"""Streaming scaled-dataset sweeps with multi-sample pass@k scoring.

:func:`run_scaled_table2` is the scaled analogue of
:func:`repro.core.harness.run_table2`: it evaluates a provider list
over an ``n``-question procedurally scaled collection
(:mod:`repro.core.databuild`), consuming the build **shard-by-shard**
through :class:`~repro.core.databuild.StreamingDataset` — the
:class:`~repro.core.runner.ParallelRunner` only ever sees one window of
shards at a time, so peak memory is O(shard), not O(n), however large
the sweep.

Multi-sample scoring (``samples=k``) re-evaluates every question ``k``
times through **sample-salted providers**: sample ``s`` of model ``m``
is the same simulated architecture registered under ``m+s{s}`` — the
quota-IRT outcome planner keys its per-question jitter on the provider
name, so each sample is an independent draw from the model's calibrated
per-category accuracy.  Sample 0 is the unsalted model, so a
``samples=1`` sweep reproduces single-sample results exactly.  Counts
per question feed the unbiased :func:`repro.core.metrics.pass_at_k`
estimator and majority-vote consensus@k via
:class:`~repro.core.metrics.MultiSampleResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.core import perfstats
from repro.core.databuild import (StreamingDataset, disable_build_cache,
                                  enable_build_cache)
from repro.core.engine import build_driver
from repro.core.metrics import EvalResult, MultiSampleResult
from repro.core.runner import ParallelRunner, WorkUnit

if TYPE_CHECKING:
    from repro.core.coordinator import SweepCoordinator

#: Anything that can drive a sweep window: a single parallel runner or
#: a coordinated multi-node fleet (both expose run/workers/last_stats).
SweepRunner = Union[ParallelRunner, "SweepCoordinator"]


def sample_provider_name(base: str, sample: int) -> str:
    """Registry name of one sample of a model (sample 0 is unsalted)."""
    if sample < 0:
        raise ValueError("sample index must be >= 0")
    return base if sample == 0 else f"{base}+s{sample}"


def _build_sample_provider(base: str, sample: int):
    """Build the salted provider for (``base``, ``sample``).

    The clone shares the base model's architecture and calibration
    table; only its *name* changes, which re-rolls the outcome
    planner's per-question jitter — exactly the semantics of drawing
    another sample at non-zero temperature.
    """
    from repro.models.providers import LocalProvider
    from repro.models.zoo import build_vlm

    vlm = build_vlm(base)
    vlm.name = sample_provider_name(base, sample)
    return LocalProvider(vlm)


def ensure_sample_provider(base: str, sample: int) -> str:
    """Register (idempotently) the salted provider; returns its name.

    Sample 0 resolves to the already-registered base model.  The
    factory closes over ``(base, sample)`` only, so with the ``fork``
    start method process-backend workers rebuild identical providers
    from the inherited registry.
    """
    name = sample_provider_name(base, sample)
    if sample == 0:
        return name
    from repro.models.providers import register_provider

    register_provider(
        name,
        lambda base=base, sample=sample: _build_sample_provider(
            base, sample),
        replace=True)
    return name


@dataclass
class SweepReport:
    """Everything a scaled multi-sample sweep produced.

    ``results[model][setting]`` is a
    :class:`~repro.core.metrics.MultiSampleResult` whose samples hold
    the full record sequence in global question order.
    """

    dataset_name: str
    total_questions: int
    seed: int
    samples: int
    results: Dict[str, Dict[str, MultiSampleResult]]
    peak_resident_questions: int = 0
    perf_caches: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def table2_results(self) -> Dict[str, Dict[str, EvalResult]]:
        """Sample-0 results in ``run_table2``'s return shape."""
        return {
            model: {setting: multi.samples[0]
                    for setting, multi in settings.items()}
            for model, settings in self.results.items()
        }

    def passk_summary(self, ks: Sequence[int] = (1, 5)) -> dict:
        """JSON-serialisable pass@k / consensus@k summary artifact."""
        usable = sorted({min(k, self.samples) for k in ks if k >= 1})
        return {
            "dataset": self.dataset_name,
            "total_questions": self.total_questions,
            "seed": self.seed,
            "samples": self.samples,
            "ks": usable,
            "peak_resident_questions": self.peak_resident_questions,
            "models": {
                model: {setting: multi.as_dict(usable)
                        for setting, multi in settings.items()}
                for model, settings in self.results.items()
            },
        }

    def render(self, ks: Sequence[int] = (1, 5)) -> str:
        """Fixed-width pass@k / consensus@k table."""
        usable = sorted({min(k, self.samples) for k in ks if k >= 1})
        headers = ["model", "setting"]
        for k in usable:
            headers.append(f"pass@{k}")
        for k in usable:
            headers.append(f"cons@{k}")
        rows: List[List[str]] = []
        for model, settings in self.results.items():
            for setting, multi in settings.items():
                row = [model, setting]
                row += [f"{multi.pass_at_k(k):.4f}" for k in usable]
                row += [f"{multi.consensus_at_k(k):.4f}"
                        for k in usable]
                rows.append(row)
        widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
                  if rows else len(headers[i])
                  for i in range(len(headers))]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(
                cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


def run_scaled_table2(
    models: Sequence[str],
    total: int,
    seed: int = 0,
    *,
    samples: int = 1,
    shard_size: Optional[int] = None,
    include_challenge: bool = True,
    harness=None,
    runner: Optional[SweepRunner] = None,
    workers: int = 1,
    nodes: int = 1,
    run_dir: "Optional[Path | str]" = None,
    resume: bool = True,
    backend: Optional[str] = None,
    spill_dir: "Optional[Path | str]" = None,
    window_shards: Optional[int] = None,
    prefetch: int = 0,
    prefetch_builder: str = "thread",
) -> SweepReport:
    """Evaluate registry models over a scaled collection, streaming.

    ``models`` must be provider *registry names* (strings) — sample
    salting re-registers clones, which has no meaning for ad-hoc
    provider objects.  Shards are evaluated in windows of
    ``window_shards`` (default: just enough to keep ``workers``
    busy); each window is one
    :meth:`~repro.core.runner.ParallelRunner.run` call, so
    checkpointing, retry, quarantine and backend fan-out all apply
    per-window, and no more than a window of questions is ever
    resident alongside the build cache's memory tier.

    ``nodes > 1`` dispatches each window through a fault-tolerant
    :class:`~repro.core.coordinator.SweepCoordinator` fleet instead of
    a single runner: node deaths mid-window are absorbed by lease
    expiry and work-stealing, and the sweep still converges to the
    same artifacts (``backend="process"`` selects process-group nodes;
    anything else runs nodes inline).  The two knobs are exclusive —
    pass ``workers`` *or* ``nodes``, not both.

    ``prefetch=k`` (k >= 1) overlaps shard building with evaluation: a
    :class:`~repro.core.pipeline.ShardPrefetcher` builder pool keeps up
    to ``k`` shards building or ready while the current window
    evaluates, delivered in shard order so the artifacts stay
    byte-identical to the serial loop's (``prefetch=0``).  Memory grows
    to O(prefetch × shard); time the sweep still spends blocked on
    builds is visible as the ``build_wait`` stage in
    :attr:`SweepReport.perf_caches` (charged in both modes, so the
    overlap win is directly measurable).  ``prefetch_builder`` picks
    the pool: ``"thread"`` (default, zero setup) or ``"process"``
    (true build/eval parallelism on CPython — see
    :class:`~repro.core.pipeline.ShardPrefetcher`).

    Returns a :class:`SweepReport`; per-window runner stats are folded
    into :attr:`SweepReport.perf_caches` with
    :func:`repro.core.perfstats.merge_counters` (the ``dataset_build``
    entry shows build-cache hits/misses/spills for the whole sweep).
    """
    from repro.core.harness import EvaluationHarness
    from repro.models.vlm import NO_CHOICE, WITH_CHOICE

    if samples < 1:
        raise ValueError("samples must be >= 1")
    if not models:
        raise ValueError("no models")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if prefetch < 0:
        raise ValueError("prefetch must be >= 0")
    from repro.core.pipeline import PREFETCH_BUILDERS

    if prefetch_builder not in PREFETCH_BUILDERS:
        raise ValueError(
            f"unknown prefetch builder {prefetch_builder!r}; "
            f"choose from {PREFETCH_BUILDERS}")
    harness = harness or EvaluationHarness()
    if runner is None:
        runner = build_driver(
            harness, workers=workers, nodes=nodes, backend=backend,
            run_dir=run_dir, resume=resume, spill_dir=spill_dir)
    settings = [WITH_CHOICE]
    if include_challenge:
        settings.append(NO_CHOICE)
    provider_names = {
        (base, s): ensure_sample_provider(base, s)
        for base in models for s in range(samples)
    }
    streams = {
        WITH_CHOICE: StreamingDataset(total, seed,
                                      shard_size=shard_size),
        NO_CHOICE: StreamingDataset(total, seed, shard_size=shard_size,
                                    challenge=True),
    }
    stream = streams[WITH_CHOICE]
    cells = len(models) * len(settings) * samples
    if window_shards is None:
        window_shards = max(1, math.ceil(runner.workers / cells))
    merged: Dict[str, Dict[str, MultiSampleResult]] = {}
    accumulators: Dict[tuple, EvalResult] = {}
    for base in models:
        merged[base] = {}
        for setting in settings:
            multi = MultiSampleResult(
                model_name=base,
                dataset_name=streams[setting].name,
                setting=setting)
            merged[base][setting] = multi
            for s in range(samples):
                result = EvalResult(
                    model_name=provider_names[(base, s)],
                    dataset_name=streams[setting].name,
                    setting=setting)
                accumulators[(base, setting, s)] = result
                multi.add_sample(result)
    perf: Dict[str, Dict[str, int]] = {}
    prefetcher = None
    if prefetch:
        from repro.core.pipeline import ShardPrefetcher

        if spill_dir is not None:
            # builders start immediately; attach the disk tier first so
            # the very first background builds can spill/serve warm
            enable_build_cache(spill_dir)
        prefetcher = ShardPrefetcher(
            {setting: streams[setting] for setting in settings},
            lookahead=prefetch,
            workers=min(prefetch, 2),
            builder=prefetch_builder,
            spill_dir=spill_dir).start()
    try:
        for window_start in range(0, stream.num_shards, window_shards):
            if spill_dir is not None:
                # Shards are fetched in the parent, between runner.run()
                # calls — and the runner scopes perfstats.enable_spill to
                # each run, detaching every cache (dataset_build included)
                # on the way out.  Re-attach before fetching so warm
                # sweeps serve shards from the on-disk build cache.
                enable_build_cache(spill_dir)
            window = range(window_start,
                           min(window_start + window_shards,
                               stream.num_shards))
            units: List[WorkUnit] = []
            keys: List[tuple] = []
            for index in window:
                if prefetcher is not None:
                    # in-order delivery: builders may finish out of
                    # order, the consumer never observes it
                    shard_by_setting = prefetcher.get(index)
                else:
                    with perfstats.stage("build_wait"):
                        shard_by_setting = {
                            setting: streams[setting].shard(index)
                            for setting in settings
                        }
                for base in models:
                    for setting in settings:
                        for s in range(samples):
                            units.append(WorkUnit(
                                model=provider_names[(base, s)],
                                dataset=shard_by_setting[setting],
                                setting=setting))
                            keys.append((base, setting, s))
            outcome = runner.run(units).raise_on_failure()
            for unit, key in zip(units, keys):
                accumulators[key].records.extend(
                    outcome.result_for(unit).records)
            if runner.last_stats is not None:
                perfstats.merge_counters(perf,
                                         runner.last_stats.perf_caches)
    finally:
        if prefetcher is not None:
            prefetcher.close()
        if spill_dir is not None:
            # scoped to the sweep, mirroring the runner's own spill scope
            disable_build_cache()
    report = SweepReport(
        dataset_name=stream.name,
        total_questions=total,
        seed=seed,
        samples=samples,
        results=merged,
        peak_resident_questions=max(
            streams[setting].peak_resident_questions
            for setting in settings),
        perf_caches=perf,
    )
    return report
