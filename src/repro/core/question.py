"""Core data schema for ChipVQA questions.

A ChipVQA item is a *visual-question-answer triplet*: a text prompt, at least
one visual component essential to the answer, and a gold answer.  Two question
forms exist (paper, Section III-A):

* **multiple choice** (MC): the prompt is accompanied by four answer options
  rendered as text; the gold answer is one option.
* **short answer** (SA): open-ended response, e.g. a numeric value with a
  unit, a boolean expression, or a brief explanation.

This module defines the immutable dataclasses shared by every other
subsystem: :class:`Question`, :class:`VisualContent`, :class:`AnswerSpec` and
the category / visual-type / question-type enums whose members mirror the
vocabulary of Table I in the paper.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass
from typing import Sequence, Tuple


class Category(enum.Enum):
    """The five chip-design disciplines covered by ChipVQA (Table I)."""

    DIGITAL = "Digital Design"
    ANALOG = "Analog Design"
    ARCHITECTURE = "Architecture"
    MANUFACTURING = "Manufacture"
    PHYSICAL = "Physical Design"

    @property
    def short(self) -> str:
        """Column label used in Table II of the paper."""
        return _CATEGORY_SHORT[self]


_CATEGORY_SHORT = {
    Category.DIGITAL: "Digital",
    Category.ANALOG: "Analog",
    Category.ARCHITECTURE: "Architecture",
    Category.MANUFACTURING: "Manufacture",
    Category.PHYSICAL: "Physical",
}

#: Number of questions per category, exactly as reported in Table I.
CATEGORY_COUNTS = {
    Category.DIGITAL: 35,
    Category.ANALOG: 44,
    Category.ARCHITECTURE: 20,
    Category.MANUFACTURING: 20,
    Category.PHYSICAL: 23,
}

#: Total number of questions in the standard collection.
TOTAL_QUESTIONS = 142

#: Multiple-choice / short-answer split of the standard collection (Table I).
TOTAL_MULTIPLE_CHOICE = 99
TOTAL_SHORT_ANSWER = 43

#: Per-category MC counts chosen to be consistent with the paper (Digital and
#: Analog are all-MC per Section III-B; Manufacturing skews short-answer per
#: Section IV-A).  The remainder of each category is short-answer.
CATEGORY_MC_COUNTS = {
    Category.DIGITAL: 35,
    Category.ANALOG: 44,
    Category.ARCHITECTURE: 8,
    Category.MANUFACTURING: 5,
    Category.PHYSICAL: 7,
}


class QuestionType(enum.Enum):
    """The two question forms of the benchmark."""

    MULTIPLE_CHOICE = "multiple_choice"
    SHORT_ANSWER = "short_answer"


class VisualType(enum.Enum):
    """The twelve visual-content types enumerated in Table I."""

    SCHEMATIC = "schematic"
    DIAGRAM = "diagram"
    LAYOUT = "layout"
    TABLE = "table"
    MIXED = "mixed"
    STRUCTURE = "structure"
    FIGURE = "figure"
    CURVE = "curve"
    FLOW = "flow"
    EQUATIONS = "equations"
    NEURAL_NETS = "neural nets"
    EQUATION = "equation"


#: Visual-content counts exactly as reported in Table I.  They sum to 144:
#: the paper says every question has *at least one* visual, so two questions
#: carry a second visual component.
VISUAL_TYPE_COUNTS = {
    VisualType.SCHEMATIC: 53,
    VisualType.DIAGRAM: 29,
    VisualType.LAYOUT: 16,
    VisualType.TABLE: 15,
    VisualType.MIXED: 15,
    VisualType.STRUCTURE: 3,
    VisualType.FIGURE: 4,
    VisualType.CURVE: 4,
    VisualType.FLOW: 1,
    VisualType.EQUATIONS: 1,
    VisualType.NEURAL_NETS: 2,
    VisualType.EQUATION: 1,
}


class AnswerKind(enum.Enum):
    """How a gold answer should be compared by the judge."""

    CHOICE = "choice"  # one of the four MC option letters
    NUMERIC = "numeric"  # a number, optionally with a unit
    BOOLEAN_EXPR = "boolean_expr"  # a boolean algebra expression
    TEXT = "text"  # free text, judged by alias/fuzzy equivalence


@dataclass(frozen=True)
class VisualContent:
    """A visual component of a question.

    The raster itself is rendered lazily by :mod:`repro.visual` from
    ``render_spec`` so datasets stay cheap to build; ``legibility_scale``
    captures the smallest semantically-essential feature size (in pixels at
    native resolution), which the resolution study uses to decide when
    downsampling destroys information.
    """

    visual_type: VisualType
    description: str
    render_spec: Tuple = ()
    width: int = 512
    height: int = 384
    legibility_scale: float = 8.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("visual dimensions must be positive")
        if self.legibility_scale <= 0:
            raise ValueError("legibility_scale must be positive")


@dataclass(frozen=True)
class AnswerSpec:
    """Gold answer plus the information the judge needs to compare it.

    ``aliases`` lists alternative surface forms accepted as equivalent;
    ``unit`` and ``rel_tol`` configure numeric comparison; ``variables``
    names the boolean variables in scope for boolean-expression answers.
    """

    kind: AnswerKind
    text: str
    aliases: Tuple[str, ...] = ()
    unit: str = ""
    rel_tol: float = 0.02
    variables: Tuple[str, ...] = ()
    requires_manual_check: bool = False

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("gold answer text must be non-empty")
        if self.rel_tol < 0:
            raise ValueError("rel_tol must be non-negative")


@dataclass(frozen=True)
class Question:
    """One ChipVQA visual-question-answer triplet."""

    qid: str
    category: Category
    question_type: QuestionType
    prompt: str
    visual: VisualContent
    answer: AnswerSpec
    choices: Tuple[str, ...] = ()
    correct_choice: int = -1
    difficulty: float = 0.5
    topics: Tuple[str, ...] = ()
    source: str = "generated"
    extra_visuals: Tuple[VisualContent, ...] = ()
    explanation: str = ""

    def __post_init__(self) -> None:
        if not self.qid:
            raise ValueError("qid must be non-empty")
        if not self.prompt:
            raise ValueError("prompt must be non-empty")
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError("difficulty must lie in [0, 1]")
        if self.question_type is QuestionType.MULTIPLE_CHOICE:
            if len(self.choices) != 4:
                raise ValueError(
                    f"{self.qid}: multiple-choice questions need exactly 4 "
                    f"choices, got {len(self.choices)}"
                )
            if not 0 <= self.correct_choice < 4:
                raise ValueError(
                    f"{self.qid}: correct_choice must index into choices"
                )
            if len(set(self.choices)) != 4:
                raise ValueError(f"{self.qid}: choices must be distinct")
        else:
            if self.choices:
                raise ValueError(
                    f"{self.qid}: short-answer questions must not have choices"
                )

    @property
    def is_multiple_choice(self) -> bool:
        return self.question_type is QuestionType.MULTIPLE_CHOICE

    @property
    def all_visuals(self) -> Tuple[VisualContent, ...]:
        """Primary visual followed by any secondary visuals."""
        return (self.visual,) + self.extra_visuals

    @property
    def gold_text(self) -> str:
        """The gold answer in its canonical surface form."""
        if self.is_multiple_choice:
            return self.choices[self.correct_choice]
        return self.answer.text

    @property
    def gold_letter(self) -> str:
        """The gold option letter (``A``-``D``) for MC questions."""
        if not self.is_multiple_choice:
            raise ValueError(f"{self.qid} is not multiple choice")
        return "ABCD"[self.correct_choice]

    def stable_hash(self) -> int:
        """A deterministic 64-bit hash of the question's identity.

        Used to derive per-question jitter in the model simulator; stable
        across processes (unlike the built-in ``hash``).
        """
        digest = hashlib.sha256(self.qid.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        def visual_dict(visual: VisualContent) -> dict:
            return {
                "visual_type": visual.visual_type.value,
                "description": visual.description,
                "width": visual.width,
                "height": visual.height,
                "legibility_scale": visual.legibility_scale,
            }

        return {
            "qid": self.qid,
            "category": self.category.value,
            "question_type": self.question_type.value,
            "prompt": self.prompt,
            "visual": visual_dict(self.visual),
            "extra_visuals": [visual_dict(v) for v in self.extra_visuals],
            "answer": {
                "kind": self.answer.kind.value,
                "text": self.answer.text,
                "aliases": list(self.answer.aliases),
                "unit": self.answer.unit,
                "rel_tol": self.answer.rel_tol,
                "variables": list(self.answer.variables),
                "requires_manual_check": self.answer.requires_manual_check,
            },
            "choices": list(self.choices),
            "correct_choice": self.correct_choice,
            "difficulty": self.difficulty,
            "topics": list(self.topics),
            "source": self.source,
            "explanation": self.explanation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Question":
        """Inverse of :meth:`to_dict` (render_spec is not round-tripped)."""
        def visual_from(entry: dict) -> VisualContent:
            return VisualContent(
                visual_type=VisualType(entry["visual_type"]),
                description=entry["description"],
                width=entry["width"],
                height=entry["height"],
                legibility_scale=entry["legibility_scale"],
            )

        visual = visual_from(data["visual"])
        answer = AnswerSpec(
            kind=AnswerKind(data["answer"]["kind"]),
            text=data["answer"]["text"],
            aliases=tuple(data["answer"]["aliases"]),
            unit=data["answer"]["unit"],
            rel_tol=data["answer"]["rel_tol"],
            variables=tuple(data["answer"]["variables"]),
            requires_manual_check=data["answer"]["requires_manual_check"],
        )
        return cls(
            qid=data["qid"],
            category=Category(data["category"]),
            question_type=QuestionType(data["question_type"]),
            prompt=data["prompt"],
            visual=visual,
            answer=answer,
            choices=tuple(data["choices"]),
            correct_choice=data["correct_choice"],
            difficulty=data["difficulty"],
            topics=tuple(data["topics"]),
            source=data["source"],
            extra_visuals=tuple(
                visual_from(entry) for entry in data.get("extra_visuals", ())
            ),
            explanation=data.get("explanation", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Question":
        return cls.from_dict(json.loads(text))


def format_choices(choices: Sequence[str]) -> str:
    """Render MC options the way they appear in the question prompt."""
    return "\n".join(
        f"{letter}) {choice}" for letter, choice in zip("ABCD", choices)
    )


def make_mc_question(
    qid: str,
    category: Category,
    prompt: str,
    visual: VisualContent,
    choices: Sequence[str],
    correct: int,
    *,
    difficulty: float = 0.5,
    topics: Sequence[str] = (),
    answer_kind: AnswerKind = AnswerKind.CHOICE,
    aliases: Sequence[str] = (),
    unit: str = "",
    variables: Sequence[str] = (),
    source: str = "generated",
    explanation: str = "",
) -> Question:
    """Convenience constructor for a multiple-choice question.

    The gold :class:`AnswerSpec` text is the correct option's full text, so
    the same question can later be converted to short-answer form (the
    "challenge collection") without re-deriving the answer.
    """
    choices = tuple(choices)
    answer = AnswerSpec(
        kind=answer_kind,
        text=choices[correct],
        aliases=tuple(aliases),
        unit=unit,
        variables=tuple(variables),
    )
    return Question(
        qid=qid,
        category=category,
        question_type=QuestionType.MULTIPLE_CHOICE,
        prompt=prompt,
        visual=visual,
        answer=answer,
        choices=choices,
        correct_choice=correct,
        difficulty=difficulty,
        topics=tuple(topics),
        source=source,
        explanation=explanation,
    )


def make_sa_question(
    qid: str,
    category: Category,
    prompt: str,
    visual: VisualContent,
    answer: AnswerSpec,
    *,
    difficulty: float = 0.5,
    topics: Sequence[str] = (),
    source: str = "generated",
    explanation: str = "",
) -> Question:
    """Convenience constructor for a short-answer question."""
    return Question(
        qid=qid,
        category=category,
        question_type=QuestionType.SHORT_ANSWER,
        prompt=prompt,
        visual=visual,
        answer=answer,
        difficulty=difficulty,
        topics=tuple(topics),
        source=source,
        explanation=explanation,
    )
