"""The shared evaluation-engine core behind every execution driver.

Before this module existed, the artifact/accounting logic of a run —
resume scanning, checkpoint writing, manifest assembly, telemetry
attachment, breaker fast-fail bookkeeping, exactly-once commit
reconciliation — was entangled across
:class:`~repro.core.runner.ParallelRunner`,
:class:`~repro.core.coordinator.SweepCoordinator` and
:func:`~repro.core.sweep.run_scaled_table2`, each carrying a
near-duplicate copy.  :class:`EvalEngine` extracts that core into one
submit-units/collect-results surface:

* :meth:`prepare` — validate the unit list, create the run directory,
  and resume every recoverable unit (checkpoints, and — when the
  engine carries a commit log / shared store — reconciled against the
  exactly-once accounting);
* :meth:`checkpoint` / :meth:`commit_payload` — the canonical artifact
  writes (atomic, injectable for the chaos harness), with commit-log
  dedup when configured;
* :meth:`attach_telemetry`, :meth:`fast_fail`, :meth:`write_manifest`
  — the per-unit epilogue every driver shares, byte-identical across
  backends and fleets;
* :meth:`finalize` — perf-counter snapshot, final manifest, and the
  ordered :class:`~repro.core.runner.RunOutcome`.

Drivers — the thread/process/async ``ParallelRunner``, the multi-node
``SweepCoordinator``, and the evaluation service's job executor
(:mod:`repro.service.jobs`) — own *scheduling* only: how pending units
reach :meth:`~repro.core.runner.ParallelRunner.evaluate_unit`.
Everything the artifacts are made of flows through here, which is what
keeps the golden Table II digest byte-identical whichever driver ran
the sweep.

Admission (circuit breaking, cancellation, per-tenant deadlines,
queue rejection) is delegated to a
:class:`~repro.core.resilience.AdmissionPolicy`; the optional
``on_unit_complete`` hook streams each completed unit's result to an
observer (the service's stream-results endpoint) without touching the
artifact path.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.core import perfstats, results_io
from repro.core.metrics import EvalResult
from repro.core.resilience import AdmissionPolicy

if TYPE_CHECKING:  # driver types only; engine never schedules
    from repro.core.runner import (
        RunOutcome, RunStats, UnitStats, WorkUnit,
    )

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT_VERSION = 1

#: Unit statuses that count as failures in ``RunOutcome.failures``.
FAILURE_STATUSES = ("failed", "fast_failed", "timed_out")


def payload_digest(payload: str) -> str:
    """SHA-256 of a canonical checkpoint payload — the committed identity."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class EvalEngine:
    """Artifact, resume and accounting core shared by all drivers.

    One engine serves one driver; per-run state (commit log, shared
    store) is attached by the driver before :meth:`prepare` and read
    by the resume/commit paths.  ``checkpoint_writer`` defaults to the
    atomic write-then-rename and is injectable so the chaos harness
    can tear writes at exactly the artifact boundary.
    """

    def __init__(
        self,
        run_dir: "Optional[Path | str]" = None,
        resume: bool = True,
        checkpoint_writer: Optional[Callable[[Path, str], None]] = None,
        admission: Optional[AdmissionPolicy] = None,
        on_unit_complete: Optional[
            Callable[["WorkUnit", EvalResult], None]] = None,
        on_unit_payload: Optional[
            Callable[["WorkUnit", str], None]] = None,
    ) -> None:
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.resume = resume
        self.checkpoint_writer = (checkpoint_writer
                                  or results_io.atomic_write_text)
        self.admission = admission or AdmissionPolicy()
        self.on_unit_complete = on_unit_complete
        #: byte-level completion hook: receives each unit's canonical
        #: checkpoint payload verbatim (serialize-once; the service's
        #: result stream attaches here)
        self.on_unit_payload = on_unit_payload
        #: exactly-once accounting, attached per run by coordinated
        #: drivers (duck-typed: ``committed(unit_id)`` / ``commit``)
        self.commit_log = None
        #: shared cross-node result tier, attached per run (duck-typed:
        #: ``get(unit, expected_sha256)`` / ``put(unit, payload)``)
        self.store = None
        self._manifest_lock = threading.Lock()

    # -- canonical forms -----------------------------------------------------

    @staticmethod
    def canonical_payload(result: EvalResult) -> str:
        """The byte-stable checkpoint payload of one unit result.

        ``telemetry=False`` keeps checkpoints canonical across worker
        counts, retry histories and drivers; the timing side lives in
        ``manifest.json``.  This is the **serialize-once** site: drivers
        call it exactly once per completed unit and pass the bytes (and
        their digest) through checkpoint, store, commit log and stream
        verbatim.  Each call is credited to the ``serialize`` stage
        timer, so redundant serialization shows up as counted calls.
        """
        with perfstats.stage("serialize"):
            return results_io.dumps(result, telemetry=False) + "\n"

    @staticmethod
    def matches(result: EvalResult, unit: "WorkUnit") -> bool:
        """Does a recovered result belong to this exact unit?"""
        return (result.model_name == unit.provider.name
                and result.dataset_name == unit.dataset.name
                and result.setting == unit.setting
                and result.resolution_factor == unit.resolution_factor
                and len(result.records) == len(unit.dataset))

    def checkpoint_path(self, unit: "WorkUnit") -> Optional[Path]:
        """Where ``unit``'s checkpoint lives (None without a run dir)."""
        if self.run_dir is None:
            return None
        return self.run_dir / f"{unit.unit_id}.jsonl"

    # -- run lifecycle -------------------------------------------------------

    def prepare(self, units: "Sequence[WorkUnit]", stats: "RunStats"
                ) -> "Tuple[Dict[str, EvalResult], List[WorkUnit]]":
        """Validate, create the run dir, and resume recoverable units.

        Returns ``(collected, pending)``: results recovered without
        re-evaluation (marked ``resumed`` in the stats, streamed to
        ``on_unit_complete``) and the units the driver must execute.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate unit ids in {ids}")
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
        collected: Dict[str, EvalResult] = {}
        pending: "List[WorkUnit]" = []
        for unit in units:
            unit_stats = stats.unit(unit.unit_id)
            resumed = self.resume_unit(unit, unit_stats)
            if resumed is not None:
                unit_stats.status = "resumed"
                resumed.telemetry = {"resumed": 1.0}
                collected[unit.unit_id] = resumed
                self.unit_completed(unit, resumed)
            else:
                pending.append(unit)
        return collected, pending

    def resume_unit(self, unit: "WorkUnit",
                    unit_stats: "UnitStats") -> Optional[EvalResult]:
        """Recover one unit from its checkpoint (and, when attached,
        the shared store), reconciled against the commit log.

        Rejections are never silent: a file that fails to parse or
        checksum counts as a ``corrupt_checkpoint``, a metadata or
        record-count mismatch as a ``stale_checkpoint``.  With a commit
        log attached, the log is the identity authority — an intact
        checkpoint whose digest disagrees with the committed one counts
        corrupt; an uncommitted artifact (a torn log tail) is
        re-committed on the spot; a commit with no surviving artifact
        falls through to the store, then to re-execution (which the
        commit gate dedups).
        """
        if not self.resume:
            return None
        log = self.commit_log
        unit_id = unit.unit_id
        committed = log.committed(unit_id) if log is not None else None
        path = self.checkpoint_path(unit)
        if path is not None and path.exists():
            result: Optional[EvalResult] = None
            try:
                result = results_io.load(path)
            except (ValueError, KeyError):
                # truncated, torn or checksum-mismatched: re-evaluate
                unit_stats.corrupt_checkpoints += 1
            if result is not None:
                if not self.matches(result, unit):
                    unit_stats.stale_checkpoints += 1
                elif log is None:
                    return result
                else:
                    canonical = self.canonical_payload(result)
                    if committed is None:
                        # the chain digest is computed over the exact
                        # canonical bytes, inside the log, once
                        log.append_commit(unit_id, canonical, "resume")
                        return result
                    if payload_digest(canonical) == committed:
                        return result
                    unit_stats.corrupt_checkpoints += 1
        if self.store is not None:
            payload = self.store.get(unit, expected_sha256=committed)
            if payload is not None:
                if self.run_dir is not None:
                    self.checkpoint_writer(
                        self.run_dir / f"{unit_id}.jsonl", payload)
                if log is not None and committed is None:
                    log.append_commit(unit_id, payload, "store")
                return results_io.loads(payload)
        return None

    # -- artifact writes -----------------------------------------------------

    def checkpoint(self, unit: "WorkUnit", result: EvalResult) -> None:
        """Write ``unit``'s canonical checkpoint (no-op without a run
        dir); the writer is atomic by default and chaos-injectable."""
        path = self.checkpoint_path(unit)
        if path is None:
            return
        payload = self.canonical_payload(result)
        with perfstats.stage("commit"):
            self.checkpoint_writer(path, payload)

    def checkpoint_bytes(self, unit: "WorkUnit", payload: str) -> None:
        """Write an already-serialized checkpoint payload verbatim."""
        path = self.checkpoint_path(unit)
        if path is None:
            return
        with perfstats.stage("commit"):
            self.checkpoint_writer(path, payload)

    def commit_payload(self, unit: "WorkUnit", payload: str,
                       node: str, digest: Optional[str] = None) -> str:
        """Write one already-serialized payload through every attached
        tier — checkpoint, shared store, commit log — and return the
        commit status (``"committed"``, ``"duplicate"``, or
        ``"untracked"`` when no log is attached).

        ``digest`` is the payload's sha256 when the caller already
        computed it (the coordinator's dedup gate does); it is computed
        here exactly once otherwise and carried verbatim into the store
        and the commit log — no tier re-hashes the bytes.

        The exactly-once gate lives in the log: a re-executed unit
        whose bytes match the committed digest is a counted duplicate,
        a mismatch raises
        :class:`~repro.core.coordinator.CommitConflict`.
        """
        with perfstats.stage("commit"):
            if digest is None:
                digest = payload_digest(payload)
            if self.run_dir is not None:
                self.checkpoint_writer(
                    self.run_dir / f"{unit.unit_id}.jsonl", payload)
            if self.store is not None:
                self.store.put(unit, payload, digest=digest)
            if self.commit_log is None:
                return "untracked"
            return self.commit_log.commit(unit.unit_id, digest, node)

    # -- per-unit epilogue ---------------------------------------------------

    @staticmethod
    def attach_telemetry(result: EvalResult, unit_stats: "UnitStats",
                         perf_delta: Dict[str, Dict[str, int]]) -> None:
        """Attach the run-side telemetry block to a completed result.

        Telemetry never reaches checkpoints (they are canonical); it
        rides on the in-memory result so callers see wall time, retry
        and cache movement per unit.
        """
        result.telemetry = {
            "wall_time_s": unit_stats.wall_time_s,
            "attempts": float(unit_stats.attempts),
            "retries": float(unit_stats.retries),
            "cache_hits": float(unit_stats.cache_hits),
            "cache_misses": float(unit_stats.cache_misses),
            "perf_cache_hits": float(
                perfstats.total(perf_delta, "hits")),
            "perf_cache_misses": float(
                perfstats.total(perf_delta, "misses")),
        }
        if unit_stats.quarantined:
            result.telemetry["quarantined"] = float(
                unit_stats.quarantined)

    def fast_fail(self, unit_stats: "UnitStats", error: str) -> None:
        """Record an admission refusal as the unit's terminal state."""
        unit_stats.status = "fast_failed"
        unit_stats.error = error

    def unit_completed(self, unit: "WorkUnit", result: EvalResult,
                       payload: Optional[str] = None) -> None:
        """Fire the completion hooks (resumed and fresh units alike).

        ``payload`` is the unit's canonical checkpoint bytes when the
        driver already holds them; the byte-level ``on_unit_payload``
        hook (the service result stream) receives them verbatim instead
        of re-serialising the result.  Drivers that never produced the
        bytes (a resume from an in-memory artifact) leave ``payload``
        unset and the hook serialises once on their behalf.
        """
        if self.on_unit_complete is not None:
            self.on_unit_complete(unit, result)
        if self.on_unit_payload is not None:
            if payload is None:
                payload = self.canonical_payload(result)
            with perfstats.stage("stream"):
                self.on_unit_payload(unit, payload)

    # -- manifest + outcome --------------------------------------------------

    def write_manifest(self, units: "Sequence[WorkUnit]",
                       stats: "RunStats",
                       extra: Optional[Dict[str, object]] = None) -> None:
        """Write the run's progress manifest (atomic, lock-serialized).

        ``extra`` merges driver-specific top-level blocks (the
        coordinator's fleet counters); the breaker snapshot appears
        whenever the admission policy carries one.
        """
        if self.run_dir is None:
            return
        with self._manifest_lock:
            payload: Dict[str, object] = {
                "format_version": MANIFEST_FORMAT_VERSION,
                "units": [
                    dict(stats.unit(unit.unit_id).as_dict(),
                         path=f"{unit.unit_id}.jsonl",
                         provider=unit.provider.name,
                         provider_fingerprint=(
                             unit.provider.config_fingerprint()))
                    for unit in units
                ],
                "totals": stats.as_dict(),
            }
            if extra:
                payload.update(extra)
            if self.admission.breaker is not None:
                payload["breaker"] = self.admission.breaker.as_dict()
            results_io.atomic_write_text(
                self.run_dir / MANIFEST_NAME,
                json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def finalize(self, units: "Sequence[WorkUnit]", stats: "RunStats",
                 collected: Dict[str, EvalResult],
                 extra: Optional[Dict[str, object]] = None
                 ) -> "RunOutcome":
        """Snapshot perf counters, write the final manifest, and fold
        everything into an input-ordered :class:`RunOutcome`."""
        from repro.core.runner import RunOutcome

        stats.record_perf_caches(perfstats.snapshot())
        self.write_manifest(units, stats, extra=extra)
        ordered = {unit.unit_id: collected[unit.unit_id]
                   for unit in units if unit.unit_id in collected}
        failures = {
            unit.unit_id: stats.unit(unit.unit_id).error or "failed"
            for unit in units
            if stats.unit(unit.unit_id).status in FAILURE_STATUSES
        }
        return RunOutcome(results=ordered, stats=stats, failures=failures)


def build_driver(
    harness=None,
    *,
    workers: int = 1,
    nodes: int = 1,
    backend=None,
    run_dir: "Optional[Path | str]" = None,
    resume: bool = True,
    quarantine=None,
    breaker=None,
    deadline_s: Optional[float] = None,
    spill_dir: "Optional[Path | str]" = None,
):
    """Resolve the (workers, nodes, backend) knobs to an execution driver.

    The selection logic the CLI and :mod:`repro.core.sweep` used to
    duplicate: ``nodes > 1`` builds a fault-tolerant
    :class:`~repro.core.coordinator.SweepCoordinator` fleet (inline
    nodes by default, process groups under ``backend="process"``),
    anything else a single :class:`~repro.core.runner.ParallelRunner`
    over the requested backend.  The two parallelism knobs are
    exclusive — a coordinated fleet runs one unit per node.
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if nodes > 1:
        if workers > 1:
            raise ValueError(
                "pass workers (one runner) or nodes (a coordinated "
                "fleet), not both")
        from repro.core.coordinator import SweepCoordinator

        return SweepCoordinator(
            nodes=nodes,
            harness=harness,
            node_backend=("process" if backend == "process" else "inline"),
            run_dir=run_dir,
            resume=resume,
            quarantine=quarantine,
            breaker=breaker,
            deadline_s=deadline_s,
            spill_dir=spill_dir)
    from repro.core.runner import ParallelRunner

    return ParallelRunner(
        harness=harness,
        workers=workers,
        run_dir=run_dir,
        resume=resume,
        quarantine=quarantine,
        breaker=breaker,
        deadline_s=deadline_s,
        backend=backend,
        spill_dir=spill_dir)
