"""Process-wide cache telemetry: counters and a shared thread-safe LRU.

Every memoization layer in the perception pipeline — the raster render
cache, the raster legibility cache, the encoder perception cache and the
dataset cache — is built on :class:`LruCache` and exports hit/miss/
eviction counters through the registry here.  The parallel runner folds
:func:`snapshot` into its :class:`~repro.core.runner.RunStats` telemetry
and ``manifest.json``, so cache effectiveness is observable in every run
artifact rather than asserted in a benchmark once.

Each :class:`LruCache` may additionally be backed by an on-disk,
content-addressed :class:`SpillStore` (see :func:`enable_spill`): a
memory miss consults the store before recomputing, and every put is
written through, so sibling *processes* — the multiprocess execution
backend's workers — share perception work instead of each paying the
cold-start cost.  Spill traffic has its own ``spill_hits`` /
``spill_misses`` counters, reported only once the tier has been
consulted so snapshots stay stable for spill-free runs.

The module is deliberately stdlib-only: it sits below
:mod:`repro.visual`, :mod:`repro.models` and :mod:`repro.core`'s
heavier modules in the import graph and must stay importable from any
of them.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any, Callable, ContextManager, Dict, Hashable, Iterator, List,
    Optional, Tuple,
)


class CacheStats:
    """Thread-safe hit/miss/eviction counters for one named cache."""

    __slots__ = ("name", "_lock", "hits", "misses", "evictions",
                 "spill_hits", "spill_misses", "spill_corrupt")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_hits = 0
        self.spill_misses = 0
        self.spill_corrupt = 0

    def record_hit(self, count: int = 1) -> None:
        with self._lock:
            self.hits += count

    def record_miss(self, count: int = 1) -> None:
        with self._lock:
            self.misses += count

    def record_eviction(self, count: int = 1) -> None:
        with self._lock:
            self.evictions += count

    def record_spill_hit(self, count: int = 1) -> None:
        """A lookup served from the on-disk spill tier."""
        with self._lock:
            self.spill_hits += count

    def record_spill_miss(self, count: int = 1) -> None:
        """A spill-tier probe that found nothing on disk."""
        with self._lock:
            self.spill_misses += count

    def record_spill_corrupt(self, count: int = 1) -> None:
        """A spill entry evicted because it no longer parsed/decoded."""
        with self._lock:
            self.spill_corrupt += count

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            data = {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}
            # spill counters appear only once the tier has been consulted,
            # keeping snapshots byte-stable for spill-free configurations.
            if self.spill_hits or self.spill_misses:
                data["spill_hits"] = self.spill_hits
                data["spill_misses"] = self.spill_misses
            if self.spill_corrupt:
                data["spill_corrupt"] = self.spill_corrupt
            return data

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.spill_hits = 0
            self.spill_misses = 0
            self.spill_corrupt = 0


#: A spill codec: ``(encode, decode)`` where ``encode(value)`` returns a
#: JSON-serialisable payload and ``decode(payload)`` reconstructs the
#: value.  Caches without a codec are never spilled to disk.
SpillCodec = Tuple[Callable[[Any], Any], Callable[[Any], Any]]

#: Codec for values that are already JSON-native (floats, strings, …).
JSON_VALUE_CODEC: SpillCodec = (lambda value: value, lambda payload: payload)


class SpillStore:
    """Content-addressed on-disk cache tier shared across processes.

    Entries live under ``<root>/<cache name>/<aa>/<sha256>.json`` where
    the digest is the sha256 of the cache key's ``repr`` — keys are
    tuples of primitives, so the digest is deterministic across
    processes.  Writes are atomic (pid-unique temp file, then rename),
    so concurrent workers can never observe a torn entry; an existing
    entry is never rewritten, which makes write-through from many
    sibling processes cheap.

    A *corrupt* entry — one that exists but no longer parses or decodes
    (an external truncation, a bit flip on disk) — is **quarantined**:
    the bad file is evicted so the next put can rebuild it, the event is
    counted in the owning cache's ``spill_corrupt`` counter (when
    ``stats`` is attached), and the lookup degrades to a miss so the
    caller recomputes instead of crashing.  A missing entry is a plain
    miss and touches no counter.
    """

    def __init__(self, root: "Path | str", name: str,
                 encode: Callable[[Any], Any],
                 decode: Callable[[Any], Any],
                 stats: Optional[CacheStats] = None) -> None:
        self.root = Path(root) / name
        self._encode = encode
        self._decode = decode
        self.stats = stats

    def path_for(self, key: Hashable) -> Path:
        """Deterministic on-disk location of ``key``'s entry."""
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.root / digest[:2] / (digest + ".json")

    def evict(self, key: Hashable) -> bool:
        """Remove ``key``'s entry from disk; True if a file was removed."""
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def _quarantine(self, key: Hashable) -> None:
        """Evict a corrupt entry and count it (never raises)."""
        self.evict(key)
        if self.stats is not None:
            self.stats.record_spill_corrupt()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Decode the stored value for ``key``, or ``default``.

        Corrupt entries are quarantined (evicted + counted) and fall
        through to ``default`` so callers recompute; see the class
        docstring.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return default
        try:
            payload = json.loads(text)
            return self._decode(payload)
        except (KeyError, TypeError, ValueError):
            self._quarantine(key)
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Persist ``value`` under ``key`` (no-op if already present).

        The temp-file name embeds the writer's pid: sibling *processes*
        racing to spill the same key must not share a temp path, or the
        loser's rename fails after the winner consumed it.  Entries are
        pure functions of their key, so whichever writer wins, the
        stored value is the same — a lost race is silently dropped.
        """
        path = self.path_for(key)
        if path.exists():
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(self._encode(value), sort_keys=True),
                           encoding="utf-8")
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


class LruCache:
    """A bounded, thread-safe LRU mapping with integrated counters.

    Values must be safe to share between callers (the perception caches
    store immutable floats and read-only arrays).  ``get_or_create``
    runs the factory *outside* the lock: under a race two threads may
    both compute, but entries are pure functions of their key, so the
    duplicate work is benign and lock hold times stay tiny.

    A cache constructed with a ``spill_codec`` can be backed by a
    :class:`SpillStore` (see :func:`enable_spill`): ``get`` consults the
    store after a memory miss (promoting found values back into
    memory), ``put`` writes through.  Because every entry is a pure
    function of its key, the disk tier never changes results — it only
    moves the compute.
    """

    def __init__(self, capacity: int, name: Optional[str] = None,
                 stats: Optional[CacheStats] = None,
                 spill_codec: Optional[SpillCodec] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = stats or CacheStats(name or "anonymous")
        self.spill_codec = spill_codec
        self._spill: Optional[SpillStore] = None
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        if name is not None:
            register(name, self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership probe; does not touch the counters or LRU order."""
        with self._lock:
            return key in self._entries

    @property
    def spill(self) -> Optional[SpillStore]:
        """The attached on-disk spill store, if any."""
        return self._spill

    def attach_spill(self, store: SpillStore) -> None:
        """Back this cache with an on-disk spill tier."""
        self._spill = store

    def detach_spill(self) -> None:
        """Remove the on-disk spill tier (entries on disk are kept)."""
        self._spill = None

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look ``key`` up, counting a hit or miss and refreshing recency.

        With a spill store attached, a memory miss falls through to the
        disk tier; a value found there counts as a hit (plus a
        ``spill_hit``) and is promoted back into memory.
        """
        sentinel = _MISS
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                value = self._entries[key]
            else:
                value = sentinel
        if value is not sentinel:
            self.stats.record_hit()
            return value
        spill = self._spill
        if spill is not None:
            value = spill.get(key, sentinel)
            if value is not sentinel:
                self.stats.record_spill_hit()
                self.stats.record_hit()
                self._store(key, value)
                return value
            self.stats.record_spill_miss()
        self.stats.record_miss()
        return default

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look ``key`` up without touching counters or recency."""
        with self._lock:
            return self._entries.get(key, default)

    def values(self) -> List[Any]:
        """Snapshot of the in-memory tier's values, LRU-first.

        Does not touch counters or recency; used by residency gauges
        (e.g. ``StreamingDataset.peak_resident_questions``) to measure
        what the memory tier is actually holding.
        """
        with self._lock:
            return list(self._entries.values())

    def _store(self, key: Hashable, value: Any) -> None:
        """Insert into the in-memory tier only, counting evictions."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.stats.record_eviction(evicted)

    def put(self, key: Hashable, value: Any) -> None:
        self._store(key, value)
        spill = self._spill
        if spill is not None:
            spill.put(key, value)

    def get_or_create(self, key: Hashable,
                      factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (counters are left untouched; see ``reset``)."""
        with self._lock:
            self._entries.clear()

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        self.clear()
        self.stats.reset()

    def snapshot(self) -> Dict[str, int]:
        """Counters plus the current entry count."""
        data = self.stats.snapshot()
        data["size"] = len(self)
        return data


_MISS = object()

_REGISTRY_LOCK = threading.Lock()
_REGISTRY: Dict[str, LruCache] = {}


# -- per-stage hot-path timers ------------------------------------------------

#: Registry entry name the stage timers publish under in :func:`snapshot`.
STAGE_TIMINGS_NAME = "stage_timings"

#: Stage names the sweep pipeline records (see docs/PERF.md): time the
#: evaluator spent blocked waiting for a shard build, evaluating,
#: serialising canonical payloads, committing artifacts (checkpoint +
#: store + commit log), and streaming results to observers.
PIPELINE_STAGES = ("build_wait", "eval", "serialize", "commit", "stream")


class StageTimings:
    """Thread-safe per-stage wall-clock accumulators.

    Durations are integer **nanoseconds** (``{stage}_ns``) with a call
    count (``{stage}_calls``), so a stage entry merges through
    :func:`merge_counters` / :func:`delta` exactly like any cache
    counter — which is what carries worker-process stage time back to
    the parent on each :class:`~repro.core.executor.WorkerResult`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ns: Dict[str, int] = {}
        self._calls: Dict[str, int] = {}

    def add(self, stage: str, ns: int, calls: int = 1) -> None:
        with self._lock:
            self._ns[stage] = self._ns.get(stage, 0) + int(ns)
            self._calls[stage] = self._calls.get(stage, 0) + calls

    @contextmanager
    def timed(self, stage: str) -> Iterator[None]:
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter_ns() - start)

    def snapshot(self) -> Dict[str, int]:
        """``{stage}_ns`` + ``{stage}_calls`` for every recorded stage.

        Empty until a stage has been timed, so runs that never touch
        the pipeline keep the historical snapshot shape byte-for-byte.
        """
        with self._lock:
            data: Dict[str, int] = {}
            for name in sorted(self._ns):
                data[f"{name}_ns"] = self._ns[name]
                data[f"{name}_calls"] = self._calls.get(name, 0)
            return data

    def reset(self) -> None:
        with self._lock:
            self._ns.clear()
            self._calls.clear()


_STAGES = StageTimings()


def stage(name: str) -> "ContextManager[None]":
    """Time one pipeline stage: ``with perfstats.stage("commit"): ...``."""
    return _STAGES.timed(name)


def record_stage(name: str, ns: int, calls: int = 1) -> None:
    """Credit ``ns`` nanoseconds to ``name`` without a context manager
    (for durations measured elsewhere, e.g. a worker's wall time)."""
    _STAGES.add(name, ns, calls)


def stage_snapshot() -> Dict[str, int]:
    """The stage timers alone (a view into :func:`snapshot`'s entry)."""
    return _STAGES.snapshot()


def stage_seconds(counters: Dict[str, Dict[str, int]],
                  name: str) -> float:
    """One stage's accumulated seconds out of a snapshot-shaped dict."""
    entry = counters.get(STAGE_TIMINGS_NAME, {})
    return entry.get(f"{name}_ns", 0) / 1e9


# -- consumer idle windows ----------------------------------------------------

_IDLE_LOCK = threading.Lock()
_IDLE_DEPTH = 0
_IDLE_EVENT = threading.Event()


@contextmanager
def idle_window(stage_name: str = "transport_wait") -> Iterator[None]:
    """Mark a window in which the calling thread is blocked off-CPU.

    Transport layers wrap their latency waits (a socket read, a
    simulated endpoint's sleep) in this context.  Two things happen:
    the wait is credited to the ``stage_name`` stage timer, and a
    process-wide event (:func:`idle_event`) is raised for as long as at
    least one window is open — the hint background workers (the shard
    prefetcher's builder pool on single-CPU hosts) use to schedule
    their CPU bursts inside the waits of the foreground consumer
    instead of timeslicing against its compute phases.
    """
    global _IDLE_DEPTH
    with _IDLE_LOCK:
        _IDLE_DEPTH += 1
        _IDLE_EVENT.set()
    start = time.perf_counter_ns()
    try:
        yield
    finally:
        record_stage(stage_name, time.perf_counter_ns() - start)
        with _IDLE_LOCK:
            _IDLE_DEPTH -= 1
            if _IDLE_DEPTH == 0:
                _IDLE_EVENT.clear()


def idle_event() -> threading.Event:
    """The event raised while any :func:`idle_window` is open."""
    return _IDLE_EVENT


def register(name: str, cache: LruCache) -> LruCache:
    """Register ``cache`` under ``name`` (last registration wins)."""
    with _REGISTRY_LOCK:
        _REGISTRY[name] = cache
    return cache


def get_cache(name: str) -> Optional[LruCache]:
    """The cache registered under ``name``, or ``None``."""
    with _REGISTRY_LOCK:
        return _REGISTRY.get(name)


def cache_names() -> List[str]:
    """Sorted names of every registered cache."""
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def snapshot() -> Dict[str, Dict[str, int]]:
    """Counters of every registered cache, keyed by cache name.

    When any pipeline stage has been timed, a
    :data:`STAGE_TIMINGS_NAME` entry rides along in the same shape —
    integer counters keyed by name — so stage time flows through the
    existing ``RunStats`` → manifest → ``--cache-stats`` / ``/metrics``
    plumbing without a parallel channel.
    """
    with _REGISTRY_LOCK:
        caches = dict(_REGISTRY)
    data = {name: cache.snapshot()
            for name, cache in sorted(caches.items())}
    stages = _STAGES.snapshot()
    if stages:
        data[STAGE_TIMINGS_NAME] = stages
    return data


def delta(before: Dict[str, Dict[str, int]],
          after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Counter movement between two :func:`snapshot` calls.

    ``size`` is reported as the *after* value (it is a level, not a
    counter); caches absent from ``before`` count from zero.
    """
    moved: Dict[str, Dict[str, int]] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        moved[name] = {
            key: (value if key == "size" else value - base.get(key, 0))
            for key, value in counters.items()
        }
    return moved


def total(counters: Dict[str, Dict[str, int]], field: str) -> int:
    """Sum one counter field across a snapshot (e.g. all hits)."""
    return sum(entry.get(field, 0) for entry in counters.values())


def merge_counters(
    into: Dict[str, Dict[str, int]],
    moved: Dict[str, Dict[str, int]],
) -> Dict[str, Dict[str, int]]:
    """Accumulate one snapshot-shaped delta into another, in place.

    Counter fields add; the ``size`` field is a level, not a counter,
    so it takes the maximum.  Used to fold per-worker-process counter
    movement back into a run-level view (see
    :attr:`repro.core.runner.RunStats.perf_caches`).  Returns ``into``.
    """
    for name, counters in moved.items():
        entry = into.setdefault(name, {})
        for key, value in counters.items():
            if key == "size":
                entry[key] = max(entry.get(key, 0), value)
            else:
                entry[key] = entry.get(key, 0) + value
    return into


_SPILL_LOCK = threading.Lock()
_SPILL_ROOT: Optional[str] = None


def enable_spill(root: "Path | str") -> List[str]:
    """Attach an on-disk spill tier to every spill-capable cache.

    Only caches constructed with a ``spill_codec`` participate; the
    rest (e.g. the dataset cache, whose values are not serialisable)
    are untouched.  Idempotent; re-enabling with a different root
    repoints the stores.  Returns the attached cache names, sorted.
    """
    global _SPILL_ROOT
    with _SPILL_LOCK:
        with _REGISTRY_LOCK:
            caches = dict(_REGISTRY)
        attached = []
        for name, cache in sorted(caches.items()):
            if cache.spill_codec is None:
                continue
            encode, decode = cache.spill_codec
            cache.attach_spill(SpillStore(root, name, encode, decode,
                                          stats=cache.stats))
            attached.append(name)
        _SPILL_ROOT = str(root)
    return attached


def disable_spill() -> None:
    """Detach the spill tier everywhere (on-disk entries are kept)."""
    global _SPILL_ROOT
    with _SPILL_LOCK:
        with _REGISTRY_LOCK:
            caches = list(_REGISTRY.values())
        for cache in caches:
            cache.detach_spill()
        _SPILL_ROOT = None


def spill_root() -> Optional[str]:
    """The directory spill stores are rooted at, or ``None`` if off."""
    with _SPILL_LOCK:
        return _SPILL_ROOT


def reset() -> None:
    """Empty every registered cache and zero its counters (test hook)."""
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY.values())
    for cache in caches:
        cache.reset()
    _STAGES.reset()
