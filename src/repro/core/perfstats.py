"""Process-wide cache telemetry: counters and a shared thread-safe LRU.

Every memoization layer in the perception pipeline — the raster render
cache, the raster legibility cache, the encoder perception cache and the
dataset cache — is built on :class:`LruCache` and exports hit/miss/
eviction counters through the registry here.  The parallel runner folds
:func:`snapshot` into its :class:`~repro.core.runner.RunStats` telemetry
and ``manifest.json``, so cache effectiveness is observable in every run
artifact rather than asserted in a benchmark once.

The module is deliberately dependency-free (``threading`` and
``collections`` only): it sits below :mod:`repro.visual`,
:mod:`repro.models` and :mod:`repro.core`'s heavier modules in the
import graph and must stay importable from any of them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional


class CacheStats:
    """Thread-safe hit/miss/eviction counters for one named cache."""

    __slots__ = ("name", "_lock", "hits", "misses", "evictions")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def record_hit(self, count: int = 1) -> None:
        with self._lock:
            self.hits += count

    def record_miss(self, count: int = 1) -> None:
        with self._lock:
            self.misses += count

    def record_eviction(self, count: int = 1) -> None:
        with self._lock:
            self.evictions += count

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when untouched)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0


class LruCache:
    """A bounded, thread-safe LRU mapping with integrated counters.

    Values must be safe to share between callers (the perception caches
    store immutable floats and read-only arrays).  ``get_or_create``
    runs the factory *outside* the lock: under a race two threads may
    both compute, but entries are pure functions of their key, so the
    duplicate work is benign and lock hold times stay tiny.
    """

    def __init__(self, capacity: int, name: Optional[str] = None,
                 stats: Optional[CacheStats] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = stats or CacheStats(name or "anonymous")
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        if name is not None:
            register(name, self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership probe; does not touch the counters or LRU order."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look ``key`` up, counting a hit or miss and refreshing recency."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                value = self._entries[key]
                hit = True
            else:
                value = default
                hit = False
        if hit:
            self.stats.record_hit()
        else:
            self.stats.record_miss()
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look ``key`` up without touching counters or recency."""
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self.stats.record_eviction(evicted)

    def get_or_create(self, key: Hashable,
                      factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (counters are left untouched; see ``reset``)."""
        with self._lock:
            self._entries.clear()

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        self.clear()
        self.stats.reset()

    def snapshot(self) -> Dict[str, int]:
        """Counters plus the current entry count."""
        data = self.stats.snapshot()
        data["size"] = len(self)
        return data


_MISS = object()

_REGISTRY_LOCK = threading.Lock()
_REGISTRY: Dict[str, LruCache] = {}


def register(name: str, cache: LruCache) -> LruCache:
    """Register ``cache`` under ``name`` (last registration wins)."""
    with _REGISTRY_LOCK:
        _REGISTRY[name] = cache
    return cache


def get_cache(name: str) -> Optional[LruCache]:
    """The cache registered under ``name``, or ``None``."""
    with _REGISTRY_LOCK:
        return _REGISTRY.get(name)


def cache_names() -> List[str]:
    """Sorted names of every registered cache."""
    with _REGISTRY_LOCK:
        return sorted(_REGISTRY)


def snapshot() -> Dict[str, Dict[str, int]]:
    """Counters of every registered cache, keyed by cache name."""
    with _REGISTRY_LOCK:
        caches = dict(_REGISTRY)
    return {name: cache.snapshot() for name, cache in sorted(caches.items())}


def delta(before: Dict[str, Dict[str, int]],
          after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Counter movement between two :func:`snapshot` calls.

    ``size`` is reported as the *after* value (it is a level, not a
    counter); caches absent from ``before`` count from zero.
    """
    moved: Dict[str, Dict[str, int]] = {}
    for name, counters in after.items():
        base = before.get(name, {})
        moved[name] = {
            key: (value if key == "size" else value - base.get(key, 0))
            for key, value in counters.items()
        }
    return moved


def total(counters: Dict[str, Dict[str, int]], field: str) -> int:
    """Sum one counter field across a snapshot (e.g. all hits)."""
    return sum(entry.get(field, 0) for entry in counters.values())


def reset() -> None:
    """Empty every registered cache and zero its counters (test hook)."""
    with _REGISTRY_LOCK:
        caches = list(_REGISTRY.values())
    for cache in caches:
        cache.reset()
