"""Clock-tree synthesis: H-trees, skew analysis, useful skew, buffering."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.physical.geometry import Point


@dataclass(frozen=True)
class ClockSink:
    name: str
    location: Point
    insertion_delay: float  # source-to-sink latency, ns


def skew(sinks: Sequence[ClockSink]) -> float:
    """Global skew: max minus min insertion delay."""
    if not sinks:
        raise ValueError("no sinks")
    delays = [s.insertion_delay for s in sinks]
    return max(delays) - min(delays)


def local_skew(a: ClockSink, b: ClockSink) -> float:
    """Signed skew between two specific sinks."""
    return a.insertion_delay - b.insertion_delay


def h_tree_levels(n_sinks: int) -> int:
    """Levels of a balanced H-tree serving ``n_sinks`` (power of 4)."""
    if n_sinks < 1:
        raise ValueError("need at least one sink")
    levels = 0
    while 4 ** levels < n_sinks:
        levels += 1
    return levels


def h_tree_wirelength(chip_side: float, levels: int) -> float:
    """Total wirelength of an H-tree over a square die.

    Level 1 is one 'H' of total length 2 * side/2 + side/2 ... modelled
    recursively: each level adds 4^(k-1) H-shapes of size side / 2^(k-1),
    each H contributing 1.5x its span.
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    total = 0.0
    for k in range(1, levels + 1):
        span = chip_side / (2 ** (k - 1))
        total += (4 ** (k - 1)) * 1.5 * span
    return total


def h_tree_sink_delay_balanced(chip_side: float, levels: int,
                               delay_per_unit: float) -> float:
    """Source-to-sink wire delay of an ideal H-tree (identical all sinks).

    Path length halves per level: side/2 + side/4 + ... over ``levels``.
    """
    length = sum(chip_side / (2 ** k) for k in range(1, levels + 1))
    return length * delay_per_unit


def setup_slack(clock_period: float, data_arrival: float,
                setup_time: float, capture_skew: float = 0.0) -> float:
    """Setup slack = T + skew(capture - launch) - arrival - t_setup."""
    return clock_period + capture_skew - data_arrival - setup_time


def hold_slack(data_arrival: float, hold_time: float,
               capture_skew: float = 0.0) -> float:
    """Hold slack = arrival - skew - t_hold (same-edge check)."""
    return data_arrival - capture_skew - hold_time


def min_period(data_arrival: float, setup_time: float,
               capture_skew: float = 0.0) -> float:
    """Smallest clock period with non-negative setup slack."""
    return data_arrival + setup_time - capture_skew


def useful_skew_gain(path_delays: Sequence[float]) -> float:
    """Period reduction available by skewing registers (retiming bound).

    With arbitrary intentional skew the achievable period approaches the
    *average* stage delay instead of the maximum; the gain is the
    difference.
    """
    if not path_delays:
        raise ValueError("no paths")
    return max(path_delays) - sum(path_delays) / len(path_delays)


def buffers_needed(total_cap_ff: float, drive_cap_ff: float) -> int:
    """Buffers to drive a capacitive load within a per-buffer budget."""
    if drive_cap_ff <= 0:
        raise ValueError("drive capability must be positive")
    if total_cap_ff < 0:
        raise ValueError("load must be non-negative")
    return max(1, math.ceil(total_cap_ff / drive_cap_ff))


def elmore_delay(r_stages: Sequence[float],
                 c_stages: Sequence[float]) -> float:
    """Elmore delay of an RC ladder: sum_i R_upstream(i) * C_i.

    ``r_stages[i]`` is the resistance of segment i (source side first),
    ``c_stages[i]`` the capacitance at its downstream node.
    """
    if len(r_stages) != len(c_stages):
        raise ValueError("mismatched RC stage lists")
    delay = 0.0
    upstream = 0.0
    for r, c in zip(r_stages, c_stages):
        upstream += r
        delay += upstream * c
    return delay
