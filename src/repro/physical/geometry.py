"""Planar geometry primitives for physical design: points, rects, nets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (rectilinear) distance."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def __iter__(self):
        yield self.x
        yield self.y


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle, (x, y) is the lower-left corner."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError("negative rectangle dimensions")

    @property
    def x2(self) -> float:
        return self.x + self.w

    @property
    def y2(self) -> float:
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> Point:
        return Point(self.x + self.w / 2.0, self.y + self.h / 2.0)

    def overlaps(self, other: "Rect") -> bool:
        """Strict interior overlap (shared edges do not count)."""
        return (self.x < other.x2 and other.x < self.x2
                and self.y < other.y2 and other.y < self.y2)

    def spacing_to(self, other: "Rect") -> float:
        """Minimum edge-to-edge distance (0 when touching or overlapping)."""
        dx = max(0.0, max(self.x, other.x) - min(self.x2, other.x2))
        dy = max(0.0, max(self.y, other.y) - min(self.y2, other.y2))
        if self.overlaps(other):
            return 0.0
        if dx > 0 and dy > 0:
            return (dx * dx + dy * dy) ** 0.5
        return max(dx, dy)

    def contains_point(self, point: Point) -> bool:
        return self.x <= point.x <= self.x2 and self.y <= point.y <= self.y2


def bounding_box(points: Iterable[Point]) -> Rect:
    """Smallest axis-aligned rectangle containing the points."""
    points = list(points)
    if not points:
        raise ValueError("bounding box of nothing")
    min_x = min(p.x for p in points)
    min_y = min(p.y for p in points)
    max_x = max(p.x for p in points)
    max_y = max(p.y for p in points)
    return Rect(min_x, min_y, max_x - min_x, max_y - min_y)


def hpwl(points: Iterable[Point]) -> float:
    """Half-perimeter wirelength of a net — the standard placement metric."""
    box = bounding_box(points)
    return box.w + box.h


def total_hpwl(nets: Sequence[Sequence[Point]]) -> float:
    """Sum of per-net HPWL over a netlist."""
    return sum(hpwl(net) for net in nets)
