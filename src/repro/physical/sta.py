"""Static timing analysis on a combinational timing graph.

A :class:`TimingGraph` is a DAG of pins with delay-annotated arcs.  Provides
arrival/required-time propagation, slack, critical-path extraction — the STA
mechanics Physical Design questions test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Arc:
    src: str
    dst: str
    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("negative arc delay")


class TimingGraph:
    """Delay-annotated DAG with startpoints (inputs) and endpoints."""

    def __init__(self) -> None:
        self._arcs: List[Arc] = []
        self._succ: Dict[str, List[Arc]] = {}
        self._pred: Dict[str, List[Arc]] = {}
        self._nodes: Set[str] = set()

    def arc(self, src: str, dst: str, delay: float) -> "TimingGraph":
        edge = Arc(src, dst, delay)
        self._arcs.append(edge)
        self._succ.setdefault(src, []).append(edge)
        self._pred.setdefault(dst, []).append(edge)
        self._nodes.add(src)
        self._nodes.add(dst)
        return self

    @property
    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def startpoints(self) -> List[str]:
        return sorted(n for n in self._nodes if n not in self._pred)

    def endpoints(self) -> List[str]:
        return sorted(n for n in self._nodes if n not in self._succ)

    def _toposort(self) -> List[str]:
        indegree = {n: 0 for n in self._nodes}
        for arc in self._arcs:
            indegree[arc.dst] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for arc in self._succ.get(node, ()):
                indegree[arc.dst] -= 1
                if indegree[arc.dst] == 0:
                    ready.append(arc.dst)
            ready.sort()
        if len(order) != len(self._nodes):
            raise ValueError("timing graph has a cycle")
        return order

    def arrival_times(
        self, input_arrivals: Optional[Dict[str, float]] = None
    ) -> Dict[str, float]:
        """Latest arrival at every node (inputs default to 0)."""
        arrivals = {n: 0.0 for n in self.startpoints()}
        if input_arrivals:
            arrivals.update(input_arrivals)
        for node in self._toposort():
            for arc in self._succ.get(node, ()):
                candidate = arrivals.get(node, 0.0) + arc.delay
                if candidate > arrivals.get(arc.dst, float("-inf")):
                    arrivals[arc.dst] = candidate
        return arrivals

    def required_times(self, clock_period: float) -> Dict[str, float]:
        """Latest tolerable arrival at every node for a period constraint."""
        required = {n: clock_period for n in self.endpoints()}
        for node in reversed(self._toposort()):
            for arc in self._succ.get(node, ()):
                candidate = required[arc.dst] - arc.delay
                if candidate < required.get(node, float("inf")):
                    required[node] = candidate
        return required

    def slacks(self, clock_period: float) -> Dict[str, float]:
        arrivals = self.arrival_times()
        required = self.required_times(clock_period)
        return {n: required[n] - arrivals[n] for n in self._nodes}

    def worst_slack(self, clock_period: float) -> float:
        return min(self.slacks(clock_period).values())

    def critical_path(self) -> Tuple[List[str], float]:
        """(node sequence, delay) of the longest path."""
        arrivals = self.arrival_times()
        end = max(self.endpoints(), key=lambda n: arrivals[n])
        path = [end]
        node = end
        while node not in self.startpoints():
            best_arc = max(
                self._pred[node],
                key=lambda a: arrivals[a.src] + a.delay,
            )
            node = best_arc.src
            path.append(node)
        path.reverse()
        return path, arrivals[end]

    def min_clock_period(self, setup_time: float = 0.0,
                         clk_to_q: float = 0.0) -> float:
        """Smallest period: clk-to-q + longest combinational path + setup."""
        _, delay = self.critical_path()
        return clk_to_q + delay + setup_time


def chain_graph(delays: Sequence[float]) -> TimingGraph:
    """A linear chain n0 -> n1 -> ... with the given stage delays."""
    graph = TimingGraph()
    for index, delay in enumerate(delays):
        graph.arc(f"n{index}", f"n{index + 1}", delay)
    return graph
