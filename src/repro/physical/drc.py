"""Design-rule checking: width / spacing / enclosure rules over rectangles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.physical.geometry import Rect


@dataclass(frozen=True)
class RuleSet:
    """Minimum design rules for one layer (all in the same length unit)."""

    min_width: float
    min_spacing: float
    min_enclosure: float = 0.0

    def __post_init__(self) -> None:
        if min(self.min_width, self.min_spacing) <= 0 or self.min_enclosure < 0:
            raise ValueError("rules must be positive (enclosure >= 0)")


@dataclass(frozen=True)
class Violation:
    kind: str     # width | spacing | enclosure
    shapes: Tuple[int, ...]
    value: float
    limit: float

    def __str__(self) -> str:
        return (f"{self.kind} violation on shapes {self.shapes}: "
                f"{self.value:g} < {self.limit:g}")


def check_width(shapes: Sequence[Rect], rules: RuleSet) -> List[Violation]:
    """Every shape's smaller dimension must meet min_width."""
    violations = []
    for index, shape in enumerate(shapes):
        width = min(shape.w, shape.h)
        if width < rules.min_width - 1e-12:
            violations.append(
                Violation("width", (index,), width, rules.min_width))
    return violations


def check_spacing(shapes: Sequence[Rect], rules: RuleSet) -> List[Violation]:
    """All pairs must meet min_spacing (overlap counts as 0 spacing)."""
    violations = []
    for i, a in enumerate(shapes):
        for j in range(i + 1, len(shapes)):
            b = shapes[j]
            spacing = a.spacing_to(b)
            if spacing < rules.min_spacing - 1e-12:
                violations.append(
                    Violation("spacing", (i, j), spacing, rules.min_spacing))
    return violations


def check_enclosure(inner: Sequence[Rect], outer: Sequence[Rect],
                    rules: RuleSet) -> List[Violation]:
    """Each inner shape (e.g. a via) must be enclosed by some outer shape
    with min_enclosure margin on all sides."""
    violations = []
    for i, shape in enumerate(inner):
        best_margin = float("-inf")
        for cover in outer:
            margin = min(
                shape.x - cover.x,
                shape.y - cover.y,
                cover.x2 - shape.x2,
                cover.y2 - shape.y2,
            )
            best_margin = max(best_margin, margin)
        if best_margin < rules.min_enclosure - 1e-12:
            violations.append(
                Violation("enclosure", (i,), best_margin,
                          rules.min_enclosure))
    return violations


def check_layer(shapes: Sequence[Rect], rules: RuleSet) -> List[Violation]:
    """Width + spacing checks for one layer."""
    return check_width(shapes, rules) + check_spacing(shapes, rules)


def violation_count(shapes: Sequence[Rect], rules: RuleSet) -> int:
    """Total width + spacing violations on one layer."""
    return len(check_layer(shapes, rules))
