"""Rectilinear routing trees: spanning trees, Steiner approximation, costs.

Implements the routing-cost machinery behind the paper's Physical Design
example ("calculate the routing costs for the 2 diagrams and determine
which routing topology has lower cost"): rectilinear minimum spanning trees
(Prim), a Hanan-grid Steiner improvement pass, explicit-topology cost
evaluation, and HPWL lower bounds.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Set, Tuple

from repro.physical.geometry import Point, hpwl


Edge = Tuple[int, int]


def tree_cost(points: Sequence[Point], edges: Sequence[Edge]) -> float:
    """Total Manhattan length of an explicit tree topology."""
    return sum(points[a].manhattan(points[b]) for a, b in edges)


def is_spanning_tree(n_points: int, edges: Sequence[Edge]) -> bool:
    """Connected + acyclic over ``n_points`` vertices."""
    if len(edges) != n_points - 1:
        return False
    parent = list(range(n_points))

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra == rb:
            return False
        parent[ra] = rb
    return True


def rmst(points: Sequence[Point]) -> List[Edge]:
    """Rectilinear minimum spanning tree via Prim's algorithm."""
    n = len(points)
    if n == 0:
        raise ValueError("no points")
    if n == 1:
        return []
    in_tree = {0}
    edges: List[Edge] = []
    best: Dict[int, Tuple[float, int]] = {
        i: (points[0].manhattan(points[i]), 0) for i in range(1, n)
    }
    while len(in_tree) < n:
        nxt = min(best, key=lambda i: (best[i][0], i))
        dist, src = best.pop(nxt)
        in_tree.add(nxt)
        edges.append((src, nxt))
        for i in list(best):
            d = points[nxt].manhattan(points[i])
            if d < best[i][0]:
                best[i] = (d, nxt)
    return edges


def rmst_cost(points: Sequence[Point]) -> float:
    """Total wirelength of the rectilinear MST."""
    return tree_cost(points, rmst(points))


def hanan_points(points: Sequence[Point]) -> List[Point]:
    """The Hanan grid: intersections of x/y coordinates of the terminals."""
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    terminals = set(points)
    return [Point(x, y) for x in xs for y in ys
            if Point(x, y) not in terminals]


def steiner_cost(points: Sequence[Point], max_extra: int = 2) -> float:
    """Approximate RSMT cost: RMST improved by adding up to ``max_extra``
    Hanan-grid Steiner points greedily (1-Steiner heuristic).

    Exact for the small nets benchmark questions use; never worse than the
    RMST cost by construction.
    """
    current_points = list(points)
    current_cost = rmst_cost(current_points)
    for _ in range(max_extra):
        candidates = hanan_points(current_points)
        best_cost = current_cost
        best_point = None
        for candidate in candidates:
            trial = current_points + [candidate]
            cost = rmst_cost(trial)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_point = candidate
        if best_point is None:
            break
        current_points.append(best_point)
        current_cost = best_cost
    return current_cost


def hpwl_lower_bound(points: Sequence[Point]) -> float:
    """HPWL is a lower bound on any rectilinear Steiner tree."""
    return hpwl(points)


def compare_topologies(points: Sequence[Point],
                       topo_a: Sequence[Edge],
                       topo_b: Sequence[Edge]) -> Tuple[float, float, str]:
    """Costs of two explicit topologies and which is cheaper ('A'/'B'/'tie')."""
    for name, topo in (("A", topo_a), ("B", topo_b)):
        if not is_spanning_tree(len(points), list(topo)):
            raise ValueError(f"topology {name} is not a spanning tree")
    cost_a = tree_cost(points, topo_a)
    cost_b = tree_cost(points, topo_b)
    if abs(cost_a - cost_b) < 1e-12:
        winner = "tie"
    else:
        winner = "A" if cost_a < cost_b else "B"
    return cost_a, cost_b, winner


def star_topology(points: Sequence[Point], root: int = 0) -> List[Edge]:
    """All sinks connected directly to ``root``."""
    return [(root, i) for i in range(len(points)) if i != root]


def chain_topology(points: Sequence[Point]) -> List[Edge]:
    """Points connected in index order."""
    return [(i, i + 1) for i in range(len(points) - 1)]
