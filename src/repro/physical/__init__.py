"""Physical Design substrate: geometry, Steiner/maze routing, clock trees,
placement legalisation, static timing, floorplanning, DRC, and the 23
Physical Design ChipVQA questions built on them."""

from repro.physical import (
    congestion,
    cts,
    drc,
    floorplan,
    geometry,
    maze,
    placement,
    sta,
    steiner,
)
from repro.physical.questions import (
    generate_physical_questions,
    generate_physical_questions_scaled,
)

__all__ = [
    "congestion",
    "cts",
    "drc",
    "floorplan",
    "geometry",
    "maze",
    "placement",
    "sta",
    "steiner",
    "generate_physical_questions",
    "generate_physical_questions_scaled",
]
