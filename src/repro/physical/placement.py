"""Standard-cell placement: row legalisation and density metrics.

Implements a Tetris-style greedy legaliser (the classic baseline): cells
sorted by x are packed left-to-right into rows, minimising displacement.
Also provides utilisation/density arithmetic used by placement questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.physical.geometry import Point, Rect


@dataclass(frozen=True)
class Cell:
    name: str
    width: float
    target: Point  # desired (global-placement) location, lower-left


@dataclass(frozen=True)
class PlacedCell:
    name: str
    rect: Rect
    displacement: float


def legalize(cells: Sequence[Cell], row_ys: Sequence[float],
             row_width: float, row_height: float) -> List[PlacedCell]:
    """Tetris legalisation: snap cells to rows without overlap.

    Cells are processed in increasing target-x order; each is placed in the
    row (and at the first free x at or right of its target) minimising
    Manhattan displacement.  When no row has frontier space — clustered
    targets can exhaust every frontier while space *left* of the cluster
    is still free — a gap scan over each row's free intervals places the
    cell at the minimal-displacement position instead.  Raises only when
    no row holds any gap wide enough.
    """
    if not row_ys:
        raise ValueError("no rows")
    frontier: Dict[float, float] = {y: 0.0 for y in row_ys}
    # per-row occupied intervals, kept sorted by start, for the gap scan
    occupied: Dict[float, List[Tuple[float, float]]] = {y: [] for y in row_ys}
    placed: List[PlacedCell] = []
    for cell in sorted(cells, key=lambda c: (c.target.x, c.name)):
        if cell.width > row_width:
            raise ValueError(f"cell {cell.name} wider than a row")
        best: Optional[Tuple[float, float, float]] = None  # (disp, y, x)
        for y in row_ys:
            x = max(frontier[y], cell.target.x)
            if x + cell.width > row_width:
                x = row_width - cell.width
                if x < frontier[y]:
                    continue  # row full at/after this point
            disp = abs(x - cell.target.x) + abs(y - cell.target.y)
            if best is None or (disp, y, x) < best:
                best = (disp, y, x)
        if best is None:
            # every frontier is exhausted; scan the holes the greedy
            # packing left behind (free intervals below each frontier)
            for y in row_ys:
                gap_start = 0.0
                for start, end in occupied[y] + [(row_width, row_width)]:
                    if start - gap_start >= cell.width:
                        x = min(max(cell.target.x, gap_start),
                                start - cell.width)
                        disp = (abs(x - cell.target.x)
                                + abs(y - cell.target.y))
                        if best is None or (disp, y, x) < best:
                            best = (disp, y, x)
                    gap_start = max(gap_start, end)
        if best is None:
            raise ValueError(f"cell {cell.name} does not fit in any row")
        disp, y, x = best
        frontier[y] = max(frontier[y], x + cell.width)
        occupied[y].append((x, x + cell.width))
        occupied[y].sort()
        placed.append(PlacedCell(cell.name,
                                 Rect(x, y, cell.width, row_height), disp))
    return placed


def total_displacement(placed: Sequence[PlacedCell]) -> float:
    """Sum of cell displacements after legalisation."""
    return sum(p.displacement for p in placed)


def max_displacement(placed: Sequence[PlacedCell]) -> float:
    """Largest single-cell displacement."""
    return max((p.displacement for p in placed), default=0.0)


def has_overlaps(placed: Sequence[PlacedCell]) -> bool:
    """True if any two placed cells overlap (legality check)."""
    rects = [p.rect for p in placed]
    for i, a in enumerate(rects):
        for b in rects[i + 1:]:
            if a.overlaps(b):
                return True
    return False


def utilization(cell_areas: Sequence[float], core_area: float) -> float:
    """Core utilisation = placed cell area / available core area."""
    if core_area <= 0:
        raise ValueError("core area must be positive")
    total = sum(cell_areas)
    if total < 0:
        raise ValueError("negative cell area")
    return total / core_area


def rows_required(total_cell_width: float, row_width: float,
                  utilization_cap: float = 1.0) -> int:
    """Rows needed to hold the cells at a utilisation ceiling."""
    if row_width <= 0 or not 0 < utilization_cap <= 1:
        raise ValueError("bad row width or utilisation cap")
    import math
    return max(1, math.ceil(total_cell_width / (row_width * utilization_cap)))


def pin_density(pin_count: int, area_um2: float) -> float:
    """Pins per square micron — a routability indicator."""
    if area_um2 <= 0:
        raise ValueError("area must be positive")
    return pin_count / area_um2
