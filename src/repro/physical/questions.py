"""The 23 Physical Design questions of the benchmark (7 MC + 16 SA).

Topic coverage follows Section III-B4 of the paper: clock trees, routing
(including the Steiner routing-cost example the paper quotes), placement
and legalisation, floorplanning, timing analysis and useful skew, DRC and
power-grid design.  All golds are computed by the physical substrate.

Visual budget (DESIGN.md): 8 layouts, 6 diagrams, 5 schematics, 2 tables,
2 mixed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analog.netlist import Circuit
from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    Question,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.physical import cts, drc, floorplan, placement, steiner
from repro.physical.geometry import Point, Rect, hpwl
from repro.physical.maze import RoutingGrid, bends
from repro.physical.sta import TimingGraph, chain_graph
from repro.visual.diagram import (
    block_diagram_scene,
    flow_chart_scene,
    graph_scene,
    tree_scene,
)
from repro.visual.layout import floorplan_scene, layout_scene, standard_cell_scene
from repro.visual.resolution import infer_legibility_scale
from repro.visual.scene import translate
from repro.visual.schematic import logic_network_scene, resistor_network_scene
from repro.visual.table import table_scene


def _visual(visual_type: VisualType, description: str, scene) -> VisualContent:
    return VisualContent(
        visual_type=visual_type,
        description=description,
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene),
    )


def _mc(number: int, prompt: str, visual: VisualContent,
        choices: Sequence[str], correct: int, *, difficulty: float,
        topics: Sequence[str], answer_kind: AnswerKind = AnswerKind.CHOICE,
        aliases: Sequence[str] = (), unit: str = "") -> Question:
    return make_mc_question(
        qid=f"phy-{number:02d}", category=Category.PHYSICAL,
        prompt=prompt, visual=visual, choices=choices, correct=correct,
        difficulty=difficulty, topics=topics, answer_kind=answer_kind,
        aliases=aliases, unit=unit)


def _sa(number: int, prompt: str, visual: VisualContent, answer: AnswerSpec,
        *, difficulty: float, topics: Sequence[str]) -> Question:
    return make_sa_question(
        qid=f"phy-{number:02d}", category=Category.PHYSICAL,
        prompt=prompt, visual=visual, answer=answer,
        difficulty=difficulty, topics=topics)


# ---------------------------------------------------------------------------

_NET_POINTS = [Point(1, 1), Point(5, 1), Point(5, 5), Point(9, 5)]


def _q_topology_cost() -> Question:
    """The paper's example: routing costs of two topologies."""
    points = _NET_POINTS
    topo_a = steiner.star_topology(points, root=1)
    topo_b = steiner.chain_topology(points)
    cost_a, cost_b, winner = steiner.compare_topologies(points, topo_a, topo_b)
    assert winner in ("A", "B")
    labels = ["P0", "P1", "P2", "P3"]
    coords = [(p.x, p.y, label) for p, label in zip(points, labels)]
    scene = (tree_scene(coords, topo_a, scale=24, origin=(50, 330))
             + translate(tree_scene(coords, topo_b, scale=24,
                                    origin=(50, 330)), 250, 0))
    visual = _visual(
        VisualType.LAYOUT,
        "Two candidate routing trees over the same four pins with "
        "annotated coordinates", scene)
    answer = AnswerSpec(
        kind=AnswerKind.TEXT,
        text=f"Topology {winner}",
        aliases=(winner, f"topology {winner.lower()}",
                 f"the {'star' if winner == 'A' else 'chain'} topology",
                 f"{winner} with cost {int(cost_a if winner == 'A' else cost_b)}"),
    )
    return _sa(
        1,
        "The routing points' coordinates are shown. Can you calculate the "
        "routing costs (total rectilinear wirelength) for the 2 diagrams "
        "and determine which routing topology has lower cost? Topology A "
        "is the star on the left, topology B the chain on the right.",
        visual, answer, difficulty=0.65,
        topics=("routing", "steiner trees"))


def _q_rmst_cost() -> Question:
    points = [Point(0, 0), Point(4, 0), Point(4, 3), Point(8, 6)]
    cost = steiner.rmst_cost(points)
    coords = [(p.x, p.y, f"P{i}") for i, p in enumerate(points)]
    scene = tree_scene(coords, steiner.rmst(points), scale=30)
    visual = _visual(VisualType.LAYOUT,
                     "Minimum spanning tree over four routing pins", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{cost:.0f}",
                        aliases=(f"{cost:.0f} units", f"{cost:.1f}"),
                        unit="units")
    return _sa(
        2,
        "Compute the total rectilinear wirelength of the minimum spanning "
        "tree connecting the four pins shown (coordinates annotated).",
        visual, answer, difficulty=0.55,
        topics=("routing", "spanning trees"))


def _q_hpwl() -> Question:
    points = [Point(2, 1), Point(7, 4), Point(4, 8)]
    value = hpwl(points)
    coords = [(p.x, p.y, f"P{i}") for i, p in enumerate(points)]
    scene = tree_scene(coords, [], scale=30)
    visual = _visual(VisualType.LAYOUT,
                     "Three pins of a net with annotated coordinates", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.0f}",
                        aliases=(f"{value:.0f} units",), unit="units")
    return _sa(
        3,
        "What is the half-perimeter wirelength (HPWL) estimate of the "
        "three-pin net shown?",
        visual, answer, difficulty=0.4,
        topics=("routing", "hpwl", "placement"))


_GRID = RoutingGrid(7, 9, obstacles=[(3, c) for c in range(2, 7)])


def _q_maze_length() -> Question:
    source, target = (1, 4), (5, 4)
    length = _GRID.route_length(source, target)
    assert length is not None
    nodes = [f"{r}{c}" for r in range(3) for c in range(3)]
    scene = graph_scene(nodes, [], layout="grid", node_radius=10)
    scene += [{"op": "fill_rect", "xy": [80, 150], "size": [220, 20],
               "ink": 60},
              {"op": "text", "xy": [90, 154], "s": "BLOCKAGE"}]
    visual = _visual(VisualType.DIAGRAM,
                     "Routing grid with a horizontal blockage between "
                     "source and target", scene)
    gold = str(length)
    return _mc(
        4,
        "On the routing grid shown, a blockage spans columns 2-6 of row 3. "
        "The source is at (row 1, col 4) and the target at (row 5, col 4). "
        "What is the shortest maze-route length in grid edges?",
        visual,
        [gold, "4", "6", "12"],
        0,
        difficulty=0.65,
        topics=("routing", "maze routing"),
        answer_kind=AnswerKind.NUMERIC,
        unit="edges",
    )


def _q_maze_bends() -> Question:
    source, target = (1, 4), (5, 4)
    path = _GRID.route(source, target)
    assert path is not None
    n_bends = bends(path)
    scene = flow_chart_scene(["EXPAND WAVE", "REACH TARGET", "BACKTRACE"],
                             loop_back=None)
    visual = _visual(VisualType.DIAGRAM,
                     "Lee maze-routing phases for the blocked net", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(n_bends),
                        aliases=(f"{n_bends} bends",))
    return _sa(
        5,
        "For the same blocked net, the Lee backtrace prefers straight "
        "continuation. How many bends does the resulting detour route "
        "contain?",
        visual, answer, difficulty=0.7,
        topics=("routing", "maze routing"))


def _q_skew() -> Question:
    sinks = [cts.ClockSink("FF1", Point(0, 0), 1.2),
             cts.ClockSink("FF2", Point(4, 0), 1.5),
             cts.ClockSink("FF3", Point(2, 3), 0.9)]
    value = cts.skew(sinks)
    scene = block_diagram_scene(
        [("src", "CLK SRC"), ("f1", "FF1 1.2NS"), ("f2", "FF2 1.5NS"),
         ("f3", "FF3 0.9NS")],
        [("src", "f1"), ("src", "f2"), ("src", "f3")])
    visual = _visual(VisualType.DIAGRAM,
                     "Clock tree with annotated sink insertion delays",
                     scene)
    gold = f"{value:.1f} ns"
    return _mc(
        6,
        "The clock tree shown delivers the clock with insertion delays of "
        "1.2 ns, 1.5 ns and 0.9 ns at its three flip-flops. What is the "
        "global clock skew?",
        visual,
        [gold, "1.5 ns", "0.3 ns", "1.2 ns"],
        0,
        difficulty=0.4,
        topics=("clock tree", "skew"),
        answer_kind=AnswerKind.NUMERIC,
        unit="ns",
        aliases=(f"{value:.1f}", f"{value * 1000:.0f} ps"),
    )


def _q_htree_levels() -> Question:
    levels = cts.h_tree_levels(64)
    scene = flow_chart_scene([f"LEVEL {i + 1}" for i in range(3)],
                             loop_back=None)
    visual = _visual(VisualType.DIAGRAM,
                     "Recursive H-tree distribution over a square die",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(levels),
                        aliases=(f"{levels} levels",))
    return _sa(
        7,
        "A balanced H-tree quadruples its sink count at every level, as "
        "sketched. How many levels are needed to reach 64 clock sinks?",
        visual, answer, difficulty=0.5,
        topics=("clock tree", "h-tree"))


def _q_useful_skew() -> Question:
    gain = cts.useful_skew_gain([8.0, 5.0, 5.0])
    scene = block_diagram_scene(
        [("r1", "REG"), ("c1", "LOGIC 8NS"), ("r2", "REG"),
         ("c2", "LOGIC 5NS"), ("r3", "REG"), ("c3", "LOGIC 5NS"),
         ("r4", "REG")],
        [("r1", "c1"), ("c1", "r2"), ("r2", "c2"), ("c2", "r3"),
         ("r3", "c3"), ("c3", "r4")])
    visual = _visual(VisualType.DIAGRAM,
                     "Register pipeline with unbalanced stage delays",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{gain:.0f}",
                        aliases=(f"{gain:.1f} ns", f"{gain:.0f} ns"),
                        unit="ns")
    return _sa(
        8,
        "The pipeline shown has stage delays 8 ns, 5 ns and 5 ns. With "
        "unconstrained useful skew (cycle borrowing), the period can "
        "approach the average stage delay. How many nanoseconds of period "
        "does that recover versus the worst stage?",
        visual, answer, difficulty=0.75,
        topics=("useful skew", "timing"))


def _q_elmore() -> Question:
    delay = cts.elmore_delay([100.0, 100.0], [0.01, 0.02])  # R ohm, C pF->? keep units
    # 100*0.01 + 200*0.02 = 1 + 4 = 5 (ns with R kohm / C pF scaling)
    scene = resistor_network_scene([("R1", "100"), ("C1", "10F"),
                                    ("R2", "100"), ("C2", "20F")],
                                   source_label="DRV")
    visual = _visual(VisualType.SCHEMATIC,
                     "Two-segment RC interconnect ladder", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{delay:.0f}",
                        aliases=(f"{delay:.1f}", f"{delay:.0f} ns"),
                        unit="ns")
    return _sa(
        9,
        "Using the Elmore model, compute the delay of the two-segment RC "
        "wire shown: R1 = R2 = 100 Ohm with node capacitances C1 = 10 pF "
        "and C2 = 20 pF (answer in nanoseconds: sum of upstream R times "
        "node C).",
        visual, answer, difficulty=0.6,
        topics=("interconnect", "elmore delay"))


def _q_setup_slack() -> Question:
    slack = cts.setup_slack(clock_period=10.0, data_arrival=8.5,
                            setup_time=0.5, capture_skew=0.0)
    scene = table_scene([
        ["QUANTITY", "VALUE"],
        ["CLOCK PERIOD", "10.0 NS"],
        ["DATA ARRIVAL", "8.5 NS"],
        ["SETUP TIME", "0.5 NS"],
        ["SKEW", "0.0 NS"],
    ])
    visual = _visual(VisualType.TABLE, "Timing quantities for a setup check",
                     scene)
    gold = f"{slack:.1f} ns"
    return _mc(
        10,
        "From the timing report tabulated, what is the setup slack of "
        "this path?",
        visual,
        [gold, "1.5 ns", "-1.0 ns", "2.0 ns"],
        0,
        difficulty=0.45,
        topics=("timing", "setup"),
        answer_kind=AnswerKind.NUMERIC,
        unit="ns",
        aliases=(f"{slack:.1f}", f"+{slack:.1f} ns"),
    )


def _q_min_period() -> Question:
    graph = TimingGraph()
    graph.arc("FF1/Q", "u1", 1.0).arc("u1", "u2", 2.0).arc("u2", "FF2/D", 1.5)
    graph.arc("FF1/Q", "u3", 0.5).arc("u3", "FF2/D", 1.0)
    period = graph.min_clock_period(setup_time=0.5, clk_to_q=0.5)
    scene = table_scene([
        ["ARC", "DELAY"],
        ["FF1/Q - U1", "1.0"],
        ["U1 - U2", "2.0"],
        ["U2 - FF2/D", "1.5"],
        ["FF1/Q - U3", "0.5"],
        ["U3 - FF2/D", "1.0"],
        ["CLK-Q / SETUP", "0.5 / 0.5"],
    ])
    visual = _visual(VisualType.TABLE, "Timing-arc delay table", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{period:.1f}",
                        aliases=(f"{period:.1f} ns", f"{period:.2f}"),
                        unit="ns")
    return _sa(
        11,
        "Using the arc delays tabulated (plus 0.5 ns clock-to-Q and 0.5 "
        "ns setup), what is the minimum clock period of the "
        "register-to-register path set?",
        visual, answer, difficulty=0.6,
        topics=("timing", "sta"))


def _q_critical_path() -> Question:
    graph = TimingGraph()
    graph.arc("IN", "g1", 1.0).arc("g1", "g2", 3.0).arc("g2", "OUT", 1.0)
    graph.arc("IN", "g3", 2.0).arc("g3", "OUT", 2.0)
    path, delay = graph.critical_path()
    assert path == ["IN", "g1", "g2", "OUT"] and delay == 5.0
    scene = logic_network_scene(
        [("AND", "G1", ["IN"]), ("OR", "G2", ["G1"]),
         ("XOR", "G3", ["IN"])], "OUT")
    visual = _visual(VisualType.SCHEMATIC,
                     "Two reconvergent paths with annotated gate delays",
                     scene)
    return _mc(
        12,
        "Two paths lead from IN to OUT in the network shown: through G1 "
        "and G2 (1 + 3 + 1 ns) or through G3 (2 + 2 ns). Which is the "
        "critical path and what is its delay?",
        visual,
        ["Through G1-G2, 5 ns", "Through G3, 4 ns",
         "Through G1-G2, 4 ns", "Both are critical at 5 ns"],
        0,
        difficulty=0.5,
        topics=("timing", "critical path"),
        answer_kind=AnswerKind.TEXT,
        aliases=("g1-g2 path, 5 ns", "the 5 ns path through G1 and G2"),
    )


def _q_utilization() -> Question:
    value = placement.utilization([40.0, 60.0, 80.0, 20.0], 400.0) * 100.0
    scene = standard_cell_scene([2.0, 3.0, 4.0, 1.0], row_count=2)
    visual = _visual(VisualType.LAYOUT,
                     "Placed standard-cell rows inside the core area",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.0f}%",
                        aliases=(f"{value:.0f} percent", f"{value / 100:.2f}"))
    return _sa(
        13,
        "The core shown offers 400 um^2 of placeable area and holds cells "
        "totalling 200 um^2. What is the placement utilisation, in "
        "percent?",
        visual, answer, difficulty=0.35,
        topics=("placement", "utilisation"))


def _q_rows() -> Question:
    rows = placement.rows_required(total_cell_width=300.0, row_width=50.0,
                                   utilization_cap=0.8)
    scene = standard_cell_scene([1.5, 2.5, 2.0], row_count=3)
    visual = _visual(VisualType.LAYOUT, "Standard-cell row structure", scene)
    return _mc(
        14,
        "Cells totalling 300 um of width must be placed into 50 um rows "
        "capped at 80% utilisation, as in the row structure shown. How "
        "many rows are required?",
        visual,
        [str(rows), "6", "7", "10"],
        0,
        difficulty=0.5,
        topics=("placement", "rows"),
        answer_kind=AnswerKind.NUMERIC,
    )


def _q_legalize() -> Question:
    cells = [placement.Cell("a", 2.0, Point(1.0, 0.0)),
             placement.Cell("b", 2.0, Point(1.5, 0.0)),
             placement.Cell("c", 2.0, Point(2.0, 0.0))]
    placed = placement.legalize(cells, row_ys=[0.0], row_width=10.0,
                                row_height=1.0)
    assert not placement.has_overlaps(placed)
    total = placement.total_displacement(placed)
    scene = standard_cell_scene([2.0, 2.0, 2.0], row_count=1)
    visual = _visual(VisualType.LAYOUT,
                     "Three overlapping cells before row legalisation",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{total:.1f}",
                        aliases=(f"{total:.1f} um", f"{total:.2f}"),
                        unit="um")
    return _sa(
        15,
        "Three 2 um cells want positions x = 1.0, 1.5 and 2.0 in the same "
        "row, as shown overlapping. A Tetris legaliser processes them in "
        "x order, pushing each to the first free location at or right of "
        "its target. What total displacement (sum over cells) results?",
        visual, answer, difficulty=0.75,
        topics=("placement", "legalisation"))


_BLOCKS = {
    "A": floorplan.Block("A", 4.0, 3.0),
    "B": floorplan.Block("B", 4.0, 2.0),
    "C": floorplan.Block("C", 2.0, 4.0),
}
_EXPR = ["A", "B", "H", "C", "V"]


def _q_floorplan_area() -> Question:
    area = floorplan.chip_area(_EXPR, _BLOCKS)
    scene = (floorplan_scene([("A", 0, 2, 4, 3), ("B", 0, 0, 4, 2),
                              ("C", 4, 0, 2, 4)], chip=(6.0, 5.0))
             + translate(table_scene([["BLOCK", "W X H"],
                                      ["A", "4 X 3"], ["B", "4 X 2"],
                                      ["C", "2 X 4"]],
                                     col_width=56, row_height=22,
                                     origin=(40, 40)), 280, 0))
    visual = _visual(VisualType.MIXED,
                     "Slicing floorplan AB H C V with block dimensions",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{area:.0f}",
                        aliases=(f"{area:.0f} um^2", f"{area:.1f}"),
                        unit="um^2")
    return _sa(
        16,
        "Pack the slicing floorplan described by the Polish expression "
        "A B H C V using the block dimensions tabulated (H stacks "
        "vertically, V abuts horizontally). What chip area results?",
        visual, answer, difficulty=0.7,
        topics=("floorplanning", "slicing trees"))


def _q_dead_space() -> Question:
    percent = floorplan.dead_space_percent(_EXPR, _BLOCKS)
    gold = f"{percent:.1f}%"
    scene = (floorplan_scene([("A", 0, 2, 4, 3), ("B", 0, 0, 4, 2),
                              ("C", 4, 0, 2, 4)], chip=(6.0, 5.0))
             + translate(table_scene([["AREA", "VALUE"],
                                      ["BLOCKS", "28"],
                                      ["CHIP", "30"]],
                                     col_width=56, row_height=22,
                                     origin=(40, 40)), 280, 0))
    visual = _visual(VisualType.MIXED,
                     "Packed floorplan with area summary", scene)
    return _mc(
        17,
        "For the packed slicing floorplan shown (blocks 4x3, 4x2 and 2x4 "
        "in expression A B H C V), what percentage of the chip area is "
        "dead space?",
        visual,
        [gold, "10.0%", "16.7%", "25.0%"],
        0,
        difficulty=0.65,
        topics=("floorplanning", "whitespace"),
        answer_kind=AnswerKind.NUMERIC,
        aliases=(f"{percent:.0f}%", f"{percent:.2f}%"),
    )


def _q_drc_spacing() -> Question:
    shapes = [Rect(0, 0, 2, 10), Rect(2.5, 0, 2, 10), Rect(5.5, 0, 2, 10),
              Rect(8.5, 0, 0.5, 10)]
    rules = drc.RuleSet(min_width=1.0, min_spacing=1.0)
    violations = drc.check_layer(shapes, rules)
    count = len(violations)
    scene = layout_scene({"metal1": [(r.x, r.y, r.w, r.h) for r in shapes]},
                         scale=26,
                         labels=[(0, 10.6, "M1 WIDTH 1 SPACE 1")])
    visual = _visual(VisualType.LAYOUT,
                     "Metal-1 shapes with one narrow wire and one tight gap",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(count),
                        aliases=(f"{count} violations",))
    return _sa(
        18,
        "The metal-1 layer shown requires 1 um minimum width and 1 um "
        "minimum spacing. Wires are 2, 2, 2 and 0.5 um wide at x = 0, "
        "2.5, 5.5 and 8.5. How many DRC violations (width plus spacing) "
        "are present?",
        visual, answer, difficulty=0.7,
        topics=("drc",))


def _q_drc_width() -> Question:
    shapes = [Rect(0, 0, 0.8, 6)]
    rules = drc.RuleSet(min_width=1.0, min_spacing=1.0)
    violations = drc.check_width(shapes, rules)
    assert len(violations) == 1
    value = violations[0].value
    scene = layout_scene({"metal1": [(0, 0, 0.8, 6)]}, scale=40,
                         labels=[(1.2, 3, "W=0.8"), (1.2, 5, "MIN W=1.0")])
    visual = _visual(VisualType.LAYOUT,
                     "A single metal wire narrower than the width rule",
                     scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{value:.1f}",
                        aliases=(f"{value:.1f} um", "0.80"), unit="um")
    return _sa(
        19,
        "The wire shown violates the 1.0 um minimum-width rule. What is "
        "its actual drawn width in microns?",
        visual, answer, difficulty=0.3,
        topics=("drc",))


def _q_flow_order() -> Question:
    steps = ["SYNTHESIS", "FLOORPLAN", "PLACEMENT", "CTS", "ROUTING",
             "SIGNOFF"]
    scene = flow_chart_scene(steps)
    visual = _visual(VisualType.DIAGRAM,
                     "Physical design implementation flow", scene)
    return _mc(
        20,
        "In the standard physical design flow shown, which step "
        "immediately follows placement?",
        visual,
        ["Clock tree synthesis", "Routing", "Floorplanning", "Signoff"],
        0,
        difficulty=0.12,
        topics=("flow", "methodology"),
        answer_kind=AnswerKind.TEXT,
        aliases=("CTS", "clock tree synthesis (CTS)"),
    )


def _q_buffers() -> Question:
    count = cts.buffers_needed(total_cap_ff=480.0, drive_cap_ff=50.0)
    scene = logic_network_scene(
        [("BUF", "B1", ["CLK"]), ("BUF", "B2", ["CLK"])], "NET")
    visual = _visual(VisualType.SCHEMATIC,
                     "Clock buffers driving a distributed load", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=str(count),
                        aliases=(f"{count} buffers",))
    return _sa(
        21,
        "A clock net presents 480 fF of load; each buffer of the type "
        "shown can drive at most 50 fF within the slew target. How many "
        "buffers are needed?",
        visual, answer, difficulty=0.45,
        topics=("clock tree", "buffering"))


def _q_hold() -> Question:
    slack = cts.hold_slack(data_arrival=0.3, hold_time=0.1,
                           capture_skew=0.4)
    scene = logic_network_scene([("BUF", "B1", ["FF1"])], "FF2")
    visual = _visual(VisualType.SCHEMATIC,
                     "Short register-to-register path with skewed capture "
                     "clock", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{slack:.1f}",
                        aliases=(f"{slack:.1f} ns", f"{slack:.2f}"),
                        unit="ns")
    return _sa(
        22,
        "On the path shown, data arrives at the capture flop 0.3 ns after "
        "the launch edge, the capture clock is skewed 0.4 ns late, and "
        "the flop needs 0.1 ns of hold. What is the hold slack (negative "
        "means violation)?",
        visual, answer, difficulty=0.85,
        topics=("timing", "hold"))


def _q_ir_drop() -> Question:
    circuit = Circuit()
    circuit.vsource("vdd", "p0", 0, 1.0)
    circuit.resistor("rg1", "p0", "p1", 0.05)
    circuit.resistor("rg2", "p1", "p2", 0.05)
    circuit.isource("i1", "p1", 0, 1.0)   # 1 A tap
    circuit.isource("i2", "p2", 0, 2.0)   # 2 A tap
    solution = circuit.solve()
    drop_mv = (1.0 - solution.voltage("p2")) * 1000.0
    scene = resistor_network_scene([("RG1", "50M"), ("I1", "1A"),
                                    ("RG2", "50M"), ("I2", "2A")],
                                   source_label="VDD")
    visual = _visual(VisualType.SCHEMATIC,
                     "Power-grid rail modelled as a resistive ladder with "
                     "current taps", scene)
    answer = AnswerSpec(kind=AnswerKind.NUMERIC, text=f"{drop_mv:.0f}",
                        aliases=(f"{drop_mv:.0f} mV", f"{drop_mv / 1000:.2f} V"),
                        unit="mV")
    return _sa(
        23,
        "The VDD rail shown is a ladder of two 50 mOhm segments; the "
        "cells tap 1 A at the first node and 2 A at the far end. What is "
        "the worst-case IR drop at the far end, in millivolts?",
        visual, answer, difficulty=0.7,
        topics=("power grid", "ir drop"))


_BUILDERS = [
    _q_topology_cost, _q_rmst_cost, _q_hpwl, _q_maze_length, _q_maze_bends,
    _q_skew, _q_htree_levels, _q_useful_skew, _q_elmore, _q_setup_slack,
    _q_min_period, _q_critical_path, _q_utilization, _q_rows, _q_legalize,
    _q_floorplan_area, _q_dead_space, _q_drc_spacing, _q_drc_width,
    _q_flow_order, _q_buffers, _q_hold, _q_ir_drop,
]


#: Worked solutions, interpolating the computed gold as ``{gold}``.
_EXPLANATIONS = {
    "phy-01": "Star from P1: 4 + 4 + 8 = 16 units; chain P0-P1-P2-P3: "
              "4 + 4 + 4 = 12 units, so {gold} is cheaper.",
    "phy-02": "Prim's tree connects P0-P1 (4), P1-P2 (3), P2-P3 (7): "
              "{gold} units.",
    "phy-03": "Bounding box spans x 2..7 and y 1..8: HPWL = 5 + 7 "
              "= {gold}.",
    "phy-04": "The direct 4-edge path is blocked; the wave must round "
              "the blockage end, adding a 6-edge detour: {gold} edges.",
    "phy-05": "The straight-preferring backtrace needs one jog out, one "
              "across and one back: {gold} bends.",
    "phy-06": "Skew = max - min insertion delay = 1.5 - 0.9 = {gold}.",
    "phy-07": "Each H-tree level quadruples the sinks: 4^3 = 64, so "
              "{gold} levels.",
    "phy-08": "Perfect skewing approaches the average stage delay "
              "(8+5+5)/3 = 6 ns versus the worst 8 ns: {gold} ns "
              "recovered.",
    "phy-09": "Elmore: R1(C1+C2) + R2 C2 = 100x30p + 100x20p = 3 + 2 "
              "= {gold} ns.",
    "phy-10": "Slack = T - arrival - setup = 10 - 8.5 - 0.5 = {gold}.",
    "phy-11": "Longest arc path is 1.0 + 2.0 + 1.5 = 4.5 ns; adding "
              "clk-to-Q and setup gives {gold} ns.",
    "phy-12": "1 + 3 + 1 = 5 ns beats 2 + 2 = 4 ns, so the G1-G2 path "
              "is critical at 5 ns.",
    "phy-13": "200 um^2 of cells in 400 um^2 of core is {gold} "
              "utilisation.",
    "phy-14": "ceil(300 / (50 x 0.8)) = {gold} rows.",
    "phy-15": "Cells pack at x = 1.0, 3.0, 5.0; displacements 0 + 1.5 + "
              "3.0 = {gold} um.",
    "phy-16": "A over B stacks to 4 x 5; abutting C (2 x 4) gives "
              "6 x 5 = {gold}.",
    "phy-17": "Blocks cover 28 of the 30-unit bounding box: 2/30 "
              "= {gold} dead space.",
    "phy-18": "The 0.5 um wire violates width and sits 0.5 um from its "
              "neighbour, violating spacing: {gold} violations.",
    "phy-19": "The drawn width is {gold} um against the 1.0 um rule.",
    "phy-20": "Placement fixes cell locations; the clock network is then "
              "synthesised before signal routing: {gold}.",
    "phy-21": "Each buffer drives 50 fF, so the 480 fF net needs "
              "ceil(480 / 50) = {gold} buffers.",
    "phy-22": "Hold slack = arrival - skew - hold = 0.3 - 0.4 - 0.1 "
              "= {gold} ns: a violation.",
    "phy-23": "All 3 A cross RG1 (150 mV) and 2 A continue across RG2 "
              "(100 mV): {gold} mV at the far end.",
}


def generate_physical_questions() -> List[Question]:
    """All 23 Physical Design questions, in stable order."""
    import dataclasses

    questions = [builder() for builder in _BUILDERS]
    if len(questions) != 23:
        raise AssertionError(
            f"expected 23 physical questions, got {len(questions)}")
    questions = [
        dataclasses.replace(
            q, explanation=_EXPLANATIONS[q.qid].replace("{gold}",
                                                        q.gold_text))
        for q in questions
    ]
    return questions


#: Version of this family's question generators.  Folded into the
#: content-addressed build-cache fingerprint (see
#: :func:`repro.core.databuild.generator_fingerprint`): bump whenever a
#: builder's output changes so stale cached shards are invalidated.
GENERATOR_VERSION = "physical-1"


def generate_physical_questions_scaled(
    seed: int,
    shard_index: int,
    shard_size: int,
    total: Optional[int] = None,
) -> List[Question]:
    """Physical Design members of one shard of a seeded scaled build.

    Delegates to :func:`repro.core.databuild.family_scaled_questions`:
    shard ``shard_index`` of the interleaved global sequence is built
    (through the shard build cache) and this family's members are
    returned in global order.  ``total`` clips the final shard of an
    ``n``-question build.
    """
    from repro.core.databuild import family_scaled_questions
    from repro.core.question import Category

    return family_scaled_questions(
        Category.PHYSICAL, seed, shard_index, shard_size, total=total)
