"""Lee-algorithm maze routing on a grid with obstacles."""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Set, Tuple

Cell = Tuple[int, int]


class RoutingGrid:
    """A rows x cols routing grid; cells are blocked by obstacles."""

    def __init__(self, rows: int, cols: int,
                 obstacles: Sequence[Cell] = ()):
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.obstacles: Set[Cell] = set(obstacles)
        for r, c in self.obstacles:
            if not self._in_bounds((r, c)):
                raise ValueError(f"obstacle {(r, c)} out of bounds")

    def _in_bounds(self, cell: Cell) -> bool:
        return 0 <= cell[0] < self.rows and 0 <= cell[1] < self.cols

    def neighbors(self, cell: Cell) -> List[Cell]:
        r, c = cell
        result = []
        for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            candidate = (nr, nc)
            if self._in_bounds(candidate) and candidate not in self.obstacles:
                result.append(candidate)
        return result

    def wave_expand(self, source: Cell) -> dict:
        """BFS wavefront labels from ``source`` (the Lee expansion phase)."""
        if source in self.obstacles or not self._in_bounds(source):
            raise ValueError("source blocked or out of bounds")
        labels = {source: 0}
        queue = deque([source])
        while queue:
            cell = queue.popleft()
            for nxt in self.neighbors(cell):
                if nxt not in labels:
                    labels[nxt] = labels[cell] + 1
                    queue.append(nxt)
        return labels

    def route(self, source: Cell, target: Cell) -> Optional[List[Cell]]:
        """Shortest path by Lee's algorithm; ``None`` if unreachable.

        Backtrace prefers continuing in the current direction, yielding
        routes with few bends (as practical routers do).
        """
        if target in self.obstacles or not self._in_bounds(target):
            raise ValueError("target blocked or out of bounds")
        labels = self.wave_expand(source)
        if target not in labels:
            return None
        path = [target]
        current = target
        direction: Optional[Tuple[int, int]] = None
        while current != source:
            want = labels[current] - 1
            candidates = [n for n in self.neighbors(current)
                          if labels.get(n) == want]
            chosen = None
            if direction is not None:
                straight = (current[0] + direction[0],
                            current[1] + direction[1])
                if straight in candidates:
                    chosen = straight
            if chosen is None:
                chosen = min(candidates)
            direction = (chosen[0] - current[0], chosen[1] - current[1])
            path.append(chosen)
            current = chosen
        path.reverse()
        return path

    def route_length(self, source: Cell, target: Cell) -> Optional[int]:
        """Wirelength (grid edges) of the shortest route."""
        labels = self.wave_expand(source)
        return labels.get(target)


def bends(path: Sequence[Cell]) -> int:
    """Number of direction changes along a path."""
    count = 0
    for a, b, c in zip(path, path[1:], path[2:]):
        d1 = (b[0] - a[0], b[1] - a[1])
        d2 = (c[0] - b[0], c[1] - b[1])
        if d1 != d2:
            count += 1
    return count


def detour(path_length: int, source: Cell, target: Cell) -> int:
    """Extra length versus the unobstructed Manhattan distance."""
    manhattan = abs(source[0] - target[0]) + abs(source[1] - target[1])
    return path_length - manhattan
