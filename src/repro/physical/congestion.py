"""Routing-congestion estimation: RUDY maps and overflow metrics.

RUDY (Rectangular Uniform wire DensitY) spreads each net's expected
wirelength uniformly over its bounding box — the standard fast congestion
estimator used between placement and routing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.physical.geometry import Point, bounding_box, hpwl


@dataclass(frozen=True)
class CongestionReport:
    """Summary of a congestion map against a routing capacity."""

    peak: float
    mean: float
    overflow_fraction: float  # fraction of bins above capacity

    def routable(self, safety: float = 1.0) -> bool:
        return self.overflow_fraction == 0.0 and self.peak <= safety


def rudy_map(nets: Sequence[Sequence[Point]], region: Tuple[float, float],
             bins: Tuple[int, int] = (16, 16),
             wire_width: float = 1.0) -> np.ndarray:
    """RUDY congestion map over a ``region`` = (width, height).

    Each net contributes ``hpwl * wire_width / box_area`` demand density,
    spread over the bins its bounding box covers.  Degenerate (single-bin)
    nets deposit their demand into the enclosing bin.
    """
    width, height = region
    nx, ny = bins
    if width <= 0 or height <= 0 or nx < 1 or ny < 1:
        raise ValueError("bad region or bin counts")
    grid = np.zeros((ny, nx))
    bin_w = width / nx
    bin_h = height / ny
    for net in nets:
        if len(net) < 2:
            continue
        box = bounding_box(net)
        demand = hpwl(net) * wire_width
        x0 = max(0, min(nx - 1, int(box.x / bin_w)))
        x1 = max(x0, min(nx - 1, int(math.ceil(box.x2 / bin_w)) - 1))
        y0 = max(0, min(ny - 1, int(box.y / bin_h)))
        y1 = max(y0, min(ny - 1, int(math.ceil(box.y2 / bin_h)) - 1))
        n_bins = (x1 - x0 + 1) * (y1 - y0 + 1)
        grid[y0:y1 + 1, x0:x1 + 1] += demand / n_bins
    return grid


def report(congestion: np.ndarray, capacity: float) -> CongestionReport:
    """Peak/mean utilisation and overflow fraction at a bin capacity."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    utilisation = congestion / capacity
    return CongestionReport(
        peak=float(utilisation.max()),
        mean=float(utilisation.mean()),
        overflow_fraction=float((utilisation > 1.0).mean()),
    )


def hotspots(congestion: np.ndarray, capacity: float,
             top: int = 3) -> List[Tuple[int, int, float]]:
    """The ``top`` most-utilised bins as (row, col, utilisation)."""
    if top < 1:
        raise ValueError("top must be >= 1")
    utilisation = congestion / capacity
    flat = [(float(utilisation[r, c]), r, c)
            for r in range(utilisation.shape[0])
            for c in range(utilisation.shape[1])]
    flat.sort(reverse=True)
    return [(r, c, u) for u, r, c in flat[:top]]


def spread_cells(nets: Sequence[Sequence[Point]], region: Tuple[float, float],
                 factor: float) -> List[List[Point]]:
    """Scale all pin coordinates about the region centre (whitespace
    injection) — the classic congestion-relief move."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    cx, cy = region[0] / 2.0, region[1] / 2.0
    spread: List[List[Point]] = []
    for net in nets:
        spread.append([
            Point(cx + (p.x - cx) * factor, cy + (p.y - cy) * factor)
            for p in net
        ])
    return spread
