"""Slicing floorplans: normalized Polish expressions and packing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Block:
    name: str
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError("block dimensions must be positive")

    @property
    def area(self) -> float:
        return self.w * self.h


def pack(expression: Sequence[str],
         blocks: Dict[str, Block]) -> Tuple[float, float]:
    """Pack a Polish-notation slicing expression; returns (width, height).

    Operators: ``H`` stacks the two operands vertically (heights add,
    widths max), ``V`` abuts them horizontally (widths add, heights max) —
    the standard slicing-tree semantics.
    """
    stack: List[Tuple[float, float]] = []
    for token in expression:
        if token in ("H", "V"):
            if len(stack) < 2:
                raise ValueError("malformed Polish expression")
            w2, h2 = stack.pop()
            w1, h1 = stack.pop()
            if token == "H":
                stack.append((max(w1, w2), h1 + h2))
            else:
                stack.append((w1 + w2, max(h1, h2)))
        else:
            block = blocks.get(token)
            if block is None:
                raise ValueError(f"unknown block {token!r}")
            stack.append((block.w, block.h))
    if len(stack) != 1:
        raise ValueError("malformed Polish expression")
    return stack[0]


def chip_area(expression: Sequence[str], blocks: Dict[str, Block]) -> float:
    """Packed bounding-box area of a slicing expression."""
    width, height = pack(expression, blocks)
    return width * height


def dead_space(expression: Sequence[str], blocks: Dict[str, Block]) -> float:
    """Whitespace = packed area minus total block area."""
    return chip_area(expression, blocks) - sum(
        b.area for b in blocks.values())


def dead_space_percent(expression: Sequence[str],
                       blocks: Dict[str, Block]) -> float:
    """Whitespace as a percentage of the packed area."""
    total = chip_area(expression, blocks)
    if total <= 0:
        raise ValueError("degenerate floorplan")
    return dead_space(expression, blocks) / total * 100.0


def is_normalized(expression: Sequence[str]) -> bool:
    """Normalized Polish expression: no two consecutive equal operators."""
    ops = {"H", "V"}
    balance = 0
    for a, b in zip(expression, expression[1:]):
        if a in ops and b in ops and a == b:
            return False
    for token in expression:
        balance += -1 if token in ops else 1
        if balance < 1:
            return False
    return balance == 1


def aspect_ratio(expression: Sequence[str],
                 blocks: Dict[str, Block]) -> float:
    """Long side over short side of the packed floorplan."""
    width, height = pack(expression, blocks)
    return max(width, height) / min(width, height)


def best_orientation_area(expression: Sequence[str],
                          blocks: Dict[str, Block]) -> float:
    """Minimum packed area over all block rotations (exhaustive).

    Exponential in block count — fine for exam-sized floorplans.
    """
    import itertools
    names = sorted(blocks)
    best = float("inf")
    for flips in itertools.product((False, True), repeat=len(names)):
        oriented = {}
        for name, flip in zip(names, flips):
            block = blocks[name]
            oriented[name] = Block(name, block.h, block.w) if flip else block
        best = min(best, chip_area(expression, oriented))
    return best
