"""Circuit noise analysis: thermal / flicker sources and input-referred
noise of single stages — the remaining analog-exam staple.

All spectral densities are one-sided, in V^2/Hz or A^2/Hz.
"""

from __future__ import annotations

import math
from typing import Tuple

BOLTZMANN = 1.380649e-23  # J/K
ROOM_TEMPERATURE_K = 300.0
MOS_THERMAL_GAMMA = 2.0 / 3.0  # long-channel excess-noise factor


def resistor_thermal_vsd(r_ohms: float,
                         temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Thermal voltage noise density of a resistor: 4kTR (V^2/Hz)."""
    if r_ohms <= 0 or temperature_k <= 0:
        raise ValueError("resistance and temperature must be positive")
    return 4.0 * BOLTZMANN * temperature_k * r_ohms


def resistor_thermal_vrms(r_ohms: float, bandwidth_hz: float,
                          temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Integrated RMS noise voltage over a brick-wall bandwidth."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return math.sqrt(resistor_thermal_vsd(r_ohms, temperature_k)
                     * bandwidth_hz)


def mos_thermal_isd(gm: float, gamma: float = MOS_THERMAL_GAMMA,
                    temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """MOS channel thermal current noise: 4kT * gamma * gm (A^2/Hz)."""
    if gm <= 0 or gamma <= 0:
        raise ValueError("gm and gamma must be positive")
    return 4.0 * BOLTZMANN * temperature_k * gamma * gm


def mos_flicker_vsd(kf_v2: float, frequency_hz: float) -> float:
    """Gate-referred flicker noise: K / f (V^2/Hz), K folds in Cox W L."""
    if kf_v2 <= 0 or frequency_hz <= 0:
        raise ValueError("K and frequency must be positive")
    return kf_v2 / frequency_hz


def flicker_corner_hz(kf_v2: float, gm: float,
                      gamma: float = MOS_THERMAL_GAMMA,
                      temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Frequency where flicker equals thermal (gate-referred)."""
    thermal_vsd = mos_thermal_isd(gm, gamma, temperature_k) / (gm * gm)
    return kf_v2 / thermal_vsd


def cs_input_referred_vsd(gm: float, r_load: float,
                          gamma: float = MOS_THERMAL_GAMMA,
                          temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Input-referred thermal noise of a common-source stage.

    v_n,in^2 = 4kT (gamma/gm + 1/(gm^2 R_D)) — the device channel noise
    plus the load resistor's noise divided by the stage gain squared.
    """
    if gm <= 0 or r_load <= 0:
        raise ValueError("gm and load must be positive")
    device = mos_thermal_isd(gm, gamma, temperature_k) / (gm * gm)
    load = resistor_thermal_vsd(r_load, temperature_k) / (gm * r_load) ** 2
    return device + load


def cascaded_input_noise(vsd_stage1: float, vsd_stage2: float,
                         gain1: float) -> float:
    """Friis for voltage noise: stage-2 noise divided by gain-1 squared."""
    if gain1 == 0:
        raise ValueError("first-stage gain must be non-zero")
    return vsd_stage1 + vsd_stage2 / (gain1 * gain1)


def snr_db(signal_vrms: float, noise_vrms: float) -> float:
    """SNR in dB from RMS signal and noise voltages."""
    if signal_vrms <= 0 or noise_vrms <= 0:
        raise ValueError("voltages must be positive")
    return 20.0 * math.log10(signal_vrms / noise_vrms)


def kt_over_c_vrms(c_farads: float,
                   temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Sampled (kT/C) noise of a switch-capacitor: sqrt(kT/C) volts RMS."""
    if c_farads <= 0 or temperature_k <= 0:
        raise ValueError("capacitance and temperature must be positive")
    return math.sqrt(BOLTZMANN * temperature_k / c_farads)


def noise_figure_db(added_noise_vsd: float, source_vsd: float) -> float:
    """NF = 10 log10(1 + added / source)."""
    if source_vsd <= 0 or added_noise_vsd < 0:
        raise ValueError("bad spectral densities")
    return 10.0 * math.log10(1.0 + added_noise_vsd / source_vsd)
