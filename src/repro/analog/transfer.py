"""Rational transfer functions: poles, zeros, Bode magnitude/phase.

:class:`TransferFunction` represents H(s) = K * prod(s/z_i + 1)... in
coefficient form (numerator / denominator polynomials in s), with helpers to
construct from pole/zero lists, evaluate on the jw axis, and extract the
quantities ChipVQA's analog questions ask about: DC gain, corner
frequencies, unity-gain frequency and phase margin.

Angular frequencies are in rad/s throughout; helpers that speak Hz say so.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TransferFunction:
    """H(s) = num(s) / den(s), coefficients highest power first."""

    num: Tuple[float, ...]
    den: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.num or not self.den:
            raise ValueError("empty polynomial")
        if all(c == 0 for c in self.den):
            raise ValueError("zero denominator")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_poles_zeros(
        cls,
        gain: float,
        poles: Sequence[float],
        zeros: Sequence[float] = (),
    ) -> "TransferFunction":
        """Build H(s) = gain * prod(1 + s/z) / prod(1 + s/p).

        ``poles`` and ``zeros`` are (positive) corner angular frequencies of
        left-half-plane singularities, the convention of Bode asymptote
        analysis.  DC gain equals ``gain``.
        """
        num = np.array([1.0])
        for zero in zeros:
            if zero <= 0:
                raise ValueError("corner frequencies must be positive")
            num = np.polymul(num, np.array([1.0 / zero, 1.0]))
        den = np.array([1.0])
        for pole in poles:
            if pole <= 0:
                raise ValueError("corner frequencies must be positive")
            den = np.polymul(den, np.array([1.0 / pole, 1.0]))
        num = num * gain
        return cls(tuple(float(c) for c in num), tuple(float(c) for c in den))

    @classmethod
    def integrator(cls, unity_gain_w: float) -> "TransferFunction":
        """H(s) = unity_gain_w / s."""
        return cls((unity_gain_w,), (1.0, 0.0))

    # -- evaluation -----------------------------------------------------------

    def at(self, s: complex) -> complex:
        num = _polyval(self.num, s)
        den = _polyval(self.den, s)
        if den == 0:
            raise ZeroDivisionError(f"pole exactly at s={s}")
        return num / den

    def at_jw(self, w: float) -> complex:
        return self.at(complex(0.0, w))

    def magnitude_db(self, w: float) -> float:
        return 20.0 * math.log10(abs(self.at_jw(w)))

    def phase_deg(self, w: float) -> float:
        """Unwrapped phase in degrees, tracked from DC to ``w``."""
        if w <= 0:
            raise ValueError("w must be positive")
        # sweep in log steps from well below the lowest feature to w
        points = np.logspace(math.log10(w) - 9, math.log10(w), 400)
        raw = np.array([cmath.phase(self.at_jw(float(p))) for p in points])
        unwrapped = np.unwrap(raw)
        return float(math.degrees(unwrapped[-1]))

    def dc_gain(self) -> float:
        """H(0); raises if there is a pole at the origin."""
        return abs(self.at(0.0)) if self.den[-1] != 0 else float("inf")

    def dc_gain_db(self) -> float:
        gain = self.dc_gain()
        if gain in (0.0, float("inf")):
            raise ValueError("DC gain not finite")
        return 20.0 * math.log10(gain)

    # -- poles / zeros --------------------------------------------------------

    def poles(self) -> List[complex]:
        return [complex(r) for r in np.roots(self.den)]

    def zeros(self) -> List[complex]:
        if len(self.num) < 2:
            return []
        return [complex(r) for r in np.roots(self.num)]

    def pole_frequencies(self) -> List[float]:
        """Magnitudes of the poles (rad/s), ascending."""
        return sorted(abs(p) for p in self.poles())

    # -- loop metrics ------------------------------------------------------------

    def unity_gain_frequency(self) -> float:
        """The w (rad/s) where |H(jw)| crosses 1, found by bisection."""
        low, high = 1e-3, 1e15
        if abs(self.at_jw(low)) < 1.0:
            raise ValueError("gain below unity at the low end")
        if abs(self.at_jw(high)) > 1.0:
            raise ValueError("gain above unity at the high end")
        for _ in range(200):
            mid = math.sqrt(low * high)
            if abs(self.at_jw(mid)) > 1.0:
                low = mid
            else:
                high = mid
        return math.sqrt(low * high)

    def phase_margin_deg(self) -> float:
        """Phase margin = 180 + phase at the unity-gain frequency."""
        w_u = self.unity_gain_frequency()
        return 180.0 + self.phase_deg(w_u)

    def gain_at_db(self, w: float) -> float:
        return self.magnitude_db(w)

    def cascade(self, other: "TransferFunction") -> "TransferFunction":
        return TransferFunction(
            tuple(np.polymul(self.num, other.num).tolist()),
            tuple(np.polymul(self.den, other.den).tolist()),
        )

    def closed_loop(self, feedback_factor: float) -> "TransferFunction":
        """Negative-feedback closed loop: H / (1 + beta * H)."""
        beta_num = np.polymul(self.num, [feedback_factor])
        den = np.polyadd(
            np.polymul(self.den, [1.0]), beta_num
        )
        return TransferFunction(tuple(self.num), tuple(float(c) for c in den))


def _polyval(coeffs: Sequence[float], s: complex) -> complex:
    result: complex = 0.0
    for c in coeffs:
        result = result * s + c
    return result


# -- textbook formulas used by the question generators -----------------------------

def rc_lowpass_corner_hz(r_ohms: float, c_farads: float) -> float:
    """f_c = 1 / (2 pi R C)."""
    if r_ohms <= 0 or c_farads <= 0:
        raise ValueError("R and C must be positive")
    return 1.0 / (2.0 * math.pi * r_ohms * c_farads)


def gbw_from_dc_gain(dc_gain: float, pole_hz: float) -> float:
    """Gain-bandwidth product of a single-pole amplifier, in Hz."""
    return dc_gain * pole_hz


def single_pole_phase_margin(dc_gain: float, pole_w: float,
                             second_pole_w: Optional[float] = None) -> float:
    """Phase margin of a one- or two-pole open loop with unity feedback."""
    poles = [pole_w] if second_pole_w is None else [pole_w, second_pole_w]
    tf = TransferFunction.from_poles_zeros(dc_gain, poles)
    return tf.phase_margin_deg()


def decade_ratio(w1: float, w2: float) -> float:
    """How many decades separate two frequencies."""
    if w1 <= 0 or w2 <= 0:
        raise ValueError("frequencies must be positive")
    return abs(math.log10(w2 / w1))
